//! The Cache Manager.
//!
//! "The primary responsibilities of the Cache Manager include (a)
//! maintaining the cache as well as storing and replacing cache elements
//! (using an LRU scheme which may be modified due to advi\[c\]e); (b)
//! executing queries on cached data in the working memory; (c) keeping
//! track of resources consumed by the cached data; and (d) maintaining
//! sufficient historical meta-data to support cache replacement and
//! accumulate performance measurement statistics" (§5.4).

use crate::element::{CacheElement, ElemId};
use crate::error::Result;
use crate::model::ModelRow;
use braid_caql::ConjunctiveQuery;
use braid_relational::Generator;
use braid_subsume::{CandidateUse, Derivation, SubsumptionEngine, ViewDef};
use std::collections::{BTreeMap, HashMap};

/// The cache: elements, the subsumption index over their definitions, an
/// exact-match index, and replacement machinery.
#[derive(Debug)]
pub struct CacheManager {
    elements: BTreeMap<ElemId, CacheElement>,
    engine: SubsumptionEngine,
    exact: HashMap<String, ElemId>,
    next_id: ElemId,
    id_stride: u64,
    clock: u64,
    capacity_bytes: usize,
    used_bytes: usize,
    evictions: u64,
}

impl Default for CacheManager {
    fn default() -> CacheManager {
        CacheManager::new(0)
    }
}

impl CacheManager {
    /// A cache with the given capacity (approximate bytes).
    pub fn new(capacity_bytes: usize) -> CacheManager {
        CacheManager::with_id_sequence(capacity_bytes, 0, 1)
    }

    /// A cache issuing element ids `start, start+stride, start+2·stride, …`
    /// — shard `s` of an N-way [`crate::SharedCache`] uses `(s, N)` so ids
    /// stay globally unique across shards and `id % N` recovers the shard.
    pub fn with_id_sequence(capacity_bytes: usize, start: ElemId, stride: u64) -> CacheManager {
        CacheManager {
            elements: BTreeMap::new(),
            engine: SubsumptionEngine::default(),
            exact: HashMap::new(),
            next_id: start,
            id_stride: stride.max(1),
            clock: 0,
            capacity_bytes,
            used_bytes: 0,
            evictions: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Approximate bytes in use.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Advance and return the logical clock.
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Canonical exact-match key: the head's *name* is arbitrary (the IE
    /// may call the same result `d2` or `q`), so it is normalized away;
    /// variables are canonically numbered by `canonical_key`.
    fn exact_key(q: &ConjunctiveQuery) -> String {
        let mut q = q.clone();
        q.head.pred = "_".to_string();
        q.canonical_key()
    }

    /// Install an element built by the caller. Returns `None` (and drops
    /// the element) if it can never fit. Evicts LRU-first among unpinned
    /// elements when needed — the paper's advice-modified LRU (§5.4).
    pub fn insert(&mut self, def: ViewDef, build: ElementBuilder) -> Option<ElemId> {
        let id = self.next_id;
        let now = self.tick();
        let element = match build {
            ElementBuilder::Materialized(rel) => CacheElement::materialized(id, def, rel, now),
            ElementBuilder::Lazy(g) => CacheElement::lazy(id, def, g, now),
        };
        let bytes = element.approx_bytes();
        if bytes > self.capacity_bytes {
            return None;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            if !self.evict_one() {
                return None;
            }
        }
        self.next_id += self.id_stride;
        self.used_bytes += bytes;
        self.exact.insert(Self::exact_key(element.def.query()), id);
        self.engine.insert(id, element.def.clone());
        self.elements.insert(id, element);
        Some(id)
    }

    /// [`CacheManager::insert`], additionally registering the element
    /// under extra exact-match keys (e.g. the original projected query a
    /// result was computed for, alongside its all-variables definition).
    pub fn insert_with_aliases(
        &mut self,
        def: ViewDef,
        build: ElementBuilder,
        aliases: &[String],
    ) -> Option<ElemId> {
        let id = self.insert(def, build)?;
        for a in aliases {
            self.exact.insert(a.clone(), id);
        }
        Some(id)
    }

    /// Evict the least-recently-used unpinned element. Returns `false`
    /// when nothing is evictable. Elements with open session pins
    /// (`pin_count > 0`) are never victims: an open generator may still
    /// be streaming from them.
    fn evict_one(&mut self) -> bool {
        let victim = self
            .elements
            .values()
            .filter(|e| !e.pinned && e.pin_count == 0)
            .min_by_key(|e| e.last_used)
            .map(|e| e.id);
        match victim {
            Some(id) => {
                self.remove(id);
                self.evictions += 1;
                true
            }
            None => false,
        }
    }

    /// Remove an element outright.
    pub fn remove(&mut self, id: ElemId) -> Option<CacheElement> {
        let e = self.elements.remove(&id)?;
        self.used_bytes = self.used_bytes.saturating_sub(e.approx_bytes());
        self.engine.remove(id);
        self.exact.retain(|_, v| *v != id);
        Some(e)
    }

    /// Borrow an element.
    pub fn get(&self, id: ElemId) -> Option<&CacheElement> {
        self.elements.get(&id)
    }

    /// Borrow an element mutably (for indexing/materialization); also
    /// refreshes its LRU stamp.
    pub fn get_mut(&mut self, id: ElemId) -> Option<&mut CacheElement> {
        let now = self.tick();
        let used_before: usize;
        {
            let e = self.elements.get(&id)?;
            used_before = e.approx_bytes();
        }
        let e = self.elements.get_mut(&id)?;
        e.last_used = now;
        // Caller may materialize/index; bytes are reconciled on next
        // `reconcile` call.
        let _ = used_before;
        Some(e)
    }

    /// Recompute `used_bytes` after in-place mutations (materialization or
    /// indexing changes an element's footprint).
    pub fn reconcile_bytes(&mut self) {
        self.used_bytes = self.elements.values().map(|e| e.approx_bytes()).sum();
        while self.used_bytes > self.capacity_bytes {
            if !self.evict_one() {
                break;
            }
            self.used_bytes = self.elements.values().map(|e| e.approx_bytes()).sum();
        }
    }

    /// Record a derivation hit on an element (LRU + statistics).
    pub fn touch(&mut self, id: ElemId) {
        let now = self.tick();
        if let Some(e) = self.elements.get_mut(&id) {
            e.last_used = now;
            e.hits += 1;
        }
    }

    /// Set the advice-pinned flags: elements in `pinned` survive
    /// replacement scans ("it is clear that d1 is not the best candidate",
    /// §4.2.2). Pinning an element also refreshes its LRU stamp: advice
    /// declaring an element worth keeping is a use signal, and without
    /// the refresh a just-unpinned element would carry stale recency from
    /// before it was pinned and be evicted first despite having been
    /// protected (and presumably served) the whole time.
    pub fn set_pins(&mut self, pinned: &[ElemId]) {
        let now = self.tick();
        for e in self.elements.values_mut() {
            let pin = pinned.contains(&e.id);
            if pin && !e.pinned {
                e.last_used = now;
            }
            e.pinned = pin;
        }
    }

    /// Take a session pin on an element: while `pin_count > 0` the
    /// element cannot be evicted. Callers must pair with
    /// [`CacheManager::unpin`]. No-op for unknown ids.
    pub fn pin(&mut self, id: ElemId) {
        if let Some(e) = self.elements.get_mut(&id) {
            e.pin_count = e.pin_count.saturating_add(1);
        }
    }

    /// Release a session pin taken by [`CacheManager::pin`].
    pub fn unpin(&mut self, id: ElemId) {
        if let Some(e) = self.elements.get_mut(&id) {
            e.pin_count = e.pin_count.saturating_sub(1);
        }
    }

    /// Exact-match lookup: an element whose definition is identical (up to
    /// variable renaming) to `q` — the only reuse the paper's baselines
    /// support.
    pub fn exact_lookup(&self, q: &ConjunctiveQuery) -> Option<ElemId> {
        self.exact.get(&Self::exact_key(q)).copied()
    }

    /// All `(component, element, derivation)` reuse options for `q` via
    /// the subsumption engine (§5.3.2 step 2).
    pub fn relevant(&self, q: &ConjunctiveQuery) -> Vec<CandidateUse> {
        self.engine.find_relevant(q)
    }

    /// Elements subsuming the whole of `q`.
    pub fn whole_subsumers(&self, q: &ConjunctiveQuery) -> Vec<(ElemId, Derivation)> {
        self.engine.find_whole(q)
    }

    /// Build the local compensation pipeline computing a derivation from
    /// an element: scan/generator → residual filter → projection onto
    /// `vars` (in order). This is the Query Processor at work (§5.4).
    ///
    /// # Errors
    /// Returns an error if a projection variable is unavailable.
    pub fn derive(&self, id: ElemId, derivation: &Derivation, vars: &[&str]) -> Result<Generator> {
        let e = self
            .elements
            .get(&id)
            .ok_or_else(|| crate::error::CmsError::Unplannable(format!("no element {id}")))?;
        let cols = derivation.projection(vars).ok_or_else(|| {
            crate::error::CmsError::Unplannable(format!(
                "element {id} does not expose all of {vars:?}"
            ))
        })?;
        let g = e.as_generator().filter(derivation.filter_expr());
        g.project(&cols).map_err(crate::error::CmsError::from)
    }

    /// Eagerly evaluate a derivation, exploiting a hash index on the
    /// element's extension when the residual filters probe indexed
    /// columns — the Query Processor "uses hash indices when available to
    /// speed up joins and some selections" (§5.4).
    ///
    /// # Errors
    /// Returns an error if a projection variable is unavailable.
    pub fn derive_relation(
        &self,
        id: ElemId,
        derivation: &Derivation,
        vars: &[&str],
    ) -> Result<braid_relational::Relation> {
        let e = self
            .elements
            .get(&id)
            .ok_or_else(|| crate::error::CmsError::Unplannable(format!("no element {id}")))?;
        let cols = derivation.projection(vars).ok_or_else(|| {
            crate::error::CmsError::Unplannable(format!(
                "element {id} does not expose all of {vars:?}"
            ))
        })?;
        if let Some(ext) = e.extension() {
            // Try an index probe over the equality residuals.
            let probes = derivation.probe_cols();
            if !probes.is_empty() {
                let probe_cols: Vec<usize> = probes.iter().map(|(c, _)| *c).collect();
                if ext.index_on(&probe_cols).is_some() {
                    let key: Vec<braid_relational::Value> =
                        probes.iter().map(|(_, v)| v.clone()).collect();
                    let selected = braid_relational::ops::select_eq(
                        ext,
                        &probe_cols,
                        &key,
                        Some(&derivation.filter_expr()),
                    )?;
                    return Ok(braid_relational::ops::project(&selected, &cols)?);
                }
            }
        }
        // Fallback: the generic generator pipeline.
        self.derive(id, derivation, vars)?
            .materialize()
            .map_err(crate::error::CmsError::from)
    }

    /// Cardinality of an element's materialized extension, if any.
    pub fn cardinality_of(&self, id: ElemId) -> Option<usize> {
        self.elements.get(&id).and_then(|e| e.cardinality())
    }

    /// Whether an element currently holds the column-major representation.
    pub fn is_columnar(&self, id: ElemId) -> bool {
        self.elements.get(&id).is_some_and(|e| e.is_columnar())
    }

    /// Cache-model rows for all elements (§5.3.2's `(E_id, E_def, ...)`).
    pub fn model(&self) -> Vec<ModelRow> {
        self.elements.values().map(ModelRow::of).collect()
    }

    /// Iterate elements (for the advice manager's pin scoring).
    pub fn elements(&self) -> impl Iterator<Item = &CacheElement> {
        self.elements.values()
    }
}

/// The read-side cache interface the planner and monitor run against.
///
/// Implemented both by the plain [`CacheManager`] (single-session, `&mut`
/// ownership) and by the sharded, lock-protected [`crate::SharedCache`]
/// (N concurrent sessions) — planning and execution are written once,
/// generic over this trait, so the two ownership models cannot drift.
pub trait CacheRead {
    /// All `(component, element, derivation)` reuse options for `q`.
    fn relevant(&self, q: &ConjunctiveQuery) -> Vec<CandidateUse>;
    /// Elements subsuming the whole of `q`.
    fn whole_subsumers(&self, q: &ConjunctiveQuery) -> Vec<(ElemId, Derivation)>;
    /// Exact-match lookup (canonical up to variable renaming).
    fn exact_lookup(&self, q: &ConjunctiveQuery) -> Option<ElemId>;
    /// Cardinality of an element's materialized extension, if any.
    fn cardinality_of(&self, id: ElemId) -> Option<usize>;
    /// Whether an element currently holds the column-major representation
    /// (served by the vectorized kernels — feeds the `columnar_hits`
    /// metric and the EXPLAIN `repr` field).
    fn is_columnar(&self, id: ElemId) -> bool;
    /// Eagerly evaluate a derivation over an element.
    ///
    /// # Errors
    /// Returns an error if the element is gone or a projection variable
    /// is unavailable.
    fn derive_relation(
        &self,
        id: ElemId,
        derivation: &Derivation,
        vars: &[&str],
    ) -> Result<braid_relational::Relation>;
}

impl CacheRead for CacheManager {
    fn relevant(&self, q: &ConjunctiveQuery) -> Vec<CandidateUse> {
        CacheManager::relevant(self, q)
    }

    fn whole_subsumers(&self, q: &ConjunctiveQuery) -> Vec<(ElemId, Derivation)> {
        CacheManager::whole_subsumers(self, q)
    }

    fn exact_lookup(&self, q: &ConjunctiveQuery) -> Option<ElemId> {
        CacheManager::exact_lookup(self, q)
    }

    fn cardinality_of(&self, id: ElemId) -> Option<usize> {
        CacheManager::cardinality_of(self, id)
    }

    fn is_columnar(&self, id: ElemId) -> bool {
        CacheManager::is_columnar(self, id)
    }

    fn derive_relation(
        &self,
        id: ElemId,
        derivation: &Derivation,
        vars: &[&str],
    ) -> Result<braid_relational::Relation> {
        CacheManager::derive_relation(self, id, derivation, vars)
    }
}

/// What the caller hands the cache for a new element.
#[derive(Debug)]
pub enum ElementBuilder {
    /// A fully materialized extension.
    Materialized(braid_relational::Relation),
    /// A lazy generator over already-cached inputs.
    Lazy(Generator),
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_caql::parse_rule;
    use braid_relational::{tuple, Relation, Schema};

    fn def(src: &str) -> ViewDef {
        ViewDef::new(parse_rule(src).unwrap()).unwrap()
    }

    fn rel(n: usize) -> Relation {
        let mut r = Relation::new(Schema::of_strs("e", &["x", "y"]));
        for i in 0..n {
            r.insert(tuple![format!("k{i}"), format!("v{i}")]).unwrap();
        }
        r
    }

    #[test]
    fn insert_and_exact_lookup() {
        let mut c = CacheManager::new(usize::MAX);
        let id = c
            .insert(
                def("e(X, Y) :- b1(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
            )
            .unwrap();
        // Exact match is canonical: variable names don't matter.
        let q = parse_rule("q(A, B) :- b1(A, B).").unwrap();
        assert_eq!(c.exact_lookup(&q), Some(id));
        let diff = parse_rule("q(A) :- b1(A, c1).").unwrap();
        assert_eq!(c.exact_lookup(&diff), None);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let bytes_of_3 = {
            let e = CacheElement::materialized(0, def("e(X, Y) :- b1(X, Y)."), rel(3), 0);
            e.approx_bytes()
        };
        let mut c = CacheManager::new(bytes_of_3 * 2 + 64);
        let a = c
            .insert(
                def("a(X, Y) :- b1(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
            )
            .unwrap();
        let b = c
            .insert(
                def("b(X, Y) :- b2(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
            )
            .unwrap();
        // Touch `a` so `b` becomes LRU.
        c.touch(a);
        let d = c
            .insert(
                def("d(X, Y) :- b3(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
            )
            .unwrap();
        assert!(c.get(a).is_some());
        assert!(c.get(b).is_none(), "LRU element must be evicted");
        assert!(c.get(d).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn pinned_elements_survive_eviction() {
        let unit =
            CacheElement::materialized(0, def("e(X, Y) :- b1(X, Y)."), rel(3), 0).approx_bytes();
        let mut c = CacheManager::new(unit * 2 + 64);
        let a = c
            .insert(
                def("a(X, Y) :- b1(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
            )
            .unwrap();
        let b = c
            .insert(
                def("b(X, Y) :- b2(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
            )
            .unwrap();
        // `a` is older but pinned: `b` gets evicted instead.
        c.set_pins(&[a]);
        let _d = c
            .insert(
                def("d(X, Y) :- b3(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
            )
            .unwrap();
        assert!(c.get(a).is_some());
        assert!(c.get(b).is_none());
    }

    #[test]
    fn pinning_refreshes_recency() {
        // The touch/set_pins ordering bug: pin bookkeeping used to leave
        // `last_used` stale, so an element that had just been unpinned
        // was evicted ahead of elements it outlived while protected.
        let unit =
            CacheElement::materialized(0, def("e(X, Y) :- b1(X, Y)."), rel(3), 0).approx_bytes();
        let mut c = CacheManager::new(unit * 2 + 64);
        let a = c
            .insert(
                def("a(X, Y) :- b1(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
            )
            .unwrap();
        let b = c
            .insert(
                def("b(X, Y) :- b2(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
            )
            .unwrap();
        c.touch(b); // b is now more recent than a…
        c.set_pins(&[a]); // …but pinning a counts as a use of a.
        c.set_pins(&[]); // advice withdrawn: both unpinned again.
        let d = c
            .insert(
                def("d(X, Y) :- b3(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
            )
            .unwrap();
        assert!(c.get(b).is_none(), "b is LRU once pinning refreshed a");
        assert!(c.get(a).is_some(), "pinning a refreshed its recency");
        assert!(c.get(d).is_some());
    }

    #[test]
    fn session_pins_block_eviction_until_released() {
        let unit =
            CacheElement::materialized(0, def("e(X, Y) :- b1(X, Y)."), rel(3), 0).approx_bytes();
        let mut c = CacheManager::new(unit * 2 + 64);
        let a = c
            .insert(
                def("a(X, Y) :- b1(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
            )
            .unwrap();
        let b = c
            .insert(
                def("b(X, Y) :- b2(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
            )
            .unwrap();
        c.pin(a);
        c.pin(a); // two concurrent streams over a
        let d = c
            .insert(
                def("d(X, Y) :- b3(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
            )
            .unwrap();
        assert!(c.get(a).is_some(), "session-pinned element survives");
        assert!(c.get(b).is_none(), "unpinned LRU element is the victim");
        c.unpin(a);
        assert_eq!(c.get(a).unwrap().pin_count, 1, "one stream still open");
        c.unpin(a);
        // Fully released: a is evictable again (and is LRU vs d).
        let e2 = c.insert(
            def("f(X, Y) :- b1(X, Z), b2(Z, Y)."),
            ElementBuilder::Materialized(rel(3)),
        );
        assert!(e2.is_some());
        assert!(c.get(a).is_none(), "released element evicts normally");
        assert!(c.get(d).is_some());
    }

    #[test]
    fn strided_id_sequences_never_collide() {
        let mut shard0 = CacheManager::with_id_sequence(usize::MAX, 0, 4);
        let mut shard3 = CacheManager::with_id_sequence(usize::MAX, 3, 4);
        let a = shard0
            .insert(
                def("a(X, Y) :- b1(X, Y)."),
                ElementBuilder::Materialized(rel(1)),
            )
            .unwrap();
        let b = shard0
            .insert(
                def("b(X, Y) :- b2(X, Y)."),
                ElementBuilder::Materialized(rel(1)),
            )
            .unwrap();
        let c = shard3
            .insert(
                def("c(X, Y) :- b3(X, Y)."),
                ElementBuilder::Materialized(rel(1)),
            )
            .unwrap();
        assert_eq!((a, b, c), (0, 4, 3));
        assert_eq!(a % 4, 0);
        assert_eq!(c % 4, 3);
    }

    #[test]
    fn oversized_element_rejected() {
        let mut c = CacheManager::new(10);
        assert!(c
            .insert(
                def("a(X, Y) :- b1(X, Y)."),
                ElementBuilder::Materialized(rel(100))
            )
            .is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn derive_builds_compensation_pipeline() {
        let mut c = CacheManager::new(usize::MAX);
        let id = c
            .insert(
                def("e(X, Y) :- b1(X, Y)."),
                ElementBuilder::Materialized(rel(4)),
            )
            .unwrap();
        let q = parse_rule("q(X) :- b1(X, v2).").unwrap();
        let uses = c.relevant(&q);
        assert!(!uses.is_empty());
        let u = &uses[0];
        let g = c.derive(u.element, &u.derivation, &["X"]).unwrap();
        let out = g.materialize().unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.sorted_tuples()[0], tuple!["k2"]);
        assert_eq!(u.element, id);
    }

    #[test]
    fn remove_clears_indices() {
        let mut c = CacheManager::new(usize::MAX);
        let id = c
            .insert(
                def("a(X, Y) :- b1(X, Y)."),
                ElementBuilder::Materialized(rel(2)),
            )
            .unwrap();
        assert!(c.remove(id).is_some());
        let q = parse_rule("q(A, B) :- b1(A, B).").unwrap();
        assert!(c.exact_lookup(&q).is_none());
        assert!(c.relevant(&q).is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn model_reports_elements() {
        let mut c = CacheManager::new(usize::MAX);
        c.insert(
            def("a(X, Y) :- b1(X, Y)."),
            ElementBuilder::Materialized(rel(2)),
        );
        let m = c.model();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].cardinality, Some(2));
    }
}
