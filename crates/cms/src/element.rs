//! Cache elements: materialized views and generators.
//!
//! "A cache element is a relation defined by a CAQL expression ... The CMS
//! represents a relation as either the full extension of the relation or
//! as a generator which produces a single tuple on demand" (§5, §5.1), and
//! "frequently maintains co-existing, alternative representations of the
//! same relation" (§5.2) — here an element may hold a generator *and* a
//! materialized extension at once, with indices on the extension.
//!
//! Since the executor unification, both representations are two execution
//! modes over **one stored physical plan**: the generator holds the
//! [`braid_relational::PhysicalPlan`] and opens it incrementally
//! ([`Generator::open`]), while [`CacheElement::ensure_extension`] runs
//! the *same* plan through the same batched executor in eager mode
//! ([`Generator::materialize`]). There is no separate lazy evaluator to
//! drift out of sync with the eager one.

use crate::error::{CmsError, Result};
use braid_relational::sort::{SortKey, SortedView};
use braid_relational::{ColumnarRelation, Generator, Relation, RelationStats, Schema, Tuple};
use braid_subsume::ViewDef;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifier of a cache element.
pub type ElemId = u64;

/// The representation(s) an element currently holds.
#[derive(Debug, Clone)]
pub enum Repr {
    /// Only a materialized extension.
    Extension(Arc<Relation>),
    /// Only a generator (lazy form).
    Generator(Generator),
    /// Both — the paper's co-existing alternative representations: the
    /// generator serves sequential producers, the (possibly indexed)
    /// extension serves random probes.
    Both {
        /// The lazy form.
        generator: Generator,
        /// The materialized form.
        extension: Arc<Relation>,
    },
    /// A column-major extension — the third representation: per-column
    /// typed vectors with dictionary-encoded strings and validity masks.
    /// Sequential scans and aggregates over it compile to the executor's
    /// vectorized kernels; point probes convert back to indexed rows
    /// first ([`CacheElement::ensure_extension`] is lossless both ways).
    Columnar(Arc<ColumnarRelation>),
}

/// A cache element: definition, representation(s), statistics and
/// replacement bookkeeping.
#[derive(Debug, Clone)]
pub struct CacheElement {
    /// Element id (the cache model's `E_id`).
    pub id: ElemId,
    /// Defining view (`E_def`): head terms name the stored columns.
    pub def: ViewDef,
    /// Current representation(s).
    pub repr: Repr,
    /// Logical clock of last use (for LRU).
    pub last_used: u64,
    /// How many times the element served a derivation.
    pub hits: u64,
    /// Whether advice pinned this element against replacement.
    pub pinned: bool,
    /// Count of open sessions streaming from this element. A non-zero
    /// count blocks eviction so a concurrent replacement scan cannot
    /// invalidate an open `RunningPlan` mid-stream (snapshot-consistent
    /// reads). Distinct from the advice `pinned` flag: advice pins are
    /// policy, session pins are correctness.
    pub pin_count: u32,
    /// Alternative *sorted* representations over the extension, keyed by
    /// the ascending/descending column spec — "consider, for example, the
    /// case where alternative sortings are required" (§5.2). Views are
    /// built lazily and share the extension's tuples.
    sorted: BTreeMap<Vec<(usize, bool)>, SortedView>,
}

impl CacheElement {
    /// Create an element over a materialized extension.
    pub fn materialized(id: ElemId, def: ViewDef, rel: Relation, now: u64) -> CacheElement {
        CacheElement {
            id,
            def,
            repr: Repr::Extension(Arc::new(rel)),
            last_used: now,
            hits: 0,
            pinned: false,
            pin_count: 0,
            sorted: BTreeMap::new(),
        }
    }

    /// Create an element in generator (lazy) form.
    pub fn lazy(id: ElemId, def: ViewDef, generator: Generator, now: u64) -> CacheElement {
        CacheElement {
            id,
            def,
            repr: Repr::Generator(generator),
            last_used: now,
            hits: 0,
            pinned: false,
            pin_count: 0,
            sorted: BTreeMap::new(),
        }
    }

    /// The stored-column schema (named `e<id>` with positional columns).
    pub fn schema(&self) -> Schema {
        match &self.repr {
            Repr::Extension(r) | Repr::Both { extension: r, .. } => r.schema().clone(),
            Repr::Generator(g) => g.schema().clone(),
            Repr::Columnar(c) => c.schema().clone(),
        }
    }

    /// The materialized extension, if present.
    pub fn extension(&self) -> Option<&Arc<Relation>> {
        match &self.repr {
            Repr::Extension(r) | Repr::Both { extension: r, .. } => Some(r),
            Repr::Generator(_) | Repr::Columnar(_) => None,
        }
    }

    /// The generator form, if present.
    pub fn generator(&self) -> Option<&Generator> {
        match &self.repr {
            Repr::Generator(g) | Repr::Both { generator: g, .. } => Some(g),
            Repr::Extension(_) | Repr::Columnar(_) => None,
        }
    }

    /// The column-major extension, if that is the current representation.
    pub fn columnar(&self) -> Option<&Arc<ColumnarRelation>> {
        match &self.repr {
            Repr::Columnar(c) => Some(c),
            _ => None,
        }
    }

    /// Whether this element is currently held column-major.
    pub fn is_columnar(&self) -> bool {
        matches!(self.repr, Repr::Columnar(_))
    }

    /// A generator over this element's stored columns, whichever
    /// representation backs it — the uniform access path for derivations.
    pub fn as_generator(&self) -> Generator {
        match &self.repr {
            Repr::Extension(r) | Repr::Both { extension: r, .. } => Generator::scan(Arc::clone(r)),
            Repr::Generator(g) => g.clone(),
            // Filters/aggregates composed on top of this scan compile to
            // the executor's vectorized kernels.
            Repr::Columnar(c) => Generator::scan_columnar(Arc::clone(c)),
        }
    }

    /// Materialize the generator form in place (keeping it, per §5.2) and
    /// return the extension. No-op when already materialized.
    ///
    /// # Errors
    /// Propagates evaluation errors.
    pub fn ensure_extension(&mut self) -> Result<Arc<Relation>> {
        match &self.repr {
            Repr::Extension(r) | Repr::Both { extension: r, .. } => Ok(Arc::clone(r)),
            Repr::Generator(g) => {
                let rel = Arc::new(g.materialize().map_err(CmsError::from)?);
                self.repr = Repr::Both {
                    generator: g.clone(),
                    extension: Arc::clone(&rel),
                };
                Ok(rel)
            }
            // Lossless conversion back to rows — a point-probe consumer
            // needs the indexable row extension.
            Repr::Columnar(c) => {
                let rel = Arc::new(c.to_relation().map_err(CmsError::from)?);
                self.repr = Repr::Extension(Arc::clone(&rel));
                self.sorted.clear();
                Ok(rel)
            }
        }
    }

    /// Convert the element to the column-major representation
    /// (materializing a generator first if needed) and return it. No-op
    /// when already columnar. Lossless: [`CacheElement::ensure_extension`]
    /// recovers the identical row relation.
    ///
    /// # Errors
    /// Propagates materialization errors.
    pub fn ensure_columnar(&mut self) -> Result<Arc<ColumnarRelation>> {
        if let Repr::Columnar(c) = &self.repr {
            return Ok(Arc::clone(c));
        }
        let rel = self.ensure_extension()?;
        let col = Arc::new(ColumnarRelation::from_relation(&rel));
        self.repr = Repr::Columnar(Arc::clone(&col));
        self.sorted.clear();
        Ok(col)
    }

    /// Build (or reuse) a hash index on the extension's `cols`.
    /// Materializes first if needed. Returns whether a new index was
    /// actually built.
    ///
    /// # Errors
    /// Propagates materialization and index errors.
    pub fn ensure_index(&mut self, cols: &[usize]) -> Result<bool> {
        let rel = self.ensure_extension()?;
        if rel.index_on(cols).is_some() {
            return Ok(false);
        }
        // Cloning the Arc'd relation to mutate: cheap for the tuple data
        // (Arc'd tuples), pays only the index build we are doing anyway.
        let mut owned = (*rel).clone();
        owned.build_index(cols).map_err(CmsError::from)?;
        let new_rel = Arc::new(owned);
        self.repr = match &self.repr {
            Repr::Both { generator, .. } => Repr::Both {
                generator: generator.clone(),
                extension: Arc::clone(&new_rel),
            },
            _ => Repr::Extension(Arc::clone(&new_rel)),
        };
        // Row ids survive (indexing only re-wraps the same tuple vector),
        // but rebuild sorted views defensively against future divergence.
        self.sorted.clear();
        Ok(true)
    }

    /// Ensure an alternative sorted representation over the extension
    /// (materializing first if needed) and return the tuples in order —
    /// §5.2's co-existing representations serving ordered consumers.
    ///
    /// `keys` pairs a column with `true` for ascending.
    ///
    /// # Errors
    /// Propagates materialization and key-validation errors.
    pub fn sorted_tuples(&mut self, keys: &[(usize, bool)]) -> Result<Vec<Tuple>> {
        let ext = self.ensure_extension()?;
        if !self.sorted.contains_key(keys) {
            let sort_keys: Vec<SortKey> = keys
                .iter()
                .map(|&(c, asc)| {
                    if asc {
                        SortKey::asc(c)
                    } else {
                        SortKey::desc(c)
                    }
                })
                .collect();
            let view = SortedView::new(&ext, &sort_keys).map_err(CmsError::from)?;
            self.sorted.insert(keys.to_vec(), view);
        }
        let view = self.sorted.get(keys).expect("inserted above");
        Ok(view.iter(&ext).cloned().collect())
    }

    /// Number of alternative sorted representations currently held.
    pub fn sorted_view_count(&self) -> usize {
        self.sorted.len()
    }

    /// Approximate bytes held (extension + definition overhead; a pure
    /// generator is nearly free — that is its point; a columnar extension
    /// reports its dictionary-compressed footprint).
    pub fn approx_bytes(&self) -> usize {
        128 + match &self.repr {
            Repr::Extension(r) | Repr::Both { extension: r, .. } => r.approx_size(),
            Repr::Generator(_) => 64,
            Repr::Columnar(c) => c.approx_size(),
        }
    }

    /// Statistics of the materialized extension (row or columnar), if
    /// any. Both representations report identical logical statistics
    /// (see [`RelationStats::same_logical_stats`]).
    pub fn stats(&self) -> Option<RelationStats> {
        match &self.repr {
            Repr::Extension(r) | Repr::Both { extension: r, .. } => Some(RelationStats::of(r)),
            Repr::Generator(_) => None,
            Repr::Columnar(c) => Some(RelationStats::of_columnar(c)),
        }
    }

    /// Cardinality if materialized (row or columnar).
    pub fn cardinality(&self) -> Option<usize> {
        match &self.repr {
            Repr::Extension(r) | Repr::Both { extension: r, .. } => Some(r.len()),
            Repr::Generator(_) => None,
            Repr::Columnar(c) => Some(c.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_caql::parse_rule;
    use braid_relational::{tuple, Expr};

    fn def() -> ViewDef {
        ViewDef::new(parse_rule("e1(X, Y) :- b1(X, Y).").unwrap()).unwrap()
    }

    fn rel() -> Relation {
        Relation::from_tuples(
            Schema::of_strs("e1", &["x", "y"]),
            vec![tuple!["a", "1"], tuple!["b", "2"]],
        )
        .unwrap()
    }

    #[test]
    fn materialized_element_roundtrip() {
        let e = CacheElement::materialized(1, def(), rel(), 0);
        assert_eq!(e.cardinality(), Some(2));
        assert!(e.generator().is_none());
        assert_eq!(e.as_generator().materialize().unwrap().len(), 2);
    }

    #[test]
    fn lazy_element_materializes_to_both() {
        let g = Generator::scan(Arc::new(rel())).filter(Expr::always());
        let mut e = CacheElement::lazy(2, def(), g, 0);
        assert!(e.extension().is_none());
        let ext = e.ensure_extension().unwrap();
        assert_eq!(ext.len(), 2);
        // Now both representations co-exist (§5.2).
        assert!(e.generator().is_some());
        assert!(e.extension().is_some());
    }

    #[test]
    fn ensure_index_builds_once() {
        let mut e = CacheElement::materialized(3, def(), rel(), 0);
        assert!(e.ensure_index(&[0]).unwrap());
        assert!(!e.ensure_index(&[0]).unwrap());
        assert!(e.extension().unwrap().index_on(&[0]).is_some());
    }

    #[test]
    fn sorted_views_coexist_with_extension() {
        let mut e = CacheElement::materialized(6, def(), rel(), 0);
        let asc = e.sorted_tuples(&[(1, true)]).unwrap();
        let desc = e.sorted_tuples(&[(1, false)]).unwrap();
        assert_eq!(asc.len(), 2);
        assert_eq!(asc[0].values()[1], braid_relational::Value::str("1"));
        assert_eq!(desc[0].values()[1], braid_relational::Value::str("2"));
        // Both views coexist (§5.2) alongside the unsorted extension.
        assert_eq!(e.sorted_view_count(), 2);
        assert!(e.extension().is_some());
    }

    #[test]
    fn columnar_element_round_trips_losslessly() {
        let mut e = CacheElement::materialized(7, def(), rel(), 0);
        let col = e.ensure_columnar().unwrap();
        assert!(e.is_columnar());
        assert!(e.extension().is_none());
        assert_eq!(e.cardinality(), Some(2));
        assert_eq!(col.len(), 2);
        // The uniform access path serves the same tuples.
        assert_eq!(e.as_generator().materialize().unwrap(), rel());
        // And converting back recovers the identical row relation.
        let back = e.ensure_extension().unwrap();
        assert_eq!(*back, rel());
        assert!(!e.is_columnar());
    }

    #[test]
    fn columnar_element_reports_row_identical_stats() {
        let row = CacheElement::materialized(8, def(), rel(), 0);
        let mut col = CacheElement::materialized(9, def(), rel(), 0);
        col.ensure_columnar().unwrap();
        let rs = row.stats().unwrap();
        let cs = col.stats().unwrap();
        assert!(rs.same_logical_stats(&cs), "row {rs:?} vs columnar {cs:?}");
    }

    #[test]
    fn ensure_columnar_from_lazy_materializes_first() {
        let g = Generator::scan(Arc::new(rel())).filter(Expr::always());
        let mut e = CacheElement::lazy(10, def(), g, 0);
        e.ensure_columnar().unwrap();
        assert!(e.is_columnar());
        assert_eq!(e.as_generator().materialize().unwrap(), rel());
    }

    #[test]
    fn approx_bytes_smaller_for_generator() {
        let g = Generator::scan(Arc::new(rel()));
        let lazy = CacheElement::lazy(4, def(), g, 0);
        let eager = CacheElement::materialized(5, def(), rel(), 0);
        assert!(lazy.approx_bytes() < eager.approx_bytes());
    }
}
