//! The CMS facade: sessions, query answering, and every advice-driven
//! optimization wired together.
//!
//! The interaction protocol follows §3: "the typical mode of IE – CMS
//! interaction consists of a set of sessions. At the beginning of each
//! session, the IE submits a set of advice. This is followed by a sequence
//! of CAQL queries. The CMS returns the result for the query using a
//! stream."

use crate::advice_mgr::AdviceManager;
use crate::cache::{CacheManager, CacheRead, ElementBuilder};
use crate::config::CmsConfig;
use crate::error::{CmsError, Result};
use crate::metrics::{CmsMetrics, CmsMetricsSnapshot};
use crate::model::ModelRow;
use crate::monitor::{self, CoopCtx, ExecEnv, RemoteFlight};
use crate::planner::{self, PartSource, Plan};
use crate::resilience::Resilience;
use crate::shared::{PinGuard, SharedCache};
use crate::stream::{AnswerStream, Completeness};
use braid_advice::Advice;
use braid_caql::{Atom, ConjunctiveQuery, Term};
use braid_relational::Schema;
use braid_remote::{PoolStats, RemoteDbms, RemoteTransport, TcpClientPool, TransportConfig};
use braid_subsume::ViewDef;
use braid_trace::{TraceKind, TraceSink, Tracer};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// State shared by *every* session of one CMS: the sharded cache, the
/// remote handle, the metrics sink, the remote statistics snapshot, and
/// the single-flight table deduplicating concurrent remote fetches.
/// Everything here is usable through `&self` under its own interior
/// synchronization.
pub struct CmsShared {
    cache: Arc<SharedCache>,
    remote: RemoteDbms,
    // The fetch path every monitor execution uses: the in-process engine
    // (default — same handle as `remote`) or a pooled TCP client. Schema
    // and statistics lookups stay on the in-process handle either way;
    // only tuple fetches travel the transport.
    transport: Arc<dyn RemoteTransport>,
    metrics: Arc<CmsMetrics>,
    // Snapshot of the remote base-relation statistics ("(a copy of) the
    // remote database schema", §5), used by cost-based placement.
    remote_stats: planner::RemoteStats,
    // Sessions missing concurrently on subsumption-equivalent subqueries
    // share one remote fetch through this table.
    flight: RemoteFlight,
    // The CMS-wide trace sink from `CmsConfig::trace`; each session's
    // tracer fans out to it (plus any per-session sink attached for
    // EXPLAIN capture).
    trace: braid_trace::SinkHandle,
}

/// Cached-view names and remote-remainder labels of a plan.
type ViewsAndRemainder = (Vec<String>, Vec<String>);

/// Trace context captured at plan time (tracer enabled only). Folded
/// into the single `cms.plan` event so one wire query carries one
/// planner record per subquery instead of two with duplicate fields.
struct PlanTrace {
    views: Vec<String>,
    remainder: Vec<String>,
    /// Cache elements the subsumption probe examined.
    candidates: usize,
    /// Planning/pinning races lost before this plan pinned cleanly.
    replans: usize,
}

/// The Cache Management System: one session's view of the shared state.
///
/// The public API is `&mut self` per session, but all cross-session
/// state lives behind [`CmsShared`]; [`Cms::fork_session`] hands out
/// additional sessions over the same cache.
pub struct Cms {
    config: CmsConfig,
    shared: Arc<CmsShared>,
    advice: AdviceManager,
    result_counter: u64,
    // Retry/breaker/degradation policy. Per-session on purpose: one
    // session tripping its breaker must not flip sibling sessions into
    // degraded mode (their faults may be independent).
    resilience: Resilience,
    // Subqueries that went unanswered in degraded mode since the last
    // `take_missing_subqueries` call (session-level completeness).
    session_missing: Vec<String>,
    // Per-session tracer over the shared sink (plus an optional attached
    // session sink, used by `solve_explained` to capture one query's
    // span tree). Disabled tracers cost one branch per instrumentation
    // site.
    tracer: Tracer,
    // Cooperative-scheduling context: when set, single-flight joins
    // unwind with `WouldBlock` (parking the session on the worker pool)
    // instead of blocking the thread. `None` (the default) keeps every
    // existing blocking path byte-identical.
    coop: Option<Arc<CoopCtx>>,
}

impl Cms {
    /// Build a CMS in front of a remote DBMS.
    pub fn new(remote: RemoteDbms, config: CmsConfig) -> Cms {
        let remote_stats = remote.catalog().stats_snapshot();
        let metrics = Arc::new(CmsMetrics::new());
        let cache = Arc::new(SharedCache::new(
            config.cache_capacity_bytes,
            config.cache_shards,
            Arc::clone(&metrics),
        ));
        let transport: Arc<dyn RemoteTransport> = match &config.transport {
            // In-process: the transport *is* the engine handle (cheap
            // clone — RemoteDbms shares its catalog internally), keeping
            // the default path byte-identical to the pre-network CMS.
            TransportConfig::InProcess => Arc::new(remote.clone()),
            TransportConfig::Tcp(c) => {
                let pool = TcpClientPool::new(c.clone());
                pool.set_trace(config.trace.clone());
                Arc::new(pool)
            }
        };
        let shared = Arc::new(CmsShared {
            cache,
            remote,
            transport,
            metrics: Arc::clone(&metrics),
            remote_stats,
            flight: RemoteFlight::new(),
            trace: config.trace.clone(),
        });
        let tracer = Tracer::new(shared.trace.sink());
        let mut resilience = Resilience::new(config.resilience.clone(), metrics);
        resilience.set_tracer(tracer.clone());
        Cms {
            advice: AdviceManager::new(),
            resilience,
            result_counter: 0,
            config,
            shared,
            session_missing: Vec::new(),
            tracer,
            coop: None,
        }
    }

    /// A new session over the *same* shared cache, remote handle, metrics
    /// and single-flight table: fresh advice tracker, fresh resilience
    /// view, fresh completeness bookkeeping. This is how `BraidSystem`
    /// serves N concurrent sessions against one cache.
    pub fn fork_session(&self) -> Cms {
        let tracer = Tracer::new(self.shared.trace.sink());
        let mut resilience = Resilience::new(
            self.config.resilience.clone(),
            Arc::clone(&self.shared.metrics),
        );
        resilience.set_tracer(tracer.clone());
        Cms {
            advice: AdviceManager::new(),
            resilience,
            result_counter: 0,
            config: self.config.clone(),
            shared: Arc::clone(&self.shared),
            session_missing: Vec::new(),
            tracer,
            coop: None,
        }
    }

    /// This session's tracer (the IE opens its own spans on it so IE →
    /// CMS → remote stages share one span tree).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Fan this session's trace out to `sink` *in addition to* the
    /// CMS-wide sink, until [`Cms::detach_session_sink`]. This is how
    /// per-query EXPLAIN captures one query's spans without disturbing
    /// the shared log.
    pub fn attach_session_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.attach_session_sink_at(sink, std::time::Instant::now());
    }

    /// Like [`Cms::attach_session_sink`], but span timestamps are
    /// measured from `epoch` instead of the attach instant. A server
    /// shipping spans across the wire pins every session's tracer to
    /// one server-wide epoch so a single clock-offset exchange
    /// normalizes all of them on the client.
    pub fn attach_session_sink_at(&mut self, sink: Arc<dyn TraceSink>, epoch: std::time::Instant) {
        self.tracer = Tracer::fanout_at(vec![self.shared.trace.sink(), sink], epoch);
        self.resilience.set_tracer(self.tracer.clone());
    }

    /// Drop any per-session sink and return to the CMS-wide sink alone.
    pub fn detach_session_sink(&mut self) {
        self.tracer = Tracer::new(self.shared.trace.sink());
        self.resilience.set_tracer(self.tracer.clone());
    }

    /// The shared cache handle (invariant checks in tests and benches).
    pub fn shared_cache(&self) -> &Arc<SharedCache> {
        &self.shared.cache
    }

    /// Start a session: install the advice bundle (§3).
    pub fn begin_session(&mut self, advice: Advice) {
        self.advice.begin_session(advice);
    }

    /// Workstation-side metrics (shared across all sessions).
    pub fn metrics(&self) -> CmsMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The live shared metrics handle — for wiring the same counters
    /// into a [`crate::WorkerPool`] scheduling this CMS's sessions.
    pub fn metrics_handle(&self) -> Arc<CmsMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Install (or clear) the cooperative-scheduling context for this
    /// session. With a context set, a fetch that would join an in-flight
    /// single-flight entry surfaces [`CmsError::WouldBlock`] instead of
    /// blocking; the worker pool parks the session and re-runs the query
    /// when the flight's waker fires.
    pub fn set_coop(&mut self, coop: Option<Arc<CoopCtx>>) {
        self.coop = coop;
    }

    /// Flights currently open in the shared single-flight table — the
    /// "no leaked wakers" quiescence check (must be 0 once every session
    /// has completed).
    pub fn open_flights(&self) -> usize {
        self.shared.flight.open_flights()
    }

    /// The remote server handle (shared, cheap to clone).
    pub fn remote(&self) -> &RemoteDbms {
        &self.shared.remote
    }

    /// Connection-pool gauges when the fetch path is TCP; `None` on the
    /// in-process transport. Tests assert `in_use` drains to zero here.
    pub fn transport_pool_stats(&self) -> Option<PoolStats> {
        self.shared.transport.pool_stats()
    }

    /// The resilience policy engine (breaker state introspection).
    pub fn resilience(&self) -> &Resilience {
        &self.resilience
    }

    /// Drain the subquery descriptions that went unanswered in degraded
    /// mode since the last call. Empty ⇒ every answer handed out since
    /// then was `Exact`.
    pub fn take_missing_subqueries(&mut self) -> Vec<String> {
        std::mem::take(&mut self.session_missing)
    }

    /// The remote database schema — the IE "can access the schema
    /// information from the DBMS (via the CMS)" (§3).
    pub fn remote_schema(&self, relation: &str) -> Result<Schema> {
        Ok(self.shared.remote.catalog().schema(relation)?.clone())
    }

    /// Export the cache model — the IE "can access cache model
    /// information from the CMS" (§3).
    pub fn cache_model(&self) -> Vec<ModelRow> {
        self.shared.cache.model()
    }

    /// Number of cached elements.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Cache evictions so far.
    pub fn cache_evictions(&self) -> u64 {
        self.shared.cache.evictions()
    }

    /// Active configuration.
    pub fn config(&self) -> &CmsConfig {
        &self.config
    }

    /// Is path-expression tracking currently in sync? `false` when no
    /// path expression was submitted or an unpredicted query arrived
    /// (§4.2.2 — a lost tracker yields no predictions until the next
    /// session).
    pub fn advice_tracking(&self) -> bool {
        self.advice.tracking()
    }

    /// Answer an IE-query given as a bare view-instance head, expanding it
    /// through the session's view specifications.
    ///
    /// # Errors
    /// Returns [`CmsError::UnknownView`] when no spec defines the head.
    pub fn query_head(&mut self, head: &Atom) -> Result<AnswerStream> {
        let q = self
            .advice
            .expand(head)
            .ok_or_else(|| CmsError::UnknownView(head.pred.clone()))?;
        self.query(q)
    }

    /// Answer a full CAQL conjunctive query (the general entry point).
    ///
    /// # Errors
    /// Propagates planning and execution errors.
    pub fn query(&mut self, q: ConjunctiveQuery) -> Result<AnswerStream> {
        let started = Instant::now();
        let mut span = self
            .tracer
            .span_lazy(TraceKind::Query, || q.head.to_string());
        let result = self.query_inner(&q);
        if span.is_live() {
            match &result {
                Ok(stream) => span.field("lazy", if stream.is_lazy() { "true" } else { "false" }),
                Err(e) => span.field("error", e.to_string()),
            }
        }
        drop(span);
        self.shared
            .metrics
            .record_query_latency(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        result
    }

    fn query_inner(&mut self, q: &ConjunctiveQuery) -> Result<AnswerStream> {
        self.shared.metrics.add_queries(1);
        self.advice.observe(&q.head);

        // [CERI86] baseline mode: buffer whole base relations on first
        // touch, then answer every query from the local copies.
        if self.config.whole_relation_caching {
            self.buffer_whole_relations(q)?;
        }

        // ---- Step 1 (§5.3.1): determine the query to be evaluated. ----
        // Generalize when advice shows a strictly more general view spec
        // segment, the cache cannot already answer, and the path
        // expression predicts reuse.
        if self.config.generalization {
            let already_answerable = !self.shared.cache.whole_subsumers(q).is_empty();
            if !already_answerable {
                if let Some((gen, source_view)) = self.advice.generalization_candidate(q) {
                    // The generalized data pays off when the view whose
                    // body subsumed us (e.g. d3 for the b1 generalization
                    // of §5.3.1) is predicted to be queried later.
                    let predicted =
                        usize::from(self.advice.predicted_distance(&source_view).is_some());
                    if predicted >= self.config.generalization_min_predicted_reuse
                        || self.config.generalization_min_predicted_reuse == 0
                    {
                        match self.evaluate_into_cache(&gen, false) {
                            Ok(()) => {
                                self.shared.metrics.add_generalized(1);
                                self.tracer.event(
                                    TraceKind::Generalize,
                                    gen.head.to_string(),
                                    vec![("source_view", source_view)],
                                );
                            }
                            // The park signal must reach the scheduler:
                            // swallowing it here would leave the session's
                            // registered waker with no matching park.
                            Err(e) if e.is_would_block() => return Err(e),
                            // Speculative evaluation: any other failure
                            // just means no generalized fetch.
                            Err(_) => {}
                        }
                    }
                }
            }
        }

        // ---- Steps 2–3: plan and execute. ----
        let (plan, pins, trace_info) = self.plan_pinned(q, self.config.subsumption, true)?;
        let stream = self.answer_with_plan(q, plan, pins, trace_info)?;

        // ---- Advice-driven follow-ups. ----
        self.apply_replacement_advice();
        if self.config.prefetching {
            self.run_prefetches()?;
        }
        Ok(stream)
    }

    /// Everything a `monitor::execute` call needs from this session.
    fn exec_env(&self) -> ExecEnv<'_> {
        ExecEnv {
            transport: &*self.shared.transport,
            resilience: &self.resilience,
            flight: Some(&self.shared.flight),
            coop: self.coop.as_deref(),
            flight_join_timeout: (self.config.flight_join_timeout_ms > 0)
                .then(|| Duration::from_millis(self.config.flight_join_timeout_ms)),
            parallel: self.config.parallel_execution,
            pipelined: self.config.pipelining,
            buffer: self.config.transfer_buffer_tuples,
            exec: self.config.exec,
            trace: &self.tracer,
        }
    }

    /// Cached-view names and remote-remainder descriptions of a plan —
    /// the payload of the `cms.plan` trace event and of EXPLAIN reports.
    /// Only called when tracing is enabled.
    fn plan_views_and_remainder(&self, plan: &Plan) -> ViewsAndRemainder {
        let mut views = Vec::new();
        let mut remainder = Vec::new();
        for part in plan.parts.iter().chain(plan.neg_parts.iter()) {
            match &part.source {
                PartSource::Cache { element, .. } => {
                    let name = self
                        .shared
                        .cache
                        .with_element(*element, |e| e.def.name().to_string())
                        .unwrap_or_else(|| format!("element #{element}"));
                    views.push(name);
                }
                PartSource::Remote { .. } => remainder.push(monitor::part_label(part)),
            }
        }
        (views, remainder)
    }

    /// Plan a query and *pin* every cache element the plan reads, so a
    /// concurrent session's eviction cannot invalidate the plan between
    /// planning and execution. When a planned element has already been
    /// evicted by the time we try to pin it, the stale plan is discarded
    /// and planning reruns against the current cache; after a bounded
    /// number of lost races the query falls back to an all-remote plan
    /// (planned against an empty cache), which needs no pins at all.
    fn plan_pinned(
        &self,
        q: &ConjunctiveQuery,
        use_subsumption: bool,
        cost_based: bool,
    ) -> Result<(Plan, Vec<PinGuard>, Option<PlanTrace>)> {
        for attempt in 0..3 {
            let mut plan = planner::plan(q, &*self.shared.cache, use_subsumption)?;
            if cost_based && self.config.cost_based_placement {
                plan = planner::choose_placement(
                    plan,
                    &*self.shared.cache,
                    &self.shared.remote_stats,
                    self.shared.remote.cost_model().request_overhead_units as f64,
                );
            }
            if let Some(pins) = self.pin_plan(&plan) {
                // Views/remainder are computed once here and handed to
                // `answer_with_plan` so the `cms.plan` event does not pay
                // the cache lookups a second time.
                let trace_info = if self.tracer.enabled() {
                    let (views, remainder) = self.plan_views_and_remainder(&plan);
                    Some(PlanTrace {
                        views,
                        remainder,
                        candidates: self.shared.cache.len(),
                        replans: attempt,
                    })
                } else {
                    None
                };
                return Ok((plan, pins, trace_info));
            }
        }
        // Lost the planning/pinning race three times: a concurrent session
        // evicted a planned element each time. Fall back to all-remote.
        self.tracer.event(
            TraceKind::PinFallback,
            q.head.to_string(),
            vec![("replans", "3".to_string())],
        );
        let empty = CacheManager::new(0);
        Ok((planner::plan(q, &empty, false)?, Vec::new(), None))
    }

    /// Pin every cache element a plan references. `None` when any element
    /// has vanished (the pins taken so far release on drop).
    fn pin_plan(&self, plan: &Plan) -> Option<Vec<PinGuard>> {
        let mut pins = Vec::new();
        for part in plan.parts.iter().chain(plan.neg_parts.iter()) {
            if let PartSource::Cache { element, .. } = &part.source {
                pins.push(self.shared.cache.try_pin(*element)?);
            }
        }
        Some(pins)
    }

    /// Plan → (lazy | eager) answer, with result caching and index advice.
    /// `pins` hold the plan's cache elements resident; the eager path
    /// releases them once the result is materialized, the lazy path moves
    /// them into the answer stream so they outlive this call.
    fn answer_with_plan(
        &mut self,
        q: &ConjunctiveQuery,
        plan: Plan,
        pins: Vec<PinGuard>,
        trace_info: Option<PlanTrace>,
    ) -> Result<AnswerStream> {
        let all_cache = plan.all_cache();
        let any_cache = plan.parts.iter().any(crate::planner::PlanPart::is_cache);
        if all_cache {
            self.shared.metrics.add_full_cache(1);
        } else if any_cache {
            self.shared.metrics.add_partial_cache(1);
        }
        self.shared
            .metrics
            .add_remote_subqueries(plan.remote_parts() as u64);

        // Planner-decision trace record: where the answer will come from,
        // which cached views serve it, and what remains for the remote.
        let mut decision_fields = if self.tracer.enabled() {
            let info = trace_info.unwrap_or_else(|| {
                let (views, remainder) = self.plan_views_and_remainder(&plan);
                PlanTrace {
                    views,
                    remainder,
                    candidates: self.shared.cache.len(),
                    replans: 0,
                }
            });
            Some(vec![
                (
                    "decision",
                    if all_cache {
                        "full_cache".to_string()
                    } else if any_cache {
                        "mixed".to_string()
                    } else {
                        "all_remote".to_string()
                    },
                ),
                (
                    "cache_parts",
                    (plan.parts.len() - plan.remote_parts()).to_string(),
                ),
                ("remote_parts", plan.remote_parts().to_string()),
                ("matched_views", info.views.join(", ")),
                ("remainder", info.remainder.join("; ")),
                ("pins", pins.len().to_string()),
                ("candidates", info.candidates.to_string()),
                ("replans", info.replans.to_string()),
            ])
        } else {
            None
        };

        // Touch used elements (LRU + hit statistics).
        for part in &plan.parts {
            if let crate::planner::PartSource::Cache { element, .. } = &part.source {
                self.shared.cache.touch(*element);
            }
        }

        // Lazy path (§5.1, §5.3.3 guideline): a single cache part covering
        // the whole query, an all-variable head, and either a
        // strictly-producer view or no advice constraint — produce a
        // generator and stream on demand.
        let head_all_vars = q.head.args.iter().all(Term::is_var);
        let producer_style = self.advice.strictly_producer(&q.head.pred)
            || self.advice.consumer_vars(&q.head.pred).is_empty();
        if all_cache
            && self.config.lazy_evaluation
            && head_all_vars
            && producer_style
            && plan.parts.len() == 1
        {
            if let crate::planner::PartSource::Cache {
                element,
                derivation,
            } = &plan.parts[0].source
            {
                let head_vars: Vec<&str> = q.head.args.iter().filter_map(Term::as_var).collect();
                // Residual comparisons must be inside the derivation
                // already (whole-query component carries them) and no
                // anti-joins may be pending, so the generator is complete.
                if plan.residual_cmps.is_empty() && plan.neg_parts.is_empty() {
                    if let Some(mut fields) = decision_fields.take() {
                        fields.push(("mode", "lazy".to_string()));
                        self.tracer
                            .event(TraceKind::PlanDecision, q.head.to_string(), fields);
                    }
                    let g = self.shared.cache.derive(*element, derivation, &head_vars)?;
                    self.shared.metrics.add_lazy(1);
                    self.shared
                        .metrics
                        .add_columnar_hits(u64::from(self.shared.cache.is_columnar(*element)));
                    // The stream keeps the pins: the generator reads the
                    // element's (Arc-shared) extension, and the pin keeps
                    // concurrent eviction from dropping the element — and
                    // with it the cache's claim the data is resident —
                    // while the IE is still pulling tuples.
                    return Ok(AnswerStream::lazy_pinned(
                        g.open_with(self.config.exec),
                        pins,
                    ));
                }
            }
        }

        // Eager path: execute the full plan (pins stay held across the
        // execution, then release when this function returns).
        if let Some(mut fields) = decision_fields.take() {
            fields.push(("mode", "eager".to_string()));
            self.tracer
                .event(TraceKind::PlanDecision, q.head.to_string(), fields);
        }
        let executed = match monitor::execute(&plan, &*self.shared.cache, &self.exec_env()) {
            Ok(ex) => ex,
            // Graceful degradation (§ failure model, DESIGN.md): the
            // remote stayed unreachable through every retry. Answer from
            // what is provable locally and tag the stream Partial.
            Err(e) if e.is_transient() && self.config.resilience.degraded_mode => {
                return self.degraded_answer(q, &plan);
            }
            Err(e) => return Err(e),
        };
        drop(pins);
        self.shared.metrics.add_local_ops(executed.local_tuple_ops);
        self.shared.metrics.add_exec_stats(executed.exec_stats);
        self.shared
            .metrics
            .add_columnar_hits(executed.columnar_parts);

        let vars: Vec<String> = executed
            .joined
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();

        // Result caching (§5.3): only when the plan touched the remote
        // system — an all-cache answer adds no new information.
        if self.config.result_caching && !all_cache {
            self.cache_result(q, &executed.joined, &vars);
        }

        let head = monitor::project_head(&executed.joined, &vars, &q.head)?;
        let tuples = head.to_vec();
        self.shared.metrics.add_tuples_to_ie(tuples.len() as u64);
        Ok(AnswerStream::eager(head.schema().clone(), tuples))
    }

    /// Cache-only answer for a plan whose remote parts are unreachable.
    ///
    /// Soundness: the query is a *conjunction*, so any tuple in its true
    /// result must satisfy the remote parts too — tuples built from the
    /// cache parts alone would be a superset, not a subset. The only
    /// provable answers without the remote are therefore none at all,
    /// and the stream's value is the `Partial` tag naming exactly which
    /// subqueries the cache could not cover. (Queries subsumption *can*
    /// cover never reach this path: their plans have no remote parts.)
    fn degraded_answer(&mut self, q: &ConjunctiveQuery, plan: &Plan) -> Result<AnswerStream> {
        let mut missing: Vec<String> = Vec::new();
        for part in plan.parts.iter().chain(plan.neg_parts.iter()) {
            if let PartSource::Remote { atoms, cmps } = &part.source {
                let mut desc: Vec<String> = atoms.iter().map(ToString::to_string).collect();
                desc.extend(cmps.iter().map(ToString::to_string));
                missing.push(desc.join(" & "));
            }
        }
        self.shared.metrics.add_degraded(1);
        self.session_missing.extend(missing.iter().cloned());
        self.tracer.event(
            TraceKind::Degraded,
            q.head.to_string(),
            vec![("missing_subqueries", missing.join("; "))],
        );

        let names: Vec<String> = (0..q.head.arity()).map(|i| format!("h{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let schema = Schema::of_strs(q.head.pred.clone(), &name_refs);
        Ok(
            AnswerStream::eager(schema, Vec::new()).with_completeness(Completeness::Partial {
                missing_subqueries: missing,
            }),
        )
    }

    /// Store the (pre-head-projection) result as a new cache element under
    /// an all-variables definition, plus an exact-match alias for the
    /// original query. Applies index advice to consumer-annotated columns.
    fn cache_result(
        &mut self,
        q: &ConjunctiveQuery,
        joined: &braid_relational::Relation,
        vars: &[String],
    ) {
        self.result_counter += 1;
        let def_head = Atom::new(
            q.head.pred.clone(),
            vars.iter().map(|v| Term::var(v.clone())).collect(),
        );
        let def_q = ConjunctiveQuery::new(def_head, q.body.clone());
        let Ok(def) = ViewDef::new(def_q) else {
            return; // non-PSJ bodies are not cacheable for reuse
        };
        let aliases = vec![{
            let mut aq = q.clone();
            aq.head.pred = "_".to_string();
            aq.canonical_key()
        }];
        let (id, evicted) = self.shared.cache.insert_with_aliases(
            def,
            ElementBuilder::Materialized(joined.clone()),
            &aliases,
        );
        self.shared.metrics.add_evictions(evicted);
        if evicted > 0 {
            self.tracer.event(
                TraceKind::Eviction,
                q.head.pred.clone(),
                vec![("evicted", evicted.to_string())],
            );
        }
        let Some(id) = id else {
            return;
        };
        if self.tracer.enabled() {
            self.tracer.event(
                TraceKind::CacheInsert,
                q.head.pred.clone(),
                vec![
                    ("element", id.to_string()),
                    ("rows", joined.len().to_string()),
                ],
            );
        }

        // Index advice (§4.2.1/§5.3.3): if this element can serve a view
        // specification's body component whose variables carry consumer
        // (`?`) annotations, those columns are "prime candidate[s] for
        // indexing" — the paper's "index E12 on the third attribute
        // (because it was annotated as a consumer variable in the view
        // specifications)".
        let mut wants_index = false;
        if self.config.index_advice {
            let _ = vars;
            let advice = self.advice.advice();
            let to_index: Vec<usize> = self
                .shared
                .cache
                .with_element(id, |e| {
                    let mut to_index: Vec<usize> = Vec::new();
                    for spec in &advice.view_specs {
                        let consumers: Vec<String> = spec
                            .params
                            .iter()
                            .filter(|(_, a)| *a == braid_advice::Annotation::Consumer)
                            .filter_map(|(t, _)| t.as_var().map(str::to_string))
                            .collect();
                        if consumers.is_empty() {
                            continue;
                        }
                        let sq = spec.to_query();
                        for comp in braid_subsume::decompose(&sq) {
                            let comp_vars = comp.vars();
                            let wanted: Vec<&str> = consumers
                                .iter()
                                .map(String::as_str)
                                .filter(|v| comp_vars.contains(*v))
                                .collect();
                            if wanted.is_empty() {
                                continue;
                            }
                            if let Some(d) = braid_subsume::subsumes(&e.def, &comp, &wanted) {
                                for v in &wanted {
                                    if let Some(c) = d.var_cols.get(*v) {
                                        if !to_index.contains(c) {
                                            to_index.push(*c);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    to_index
                })
                .unwrap_or_default();
            wants_index = !to_index.is_empty();
            if !to_index.is_empty() {
                if let Some((built, evicted)) = self.shared.cache.with_element_mut(id, |e| {
                    let mut built = 0u64;
                    for c in to_index {
                        if e.ensure_index(&[c]).unwrap_or(false) {
                            built += 1;
                        }
                    }
                    built
                }) {
                    self.shared.metrics.add_indices(built);
                    self.shared.metrics.add_evictions(evicted);
                    if built > 0 {
                        self.tracer.event(
                            TraceKind::IndexBuild,
                            q.head.pred.clone(),
                            vec![("element", id.to_string()), ("indices", built.to_string())],
                        );
                    }
                }
            }
        }

        // Representation choice (§5.2's co-existing alternative
        // representations): under columnar mode, producer-style elements
        // — no consumer-annotated columns asking for an index — convert
        // to the column-major form so sequential scans and aggregates
        // compile to the vectorized kernels. Elements whose advice
        // predicts point probes keep the (indexed) row extension.
        if self.config.columnar {
            if wants_index {
                self.shared.metrics.add_columnar_fallbacks(1);
                self.tracer.event(
                    TraceKind::ColumnarRepr,
                    q.head.pred.clone(),
                    vec![
                        ("element", id.to_string()),
                        ("repr", "rows".to_string()),
                        ("reason", "consumer_annotations".to_string()),
                    ],
                );
            } else if let Some((converted, evicted)) = self
                .shared
                .cache
                .with_element_mut(id, |e| e.ensure_columnar().is_ok())
            {
                self.shared.metrics.add_evictions(evicted);
                if converted {
                    self.shared.metrics.add_columnar_conversions(1);
                    self.tracer.event(
                        TraceKind::ColumnarRepr,
                        q.head.pred.clone(),
                        vec![
                            ("element", id.to_string()),
                            ("repr", "columnar".to_string()),
                        ],
                    );
                }
            }
        }
    }

    /// Evaluate a query for its side effect on the cache (generalization
    /// and prefetching). Skips evaluation when the cache already subsumes
    /// it.
    fn evaluate_into_cache(&mut self, q: &ConjunctiveQuery, count_prefetch: bool) -> Result<()> {
        if !self.shared.cache.whole_subsumers(q).is_empty() {
            return Ok(());
        }
        // §5.1's storage criterion (c): do not speculatively fetch an
        // extension that cannot be kept — "whether cache space is
        // available for storage of the extension". Estimated via the
        // remote statistics; ~48 bytes/tuple matches the synthetic data.
        let atoms: Vec<braid_caql::Atom> = q.positive_atoms().into_iter().cloned().collect();
        let est_tuples = planner::estimate_conjunction(&atoms, &self.shared.remote_stats);
        let est_bytes = est_tuples * 48.0;
        if est_bytes > self.config.cache_capacity_bytes as f64 {
            return Ok(());
        }
        let (plan, pins, _) = self.plan_pinned(q, self.config.subsumption, false)?;
        if plan.all_cache() {
            return Ok(());
        }
        let executed = monitor::execute(&plan, &*self.shared.cache, &self.exec_env())?;
        drop(pins);
        self.shared.metrics.add_local_ops(executed.local_tuple_ops);
        self.shared.metrics.add_exec_stats(executed.exec_stats);
        self.shared
            .metrics
            .add_remote_subqueries(executed.remote_subqueries);
        self.shared
            .metrics
            .add_columnar_hits(executed.columnar_parts);
        let vars: Vec<String> = executed
            .joined
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        self.cache_result(q, &executed.joined, &vars);
        if count_prefetch {
            self.shared.metrics.add_prefetched(1);
        }
        Ok(())
    }

    /// §4.2.2 + §5.4: pin cached elements whose views the path expression
    /// predicts within the horizon, so LRU replacement skips them.
    fn apply_replacement_advice(&mut self) {
        if !self.config.advice_replacement {
            return;
        }
        let views: BTreeSet<String> = self.advice.pinned_views(self.config.pin_horizon);
        let pinned = self
            .shared
            .cache
            .ids_matching(|e| views.contains(e.def.name()));
        self.shared.cache.set_pins(&pinned);
    }

    /// Fetch-and-cache the full extension of every base relation the
    /// query touches (single-relation buffering, \[CERI86\]).
    fn buffer_whole_relations(&mut self, q: &ConjunctiveQuery) -> Result<()> {
        let preds: Vec<(String, usize)> = q
            .body
            .iter()
            .filter_map(|l| match l {
                braid_caql::Literal::Atom(a) | braid_caql::Literal::Neg(a) => {
                    Some((a.pred.clone(), a.arity()))
                }
                _ => None,
            })
            .collect();
        for (pred, arity) in preds {
            if self.shared.remote.catalog().schema(&pred).is_err() {
                continue; // not a base relation
            }
            let args: Vec<Term> = (0..arity).map(|i| Term::Var(format!("W{i}"))).collect();
            let head = Atom::new(format!("whole_{pred}"), args.clone());
            let whole =
                ConjunctiveQuery::new(head, vec![braid_caql::Literal::Atom(Atom::new(pred, args))]);
            if self.shared.cache.whole_subsumers(&whole).is_empty() {
                let (plan, pins, _) = self.plan_pinned(&whole, true, false)?;
                if plan.all_cache() {
                    continue;
                }
                let executed = monitor::execute(&plan, &*self.shared.cache, &self.exec_env())?;
                drop(pins);
                self.shared.metrics.add_local_ops(executed.local_tuple_ops);
                self.shared.metrics.add_exec_stats(executed.exec_stats);
                self.shared
                    .metrics
                    .add_remote_subqueries(executed.remote_subqueries);
                self.shared
                    .metrics
                    .add_columnar_hits(executed.columnar_parts);
                let vars: Vec<String> = executed
                    .joined
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| c.name.clone())
                    .collect();
                self.cache_result(&whole, &executed.joined, &vars);
            }
        }
        Ok(())
    }

    /// §5.3.1 prefetching: evaluate predicted-next queries (with observed
    /// constants) into the cache before the IE asks.
    fn run_prefetches(&mut self) -> Result<()> {
        let heads = self.advice.prefetch_heads();
        if heads.is_empty() {
            return Ok(());
        }
        // Prefetch evaluation is speculative cache warming, not part of
        // the answer the caller asked about: mute span recording while
        // each prediction evaluates, so a traced query records one
        // `Prefetch` event per prediction instead of every prediction's
        // whole nested solve — the difference between shipping a handful
        // of spans per query over the wire and shipping dozens.
        let muted = self.tracer.enabled();
        let loud = self.tracer.clone();
        if muted {
            self.tracer = Tracer::new(Arc::new(braid_trace::NoopSink));
            self.resilience.set_tracer(self.tracer.clone());
        }
        let mut fetched = Vec::new();
        let mut parked = None;
        for head in heads {
            let Some(q) = self.advice.expand(&head) else {
                continue;
            };
            match self.evaluate_into_cache(&q, true) {
                Ok(()) => fetched.push(head),
                // Parks propagate (see the generalization arm); any
                // other prefetch failure is silently skipped as before.
                Err(e) if e.is_would_block() => {
                    parked = Some(e);
                    break;
                }
                Err(_) => {}
            }
        }
        if muted {
            self.tracer = loud;
            self.resilience.set_tracer(self.tracer.clone());
        }
        for head in fetched {
            self.tracer
                .event(TraceKind::Prefetch, head.to_string(), Vec::new());
        }
        parked.map_or(Ok(()), Err)
    }
}

impl std::fmt::Debug for Cms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cms")
            .field("cache_elements", &self.shared.cache.len())
            .field("cache_bytes", &self.shared.cache.used_bytes())
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_advice::{parse_path_expr, parse_view_spec};
    use braid_caql::{parse_atom, parse_rule};
    use braid_relational::{tuple, Relation};
    use braid_remote::Catalog;

    /// Remote database for the paper's Example 1 rule set.
    fn remote() -> RemoteDbms {
        let mut c = Catalog::new();
        c.install(
            Relation::from_tuples(
                Schema::of_strs("b1", &["a", "b"]),
                vec![tuple!["c1", "y1"], tuple!["c1", "y2"], tuple!["z5", "y9"]],
            )
            .unwrap(),
        );
        c.install(
            Relation::from_tuples(
                Schema::of_strs("b2", &["a", "b"]),
                vec![tuple!["x1", "z1"], tuple!["x2", "z2"], tuple!["x3", "z1"]],
            )
            .unwrap(),
        );
        c.install(
            Relation::from_tuples(
                Schema::of_strs("b3", &["a", "b", "c"]),
                vec![
                    tuple!["z1", "c2", "y1"],
                    tuple!["z2", "c2", "y2"],
                    tuple!["x9", "c3", "z5"],
                ],
            )
            .unwrap(),
        );
        RemoteDbms::with_defaults(c)
    }

    fn example1_advice() -> Advice {
        let mut a = Advice::none();
        a.view_specs
            .push(parse_view_spec("d1(Y^) =def b1(c1, Y^) (R1)").unwrap());
        a.view_specs
            .push(parse_view_spec("d2(X^, Y?) =def b2(X^, Z) & b3(Z, c2, Y?) (R2)").unwrap());
        a.view_specs
            .push(parse_view_spec("d3(X^, Y?) =def b3(X^, c3, Z) & b1(Z, Y?) (R3)").unwrap());
        a.path = Some(parse_path_expr("(d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>").unwrap());
        a
    }

    #[test]
    fn direct_query_round_trip() {
        let mut cms = Cms::new(remote(), CmsConfig::braid());
        let q = parse_rule("q(X) :- b2(X, Z), b3(Z, c2, y1).").unwrap();
        let answers = cms.query(q).unwrap().drain();
        let mut names: Vec<String> = answers.iter().map(|t| t.values()[0].to_string()).collect();
        names.sort();
        assert_eq!(names, vec!["x1", "x3"]);
    }

    #[test]
    fn repeated_query_served_from_cache() {
        let mut cms = Cms::new(
            remote(),
            CmsConfig::braid()
                .with_prefetching(false)
                .with_generalization(false),
        );
        let q = parse_rule("q(X) :- b2(X, Z), b3(Z, c2, y1).").unwrap();
        cms.query(q.clone()).unwrap().drain();
        let before = cms.remote().metrics().requests;
        cms.query(q).unwrap().drain();
        assert_eq!(
            cms.remote().metrics().requests,
            before,
            "second run hits cache"
        );
        assert!(cms.metrics().full_cache_answers >= 1);
    }

    #[test]
    fn subsumption_reuses_generalized_result() {
        let mut cms = Cms::new(
            remote(),
            CmsConfig::braid()
                .with_prefetching(false)
                .with_generalization(false),
        );
        // Fetch the general b3 extension...
        let general = parse_rule("g(X, Y) :- b3(X, c2, Y).").unwrap();
        cms.query(general).unwrap().drain();
        let before = cms.remote().metrics().requests;
        // ... then an instantiated query: answered locally by subsumption.
        let instance = parse_rule("q(X) :- b3(X, c2, y2).").unwrap();
        let answers = cms.query(instance).unwrap().drain();
        assert_eq!(answers.len(), 1);
        assert_eq!(cms.remote().metrics().requests, before);
    }

    #[test]
    fn exact_match_config_does_not_reuse_generalization() {
        let mut cms = Cms::new(remote(), CmsConfig::exact_match());
        let general = parse_rule("g(X, Y) :- b3(X, c2, Y).").unwrap();
        cms.query(general).unwrap().drain();
        let before = cms.remote().metrics().requests;
        let instance = parse_rule("q(X) :- b3(X, c2, y2).").unwrap();
        cms.query(instance).unwrap().drain();
        assert!(
            cms.remote().metrics().requests > before,
            "exact-match cache must miss on the instantiated query"
        );
    }

    #[test]
    fn view_head_queries_require_advice() {
        let mut cms = Cms::new(remote(), CmsConfig::braid());
        let err = cms.query_head(&parse_atom("d1(Y)").unwrap()).unwrap_err();
        assert!(matches!(err, CmsError::UnknownView(_)));
        cms.begin_session(example1_advice());
        let answers = cms
            .query_head(&parse_atom("d1(Y)").unwrap())
            .unwrap()
            .drain();
        let mut ys: Vec<String> = answers.iter().map(|t| t.values()[0].to_string()).collect();
        ys.sort();
        assert_eq!(ys, vec!["y1", "y2"]);
    }

    #[test]
    fn generalization_turns_instance_queries_into_cache_hits() {
        let mut cms = Cms::new(remote(), CmsConfig::braid().with_prefetching(false));
        cms.begin_session(example1_advice());
        // d1(Y) = b1(c1, Y): generalized to b1(X, Y) because d3's body
        // holds the subsuming b1(Z, Y) — §5.3.1's exact scenario.
        cms.query_head(&parse_atom("d1(Y)").unwrap())
            .unwrap()
            .drain();
        assert!(cms.metrics().generalized_queries >= 1);
        let before = cms.remote().metrics().requests;
        // Any other b1 instance is now cache-resident.
        let q = parse_rule("q(Y) :- b1(z5, Y).").unwrap();
        let answers = cms.query(q).unwrap().drain();
        assert_eq!(answers.len(), 1);
        assert_eq!(cms.remote().metrics().requests, before);
    }

    #[test]
    fn prefetch_loads_predicted_query() {
        let mut cms = Cms::new(remote(), CmsConfig::braid());
        cms.begin_session(example1_advice());
        cms.query_head(&parse_atom("d1(Y)").unwrap())
            .unwrap()
            .drain();
        // After d2(X, y1), the tracker predicts d3(X^, y1): prefetched.
        cms.query_head(&parse_atom("d2(X, y1)").unwrap())
            .unwrap()
            .drain();
        assert!(cms.metrics().prefetched_queries >= 1);
        let before = cms.remote().metrics().requests;
        let answers = cms
            .query_head(&parse_atom("d3(X, y1)").unwrap())
            .unwrap()
            .drain();
        assert_eq!(cms.remote().metrics().requests, before, "d3 was prefetched");
        // d3(X, y1) = b3(X, c3, Z) & b1(Z, y1): x9 → z5 → y9 ≠ y1 ⇒ empty.
        assert!(answers.is_empty());
    }

    #[test]
    fn lazy_answer_for_producer_views() {
        let mut cms = Cms::new(
            remote(),
            CmsConfig::braid()
                .with_prefetching(false)
                .with_generalization(false),
        );
        // Populate the cache with the general relation.
        let general = parse_rule("g(X, Y) :- b3(X, c2, Y).").unwrap();
        cms.query(general.clone()).unwrap().drain();
        // Re-asking (all-variable head, no advice constraints): lazy.
        let s = cms.query(general).unwrap();
        assert!(s.is_lazy());
        assert!(cms.metrics().lazy_answers >= 1);
        assert_eq!(s.drain().len(), 2);
    }

    #[test]
    fn lazy_disabled_by_config() {
        let mut cms = Cms::new(
            remote(),
            CmsConfig::braid()
                .with_lazy(false)
                .with_prefetching(false)
                .with_generalization(false),
        );
        let general = parse_rule("g(X, Y) :- b3(X, c2, Y).").unwrap();
        cms.query(general.clone()).unwrap().drain();
        let s = cms.query(general).unwrap();
        assert!(!s.is_lazy());
    }

    #[test]
    fn index_advice_builds_consumer_indices() {
        let mut cms = Cms::new(
            remote(),
            CmsConfig::braid()
                .with_prefetching(false)
                .with_generalization(false),
        );
        cms.begin_session(example1_advice());
        // Caching an extension that can serve d2's b3(Z, c2, Y?) component
        // builds a hash index on the column bound to the consumer Y —
        // the paper's "index E12 on the third attribute" (§5.3.3).
        let e12 = parse_rule("e12(A, B) :- b3(A, c2, B).").unwrap();
        cms.query(e12).unwrap().drain();
        assert!(cms.metrics().indices_built >= 1);
        // And an instantiated result (consumer already a constant) builds
        // no index: there is nothing left to probe.
        let before = cms.metrics().indices_built;
        cms.query_head(&parse_atom("d2(X, y1)").unwrap())
            .unwrap()
            .drain();
        assert_eq!(cms.metrics().indices_built, before);
    }

    #[test]
    fn columnar_mode_answers_identically_and_counts_repr_decisions() {
        let cfg = CmsConfig::braid()
            .with_prefetching(false)
            .with_generalization(false);
        let q = parse_rule("q(X) :- b2(X, Z), b3(Z, c2, y1).").unwrap();
        let mut row = Cms::new(remote(), cfg.clone());
        let mut col = Cms::new(remote(), cfg.with_columnar(true));
        let sorted = |mut ts: Vec<braid_relational::Tuple>| {
            ts.sort();
            ts
        };
        let a = sorted(row.query(q.clone()).unwrap().drain());
        let b = sorted(col.query(q.clone()).unwrap().drain());
        assert_eq!(a, b, "columnar mode must be answer-invariant");
        // No consumer annotations in play: the cached result went
        // column-major.
        assert!(col.metrics().columnar_conversions >= 1);
        assert_eq!(col.metrics().columnar_fallbacks, 0);
        // The repeat is served from the columnar element (vectorized
        // kernels), still bit-identical.
        let before = col.remote().metrics().requests;
        let c = sorted(col.query(q).unwrap().drain());
        assert_eq!(c, a);
        assert_eq!(col.remote().metrics().requests, before);
        assert!(col.metrics().columnar_hits >= 1);
    }

    #[test]
    fn columnar_mode_keeps_indexed_rows_for_consumer_annotated_elements() {
        let mut cms = Cms::new(
            remote(),
            CmsConfig::braid()
                .with_prefetching(false)
                .with_columnar(true),
        );
        cms.begin_session(example1_advice());
        // This extension serves d2's b3(Z, c2, Y?) component: the
        // consumer annotation predicts point probes, so the element
        // keeps its (indexed) row representation.
        let e12 = parse_rule("e12(A, B) :- b3(A, c2, B).").unwrap();
        cms.query(e12).unwrap().drain();
        assert!(cms.metrics().indices_built >= 1);
        assert!(cms.metrics().columnar_fallbacks >= 1);
        let model = cms.cache_model();
        assert!(
            model
                .iter()
                .any(|r| r.repr == "extension" || r.repr == "both"),
            "consumer-annotated element stays row-form: {model:?}"
        );
    }

    #[test]
    fn cache_model_reports_columnar_repr() {
        let mut cms = Cms::new(
            remote(),
            CmsConfig::braid()
                .with_prefetching(false)
                .with_generalization(false)
                .with_columnar(true),
        );
        let q = parse_rule("q(X, Y) :- b2(X, Y).").unwrap();
        cms.query(q).unwrap().drain();
        let model = cms.cache_model();
        assert!(
            model.iter().any(|r| r.repr == "columnar"),
            "producer-style element converts: {model:?}"
        );
    }

    #[test]
    fn cache_model_visible_to_ie() {
        let mut cms = Cms::new(
            remote(),
            CmsConfig::braid()
                .with_prefetching(false)
                .with_generalization(false),
        );
        let q = parse_rule("q(X, Y) :- b3(X, c2, Y).").unwrap();
        cms.query(q).unwrap().drain();
        let model = cms.cache_model();
        assert_eq!(model.len(), 1);
        assert!(model[0].def.contains("b3"));
        // And the remote schema is reachable through the CMS (§3).
        assert_eq!(cms.remote_schema("b1").unwrap().arity(), 2);
    }

    #[test]
    fn loose_coupling_never_caches() {
        let mut cms = Cms::new(remote(), CmsConfig::loose_coupling());
        let q = parse_rule("q(X) :- b2(X, Z), b3(Z, c2, y1).").unwrap();
        cms.query(q.clone()).unwrap().drain();
        cms.query(q).unwrap().drain();
        assert_eq!(cms.cache_len(), 0);
        assert_eq!(cms.remote().metrics().requests, 2);
    }

    #[test]
    fn negation_answered_by_local_anti_join() {
        let mut cms = Cms::new(
            remote(),
            CmsConfig::braid()
                .with_prefetching(false)
                .with_generalization(false),
        );
        // b2 pairs with no matching (Z, c2, _) row in b3:
        // b2 = {(x1,z1),(x2,z2),(x3,z1)}; b3 has (z1,c2,y1),(z2,c2,y2).
        let q = parse_rule("q(X) :- b2(X, Z), not b3(Z, c2, Y).").unwrap();
        let answers = cms.query(q).unwrap().drain();
        assert!(
            answers.is_empty(),
            "every b2 row has a b3 partner: {answers:?}"
        );
        // Negate on a constant third column with no matches: all survive.
        let q2 = parse_rule("q(X) :- b2(X, Z), not b3(Z, zz, Y).").unwrap();
        let answers = cms.query(q2).unwrap().drain();
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn negation_reuses_cached_negative_side() {
        let mut cms = Cms::new(
            remote(),
            CmsConfig::braid()
                .with_prefetching(false)
                .with_generalization(false),
        );
        // Warm the cache with b3's extension.
        cms.query(parse_rule("w(A, B, C) :- b3(A, B, C).").unwrap())
            .unwrap()
            .drain();
        let before = cms.remote().metrics().requests;
        let q = parse_rule("q(X) :- b2(X, Z), not b3(Z, c2, Y).").unwrap();
        cms.query(q).unwrap().drain();
        // Only the positive b2 fetch goes remote; the negated side is
        // served from the cached extension.
        assert_eq!(cms.remote().metrics().requests, before + 1);
    }

    #[test]
    fn unsafe_query_rejected() {
        let mut cms = Cms::new(remote(), CmsConfig::braid());
        let q = parse_rule("q(W) :- b1(X, Y).").unwrap();
        assert!(matches!(cms.query(q), Err(CmsError::UnsafeQuery(_))));
    }
}
