//! The Advice Manager.
//!
//! "The Advice Manager interacts with the QPO to assist in query planning
//! and optimization and with the Cache Manager to assist in caching and
//! replacement decisions" (§5). It holds the session's advice bundle and
//! the path-expression tracker, and answers four questions:
//!
//! 1. *Expansion* — which base-level conjunction does this IE-query head
//!    stand for? ("An IE-query is an instance of one of the view
//!    specifications", §5.3.1.)
//! 2. *Generalization* — is there a more general form worth evaluating
//!    instead? (§5.3.1's `b1(c1,Y)` → `b1(X,Y)` example.)
//! 3. *Prefetch* — which queries will the IE send next, with which
//!    constants? (§4.2.2 tracking + §5.3.1.)
//! 4. *Replacement and indexing* — which cached views to pin, which
//!    attributes to index? (§4.2.1, §5.4.)

use braid_advice::{Advice, PathTracker, PatternArg, QueryPattern};
use braid_caql::{Atom, ConjunctiveQuery, Subst, Term};
use braid_subsume::{subsumes, Component, ViewDef};
use std::collections::BTreeSet;

/// Session-scoped advice state.
#[derive(Debug, Default)]
pub struct AdviceManager {
    advice: Advice,
    tracker: Option<PathTracker>,
    rename_counter: usize,
}

impl AdviceManager {
    /// No advice (the CMS functions without it, §3).
    pub fn new() -> AdviceManager {
        AdviceManager::default()
    }

    /// Install a session's advice, replacing any previous bundle.
    pub fn begin_session(&mut self, advice: Advice) {
        self.tracker = advice.path.as_ref().map(PathTracker::new);
        self.advice = advice;
    }

    /// The current advice.
    pub fn advice(&self) -> &Advice {
        &self.advice
    }

    /// Observe an IE-query head (advances path tracking).
    pub fn observe(&mut self, head: &Atom) {
        if let Some(t) = self.tracker.as_mut() {
            t.advance(head);
        }
    }

    /// Expand a bare view-instance head (e.g. `d2(X, c6)`) into its
    /// base-level conjunctive query using the view specification.
    /// Spec variables are renamed apart from the query's.
    pub fn expand(&mut self, head: &Atom) -> Option<ConjunctiveQuery> {
        let spec = self.advice.view_spec(&head.pred)?;
        self.rename_counter += 1;
        let fresh = spec.to_query().rename(self.rename_counter);
        let u = braid_caql::unify_atoms(&fresh.head, head)?;
        Some(ConjunctiveQuery::new(
            head.clone(),
            fresh.body.iter().map(|l| u.apply_literal(l)).collect(),
        ))
    }

    /// §5.3.1 step 1: a more general query worth evaluating instead of
    /// `q`, found by checking whether `q` "can be subsumed by any other
    /// view specification or its parts". Returns the generalized query
    /// (head = every variable of the generalized body) and the name of
    /// the view spec whose body provided it — the future query that makes
    /// the extra fetching pay off. Only *strictly* more general forms are
    /// returned.
    pub fn generalization_candidate(
        &mut self,
        q: &ConjunctiveQuery,
    ) -> Option<(ConjunctiveQuery, String)> {
        let whole = Component::whole(q);
        let needed: Vec<&str> = whole.vars().into_iter().collect();
        let mut candidates: Vec<(usize, ConjunctiveQuery, String)> = Vec::new();
        self.rename_counter += 1;
        let rn = self.rename_counter;
        for spec in &self.advice.view_specs {
            let spec_q = spec.to_query().rename(rn);
            let n = spec_q.positive_atoms().len();
            if n < whole.len() {
                continue;
            }
            // Contiguous segments of the spec body of the same length as q.
            let atoms: Vec<Atom> = spec_q.positive_atoms().into_iter().cloned().collect();
            for start in 0..=(n - whole.len()) {
                let seg = &atoms[start..start + whole.len()];
                let view = match ViewDef::over_conjunction(
                    format!("gen_{}", spec.name),
                    seg.iter().cloned().map(braid_caql::Literal::Atom).collect(),
                ) {
                    Ok(v) => v,
                    Err(_) => continue,
                };
                if let Some(d) = subsumes(&view, &whole, &needed) {
                    if d.is_exact() {
                        // Not strictly more general — nothing extra to
                        // prefetch.
                        continue;
                    }
                    // The generalized query: the segment itself, all vars
                    // distinguished.
                    let gen = view.query().clone();
                    candidates.push((d.filters.len(), gen, spec.name.clone()));
                }
            }
        }
        // Most-constrained generalization first (fewest residual filters
        // beyond q): fetches the least extra data that still generalizes.
        candidates.sort_by_key(|(f, _, _)| *f);
        candidates.into_iter().map(|(_, g, n)| (g, n)).next()
    }

    /// Will `view` be requested again according to the path expression?
    /// Returns the predicted minimum distance in queries.
    pub fn predicted_distance(&self, view: &str) -> Option<usize> {
        self.tracker.as_ref().and_then(|t| t.distance_to(view))
    }

    /// Fully-instantiated next-query predictions — the prefetch
    /// candidates. Each is returned as `(view name, instantiated head)`;
    /// patterns still containing un-valued bound arguments are skipped
    /// (their constants are not known yet).
    pub fn prefetch_heads(&mut self) -> Vec<Atom> {
        let Some(t) = self.tracker.as_ref() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for pat in t.predict_next_queries() {
            if let Some(head) = pattern_to_head(&pat) {
                out.push(head);
            }
        }
        out
    }

    /// Head variables of `view` that advice marks as consumers (`?`) —
    /// the indexing candidates of §4.2.1.
    pub fn consumer_vars(&self, view: &str) -> Vec<String> {
        self.advice
            .view_spec(view)
            .map(|s| {
                s.params
                    .iter()
                    .filter(|(_, a)| *a == braid_advice::Annotation::Consumer)
                    .filter_map(|(t, _)| t.as_var().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Is `view` declared strictly-producer (all `^`)? Such views should
    /// be "produce\[d\] lazily and without any indexing" (§4.2.1).
    pub fn strictly_producer(&self, view: &str) -> bool {
        self.advice
            .view_spec(view)
            .map(|s| s.strictly_producer())
            .unwrap_or(false)
    }

    /// Views predicted within `horizon` queries — their cached results
    /// should be pinned against replacement (§4.2.2's d1 example).
    pub fn pinned_views(&self, horizon: usize) -> BTreeSet<String> {
        let Some(t) = self.tracker.as_ref() else {
            return BTreeSet::new();
        };
        let mut out = BTreeSet::new();
        if let Some(path) = &self.advice.path {
            for v in path.views() {
                if let Some(d) = t.distance_to(v) {
                    if d <= horizon {
                        out.insert(v.to_string());
                    }
                }
            }
        }
        out
    }

    /// Is tracking currently in sync?
    pub fn tracking(&self) -> bool {
        self.tracker.as_ref().map(|t| !t.is_lost()).unwrap_or(false)
    }
}

/// Turn a fully-instantiated query pattern into a concrete query head:
/// free args become fresh variables, consts stay; un-valued bound args
/// make the pattern unusable (return `None`).
fn pattern_to_head(pat: &QueryPattern) -> Option<Atom> {
    let mut args = Vec::with_capacity(pat.args.len());
    for (i, a) in pat.args.iter().enumerate() {
        match a {
            PatternArg::Free(v) => args.push(Term::Var(format!("{v}_{i}"))),
            PatternArg::Const(c) => args.push(Term::Const(c.clone())),
            PatternArg::Bound(_) => return None,
        }
    }
    Some(Atom::new(pat.view.clone(), args))
}

/// Re-export for head instantiation in `cms.rs` (test hook).
pub(crate) fn _unify_for_tests(a: &Atom, b: &Atom) -> Option<Subst> {
    braid_caql::unify_atoms(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_advice::{parse_path_expr, parse_view_spec};
    use braid_caql::parse_atom;

    fn example1_advice() -> Advice {
        let mut a = Advice::none();
        a.view_specs
            .push(parse_view_spec("d1(Y^) =def b1(c1, Y^) (R1)").unwrap());
        a.view_specs
            .push(parse_view_spec("d2(X^, Y?) =def b2(X^, Z) & b3(Z, c2, Y?) (R2)").unwrap());
        a.view_specs
            .push(parse_view_spec("d3(X^, Y?) =def b3(X^, c3, Z) & b1(Z, Y?) (R3)").unwrap());
        a.path = Some(parse_path_expr("(d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>").unwrap());
        a
    }

    #[test]
    fn expand_instantiates_view_spec() {
        let mut m = AdviceManager::new();
        m.begin_session(example1_advice());
        let q = m.expand(&parse_atom("d2(W, c6)").unwrap()).unwrap();
        assert_eq!(q.head.to_string(), "d2(W, c6)");
        let s = q.to_string();
        assert!(s.contains("b2(W,"), "body instantiated: {s}");
        assert!(s.contains("c2, c6)"), "constant propagated: {s}");
        assert!(m.expand(&parse_atom("zz(A)").unwrap()).is_none());
    }

    #[test]
    fn expansion_avoids_variable_capture() {
        let mut m = AdviceManager::new();
        m.begin_session(example1_advice());
        // Query reuses the spec's internal variable name Z.
        let q = m.expand(&parse_atom("d2(Z, c6)").unwrap()).unwrap();
        // The body's join variable must not be conflated with the head Z.
        let atoms = q.positive_atoms();
        let b2 = atoms.iter().find(|a| a.pred == "b2").unwrap();
        assert_eq!(b2.args[0], Term::var("Z"));
        assert_ne!(b2.args[1], Term::var("Z"));
    }

    #[test]
    fn paper_generalization_b1_example() {
        // §5.3.1: query b1(c1, Y) (from d1) is subsumed by b1(Z, Y) in
        // d3's definition → CMS may evaluate the generalization b1(X, Y).
        let mut m = AdviceManager::new();
        m.begin_session(example1_advice());
        let q = m.expand(&parse_atom("d1(Y)").unwrap()).unwrap();
        let (gen, source) = m.generalization_candidate(&q).unwrap();
        assert_eq!(source, "d3");
        assert_eq!(gen.positive_atoms().len(), 1);
        assert_eq!(gen.positive_atoms()[0].pred, "b1");
        // Both arguments generalized to variables.
        assert!(gen.positive_atoms()[0].args.iter().all(Term::is_var));
    }

    #[test]
    fn no_generalization_without_subsuming_spec() {
        let mut m = AdviceManager::new();
        m.begin_session(example1_advice());
        let q = braid_caql::parse_rule("q(X) :- b9(X, c1).").unwrap();
        assert!(m.generalization_candidate(&q).is_none());
    }

    #[test]
    fn tracker_prefetch_heads_carry_constants() {
        let mut m = AdviceManager::new();
        m.begin_session(example1_advice());
        m.observe(&parse_atom("d1(Y)").unwrap());
        // No constants known yet: d2's bound arg unfilled.
        assert!(m.prefetch_heads().is_empty());
        m.observe(&parse_atom("d2(X, c6)").unwrap());
        let heads = m.prefetch_heads();
        let d3 = heads.iter().find(|h| h.pred == "d3").unwrap();
        assert_eq!(d3.args[1], Term::val("c6"));
    }

    #[test]
    fn consumer_vars_and_producer_flags() {
        let mut m = AdviceManager::new();
        m.begin_session(example1_advice());
        assert_eq!(m.consumer_vars("d2"), vec!["Y".to_string()]);
        assert!(m.consumer_vars("d1").is_empty());
        assert!(m.strictly_producer("d1"));
        assert!(!m.strictly_producer("d2"));
    }

    #[test]
    fn pinned_views_respect_horizon() {
        let mut m = AdviceManager::new();
        m.begin_session(example1_advice());
        m.observe(&parse_atom("d1(Y)").unwrap());
        let p1 = m.pinned_views(1);
        assert!(p1.contains("d2"));
        assert!(!p1.contains("d1"), "d1 can never recur");
        let p2 = m.pinned_views(2);
        assert!(p2.contains("d3"));
    }

    #[test]
    fn no_advice_means_no_answers() {
        let mut m = AdviceManager::new();
        assert!(m.expand(&parse_atom("d1(Y)").unwrap()).is_none());
        assert!(m.prefetch_heads().is_empty());
        assert!(m.pinned_views(3).is_empty());
        assert!(!m.tracking());
    }
}
