//! The Remote DBMS Interface: CAQL → DML translation.
//!
//! "Queries to the remote DBMS are translated from CAQL to the DML of the
//! DBMS by a DBMS specific translator in the Remote DBMS Interface (RDI)"
//! (§5). The supported target fragment is conjunctive SPJ (plus union at
//! the caller's level); anything else must be kept local by the planner —
//! "the remote DBMS does not support all CAQL operations, but the CMS
//! does" (§5.3.3).

use crate::error::{CmsError, Result};
use braid_caql::{ArithExpr, Atom, Comparison, Literal, Term};
use braid_remote::{ColRef, Predicate, SelectBlock, SqlQuery, TableRef};
use std::collections::BTreeMap;

/// The result of translating a conjunctive CAQL fragment: the DML query
/// plus the variable name of each output column, in order.
#[derive(Debug, Clone)]
pub struct Translated {
    /// The remote query.
    pub sql: SqlQuery,
    /// Output column names (query variables), in SELECT order.
    pub out_vars: Vec<String>,
}

/// Translate a conjunction of base-relation atoms and comparisons into one
/// SPJ block selecting `out_vars` (each must occur in some atom).
///
/// # Errors
/// Returns [`CmsError::Unplannable`] for literals outside the SPJ fragment
/// and [`CmsError::UnsafeQuery`] for unproducible output variables.
pub fn translate(atoms: &[Atom], cmps: &[Comparison], out_vars: &[String]) -> Result<Translated> {
    if atoms.is_empty() {
        return Err(CmsError::Unplannable(
            "remote subquery needs at least one relation occurrence".into(),
        ));
    }
    let mut from = Vec::with_capacity(atoms.len());
    let mut predicates = Vec::new();
    // First occurrence of each variable.
    let mut var_site: BTreeMap<&str, ColRef> = BTreeMap::new();

    for (ti, atom) in atoms.iter().enumerate() {
        from.push(TableRef {
            relation: atom.pred.clone(),
        });
        for (ci, term) in atom.args.iter().enumerate() {
            let here = ColRef { table: ti, col: ci };
            match term {
                Term::Const(v) => predicates.push(Predicate::ColConst(
                    here,
                    braid_relational::CmpOp::Eq,
                    v.clone(),
                )),
                Term::Var(name) => match var_site.get(name.as_str()) {
                    None => {
                        var_site.insert(name, here);
                    }
                    Some(first) => predicates.push(Predicate::ColCol(
                        *first,
                        braid_relational::CmpOp::Eq,
                        here,
                    )),
                },
            }
        }
    }

    for c in cmps {
        let p = match (bare(&c.lhs), bare(&c.rhs)) {
            (Some(Term::Var(a)), Some(Term::Const(v))) => {
                let site = var_site.get(a.as_str()).ok_or_else(|| {
                    CmsError::UnsafeQuery(format!("comparison variable {a} unbound"))
                })?;
                Predicate::ColConst(*site, c.op, v.clone())
            }
            (Some(Term::Const(v)), Some(Term::Var(b))) => {
                let site = var_site.get(b.as_str()).ok_or_else(|| {
                    CmsError::UnsafeQuery(format!("comparison variable {b} unbound"))
                })?;
                Predicate::ColConst(*site, c.op.flipped(), v.clone())
            }
            (Some(Term::Var(a)), Some(Term::Var(b))) => {
                let sa = var_site.get(a.as_str()).ok_or_else(|| {
                    CmsError::UnsafeQuery(format!("comparison variable {a} unbound"))
                })?;
                let sb = var_site.get(b.as_str()).ok_or_else(|| {
                    CmsError::UnsafeQuery(format!("comparison variable {b} unbound"))
                })?;
                Predicate::ColCol(*sa, c.op, *sb)
            }
            (Some(Term::Const(a)), Some(Term::Const(b))) => {
                if c.op.eval(a, b) {
                    continue;
                }
                // Constantly false: no row can satisfy `col = null` (base
                // data is null-free by construction), making the block
                // empty as required.
                Predicate::ColConst(
                    ColRef { table: 0, col: 0 },
                    braid_relational::CmpOp::Eq,
                    braid_relational::Value::Null,
                )
            }
            _ => {
                return Err(CmsError::Unplannable(format!(
                    "arithmetic comparison `{c}` is not in the remote DML fragment"
                )))
            }
        };
        predicates.push(p);
    }

    let mut select = Vec::with_capacity(out_vars.len());
    for v in out_vars {
        let site = var_site.get(v.as_str()).ok_or_else(|| {
            CmsError::UnsafeQuery(format!("output variable {v} does not occur in the body"))
        })?;
        select.push(*site);
    }

    Ok(Translated {
        sql: SqlQuery::single(SelectBlock {
            from,
            predicates,
            select,
        }),
        out_vars: out_vars.to_vec(),
    })
}

fn bare(e: &ArithExpr) -> Option<&Term> {
    match e {
        ArithExpr::Term(t) => Some(t),
        ArithExpr::Bin(..) => None,
    }
}

/// Translate every branch of a union (used by the compiled-strategy DAPs
/// of §2, "often involving union").
///
/// # Errors
/// Propagates per-branch translation errors; all branches must agree on
/// `out_vars` arity.
pub fn translate_union(
    branches: &[(Vec<Atom>, Vec<Comparison>)],
    out_vars: &[String],
) -> Result<Translated> {
    let mut blocks = Vec::with_capacity(branches.len());
    for (atoms, cmps) in branches {
        let t = translate(atoms, cmps, out_vars)?;
        blocks.extend(t.sql.blocks);
    }
    Ok(Translated {
        sql: SqlQuery { blocks },
        out_vars: out_vars.to_vec(),
    })
}

/// Extract the `(atoms, comparisons)` of a conjunctive body, rejecting
/// anything outside the remote fragment.
///
/// # Errors
/// Returns [`CmsError::Unplannable`] on negation or binds.
pub fn split_body(body: &[Literal]) -> Result<(Vec<Atom>, Vec<Comparison>)> {
    let mut atoms = Vec::new();
    let mut cmps = Vec::new();
    for l in body {
        match l {
            Literal::Atom(a) => atoms.push(a.clone()),
            Literal::Cmp(c) => cmps.push(c.clone()),
            other => {
                return Err(CmsError::Unplannable(format!(
                    "literal `{other}` cannot be shipped to the remote DBMS"
                )))
            }
        }
    }
    Ok((atoms, cmps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_caql::parse_rule;

    fn parts(src: &str) -> (Vec<Atom>, Vec<Comparison>) {
        let q = parse_rule(src).unwrap();
        split_body(&q.body).unwrap()
    }

    #[test]
    fn translates_paper_d2_body() {
        // d2(X, c6) = b2(X, Z) & b3(Z, c2, c6)
        let (atoms, cmps) = parts("d2(X) :- b2(X, Z), b3(Z, c2, c6).");
        let t = translate(&atoms, &cmps, &["X".into(), "Z".into()]).unwrap();
        let s = t.sql.to_string();
        assert!(s.contains("FROM b2 t0, b3 t1"));
        // Join Z = Z across tables, plus the two constants.
        assert!(s.contains("t0.c1 = t1.c0"));
        assert_eq!(t.out_vars, vec!["X", "Z"]);
    }

    #[test]
    fn repeated_variable_in_one_atom_becomes_selection() {
        let (atoms, cmps) = parts("q(X) :- b(X, X).");
        let t = translate(&atoms, &cmps, &["X".into()]).unwrap();
        assert!(t.sql.to_string().contains("t0.c0 = t0.c1"));
    }

    #[test]
    fn comparisons_translate_to_predicates() {
        let (atoms, cmps) = parts("q(X) :- b(X, Y), X > 3, 2 < Y, X != Y.");
        let t = translate(&atoms, &cmps, &["X".into()]).unwrap();
        let s = t.sql.to_string();
        assert!(s.contains("t0.c0 > Int(3)"));
        assert!(s.contains("t0.c1 > Int(2)"));
        assert!(s.contains("t0.c0 != t0.c1"));
    }

    #[test]
    fn arithmetic_comparison_rejected() {
        let (atoms, cmps) = parts("q(X) :- b(X, Y), X > Y + 1.");
        assert!(matches!(
            translate(&atoms, &cmps, &["X".into()]),
            Err(CmsError::Unplannable(_))
        ));
    }

    #[test]
    fn negation_rejected_by_split() {
        let q = parse_rule("q(X) :- b(X), not c(X).").unwrap();
        assert!(split_body(&q.body).is_err());
    }

    #[test]
    fn unknown_output_variable_rejected() {
        let (atoms, cmps) = parts("q(X) :- b(X, Y).");
        assert!(matches!(
            translate(&atoms, &cmps, &["W".into()]),
            Err(CmsError::UnsafeQuery(_))
        ));
    }

    #[test]
    fn union_translation_merges_blocks() {
        let b1 = parts("q(X) :- b2(X, Z).");
        let b2 = parts("q(X) :- b3(X, c3, Z).");
        let t = translate_union(&[b1, b2], &["X".into()]).unwrap();
        assert_eq!(t.sql.blocks.len(), 2);
        assert!(t.sql.to_string().contains("UNION"));
    }
}
