//! The Query Planner/Optimizer (QPO).
//!
//! "The first step is to determine the query to be evaluated. The second
//! step is to identify relevant cache elements that can possibly be used
//! in processing all or a part of the query. The third step is to generate
//! a plan that consists of a partially ordered set of subqueries to be
//! evaluated by the Cache Manager and the remote DBMS" (§5.3).
//!
//! Step 1 (generalization against advice) lives in [`crate::cms`], which
//! has the advice manager at hand; this module implements steps 2–3:
//! relevant-element identification via the subsumption engine, overlap
//! pruning ("when multiple cache elements overlap ... the most appropriate
//! element has to be chosen", §5.3.3), and the split of the query into
//! cache-local and remote subqueries.

use crate::cache::CacheRead;
use crate::error::{CmsError, Result};
use braid_caql::{Atom, Comparison, ConjunctiveQuery, Literal};
use braid_subsume::{CandidateUse, Derivation};
use std::collections::BTreeSet;

/// Where one plan part's tuples come from.
#[derive(Debug, Clone)]
pub enum PartSource {
    /// Compensation over a cache element (Cache Manager executes).
    Cache {
        /// The element.
        element: crate::element::ElemId,
        /// The residual select/project.
        derivation: Derivation,
    },
    /// A conjunctive subquery shipped to the remote DBMS (RDI executes).
    Remote {
        /// Relation occurrences of the subquery.
        atoms: Vec<Atom>,
        /// Comparisons pushed into the subquery.
        cmps: Vec<Comparison>,
    },
}

/// One subquery of the plan, producing a relation whose columns are named
/// by query variables.
#[derive(Debug, Clone)]
pub struct PlanPart {
    /// Output column names (query variables), in order.
    pub vars: Vec<String>,
    /// The source.
    pub source: PartSource,
}

impl PlanPart {
    /// Is this part served by the cache?
    pub fn is_cache(&self) -> bool {
        matches!(self.source, PartSource::Cache { .. })
    }
}

/// An executable plan: parts (joinable on shared variable names), residual
/// comparisons, and the head to project at the end. Parts are mutually
/// independent — the "partially ordered set of subqueries" of §5 with the
/// join as the single downstream node — which is what lets remote and
/// cache parts run in parallel (§5 feature (e)).
#[derive(Debug, Clone)]
pub struct Plan {
    /// The query this plan evaluates.
    pub query: ConjunctiveQuery,
    /// The subqueries.
    pub parts: Vec<PlanPart>,
    /// Comparisons applied after the join (not guaranteed by any part).
    pub residual_cmps: Vec<Comparison>,
    /// Safe negated atoms, applied as anti-joins after the positive join
    /// — CAQL's NOT, one of the operations "the remote DBMS does not
    /// support ... but the CMS does" (§5.3.3). Each is planned like a
    /// positive part (cache-first, remote fallback) and then removes the
    /// matching bindings.
    pub neg_parts: Vec<PlanPart>,
}

impl Plan {
    /// True when every part is cache-local — the precondition for lazy
    /// evaluation ("lazy evaluation can only be supported by the CMS when
    /// all required data is in the cache", §2).
    pub fn all_cache(&self) -> bool {
        self.parts.iter().all(PlanPart::is_cache)
    }

    /// Number of remote subqueries.
    pub fn remote_parts(&self) -> usize {
        self.parts.iter().filter(|p| !p.is_cache()).count()
    }
}

/// Build a plan for `q` (steps 2–3 of §5.3).
///
/// `use_subsumption` selects between full subsumption reuse and the
/// exact-match-only baseline. The greedy cover prefers larger subsumed
/// components, then fewer residual filters, then smaller elements — this
/// reproduces the §5.3.3 choice of "a selection on E103" over "the join
/// between E101 and E102".
///
/// # Errors
/// Returns an error for unsafe or unplannable queries.
pub fn plan<C: CacheRead>(q: &ConjunctiveQuery, cache: &C, use_subsumption: bool) -> Result<Plan> {
    if !q.is_safe() {
        return Err(CmsError::UnsafeQuery(q.to_string()));
    }
    let atoms: Vec<Atom> = q.positive_atoms().into_iter().cloned().collect();
    if atoms.is_empty() {
        return Err(CmsError::Unplannable(format!(
            "query `{q}` has no relation occurrence"
        )));
    }
    let all_cmps: Vec<Comparison> = q
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Cmp(c) => Some(c.clone()),
            _ => None,
        })
        .collect();
    let mut neg_atoms: Vec<Atom> = Vec::new();
    for l in &q.body {
        match l {
            Literal::Bind { .. } => {
                return Err(CmsError::Unplannable(format!(
                    "literal `{l}` is outside the CMS planning fragment"
                )))
            }
            Literal::Neg(a) => neg_atoms.push(a.clone()),
            _ => {}
        }
    }

    let mut candidates: Vec<CandidateUse> = if use_subsumption {
        cache.relevant(q)
    } else {
        exact_only_candidates(q, cache)
    };

    // Overlap pruning: order by (size desc, residual filters asc, element
    // cardinality asc), then greedily take candidates over uncovered atom
    // ranges.
    candidates.sort_by_key(|c| {
        let card = cache.cardinality_of(c.element).unwrap_or(usize::MAX);
        (
            std::cmp::Reverse(c.component.len()),
            c.derivation.filters.len(),
            card,
        )
    });

    let mut covered = vec![false; atoms.len()];
    let mut parts: Vec<PlanPart> = Vec::new();
    let mut enforced_cmps: Vec<Comparison> = Vec::new();

    for cand in candidates {
        if covered[cand.component.start..cand.component.end]
            .iter()
            .any(|c| *c)
        {
            continue;
        }
        for c in covered
            .iter_mut()
            .take(cand.component.end)
            .skip(cand.component.start)
        {
            *c = true;
        }
        // Expose every variable the element stores (maximal join freedom).
        let vars: Vec<String> = cand.derivation.var_cols.keys().cloned().collect();
        enforced_cmps.extend(cand.component.cmps.iter().cloned());
        parts.push(PlanPart {
            vars,
            source: PartSource::Cache {
                element: cand.element,
                derivation: cand.derivation,
            },
        });
    }

    // Group the uncovered atoms into contiguous remote subqueries — one
    // DBMS request per run, letting the server do the joins it can
    // ("allowing each to perform those operations for which it is best
    // suited", §5).
    let mut i = 0;
    while i < atoms.len() {
        if covered[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < atoms.len() && !covered[i] {
            i += 1;
        }
        let run: Vec<Atom> = atoms[start..i].to_vec();
        let run_vars: BTreeSet<&str> = run.iter().flat_map(|a| a.var_set()).collect();
        // Push simple comparisons whose variables live in the run.
        let pushed: Vec<Comparison> = all_cmps
            .iter()
            .filter(|c| {
                let mut vs = c.lhs.vars();
                vs.extend(c.rhs.vars());
                !vs.is_empty()
                    && vs.iter().all(|v| run_vars.contains(v))
                    && comparison_in_remote_fragment(c)
            })
            .cloned()
            .collect();
        enforced_cmps.extend(pushed.iter().cloned());
        let vars: Vec<String> = run_vars.iter().map(|v| v.to_string()).collect();
        parts.push(PlanPart {
            vars,
            source: PartSource::Remote {
                atoms: run,
                cmps: pushed,
            },
        });
    }

    // Residual comparisons: everything not enforced by some part.
    let residual_cmps: Vec<Comparison> = all_cmps
        .iter()
        .filter(|c| !enforced_cmps.contains(c))
        .cloned()
        .collect();

    // Negated atoms: plan each as its own single-atom part (cache-first).
    let mut neg_parts: Vec<PlanPart> = Vec::new();
    for a in neg_atoms {
        let single = ConjunctiveQuery::new(
            Atom::new(
                "neg",
                a.vars().iter().map(|v| braid_caql::Term::var(*v)).collect(),
            ),
            vec![Literal::Atom(a.clone())],
        );
        let vars: Vec<String> = a.vars().iter().map(|v| v.to_string()).collect();
        let cover = if use_subsumption {
            cache.whole_subsumers(&single).into_iter().next()
        } else {
            None
        };
        let source = match cover {
            Some((element, derivation)) => PartSource::Cache {
                element,
                derivation,
            },
            None => PartSource::Remote {
                atoms: vec![a],
                cmps: Vec::new(),
            },
        };
        neg_parts.push(PlanPart { vars, source });
    }

    Ok(Plan {
        query: q.clone(),
        parts,
        residual_cmps,
        neg_parts,
    })
}

/// The baseline reuse rule: only a whole-query exact match counts
/// ("cached results must exactly match the query", §5.3.2 on \[SELL87\] and
/// \[IOAN88\]).
fn exact_only_candidates<C: CacheRead>(q: &ConjunctiveQuery, cache: &C) -> Vec<CandidateUse> {
    let Some(id) = cache.exact_lookup(q) else {
        return Vec::new();
    };
    // An exact match still needs its variable mapping; reuse the
    // subsumption test against this single element for a sound derivation.
    cache
        .whole_subsumers(q)
        .into_iter()
        .filter(|(e, _)| *e == id)
        .map(|(element, derivation)| CandidateUse {
            element,
            component: braid_subsume::Component::whole(q),
            derivation,
        })
        .collect()
}

fn comparison_in_remote_fragment(c: &Comparison) -> bool {
    use braid_caql::ArithExpr;
    matches!(c.lhs, ArithExpr::Term(_)) && matches!(c.rhs, ArithExpr::Term(_))
}

// ---------------------------------------------------------------------
// §5.3.3 cost-based placement: plan (a) vs plan (b).
// ---------------------------------------------------------------------

/// Statistics of the remote base relations, used for cost estimates.
pub type RemoteStats = std::collections::BTreeMap<String, braid_relational::RelationStats>;

/// Estimated output cardinality of a conjunction of base atoms with the
/// classical uniform assumptions: equality selections scale by `1/V(col)`,
/// each shared-variable join divides by the larger distinct count.
pub fn estimate_conjunction(atoms: &[Atom], stats: &RemoteStats) -> f64 {
    let mut est = 1.0f64;
    // Track, per variable, the distinct-count of its first binding site.
    let mut seen: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for a in atoms {
        let st = stats.get(&a.pred);
        let card = st.map(|s| s.cardinality as f64).unwrap_or(1000.0);
        est *= card.max(1.0);
        for (i, t) in a.args.iter().enumerate() {
            match t {
                braid_caql::Term::Const(_) => {
                    let sel = st.map(|s| s.eq_selectivity(i)).unwrap_or(0.1);
                    est *= sel;
                }
                braid_caql::Term::Var(v) => {
                    let d = st
                        .and_then(|s| s.distinct.get(i).copied())
                        .unwrap_or(100)
                        .max(1);
                    match seen.get(v.as_str()) {
                        None => {
                            seen.insert(v, d);
                        }
                        Some(prev) => {
                            // Join on v: divide by the larger distinct set.
                            est /= (*prev).max(d) as f64;
                        }
                    }
                }
            }
        }
    }
    est.max(0.0)
}

/// Estimated cost (in remote cost units) of a plan, per the paper's
/// metric: per-remote-part request overhead plus shipped tuples, plus
/// workstation tuple operations for cache parts and the final join.
pub fn estimate_plan_cost<C: CacheRead>(
    plan: &Plan,
    cache: &C,
    stats: &RemoteStats,
    request_overhead: f64,
) -> f64 {
    let mut cost = 0.0;
    let mut part_sizes: Vec<f64> = Vec::new();
    for part in &plan.parts {
        match &part.source {
            PartSource::Cache {
                element,
                derivation,
            } => {
                let card = cache.cardinality_of(*element).unwrap_or(100) as f64;
                // An index probe reads ~selectivity of the extension; a
                // scan reads it all. Workstation ops are cheap relative to
                // the wire: weight 1 op = 1 unit (matches CostModel).
                let local = if derivation.probe_cols().is_empty() {
                    card
                } else {
                    (card / 10.0).max(1.0)
                };
                cost += local;
                part_sizes.push(card);
            }
            PartSource::Remote { atoms, .. } => {
                let shipped = estimate_conjunction(atoms, stats);
                cost += request_overhead + shipped;
                part_sizes.push(shipped);
            }
        }
    }
    // Local join work: sum of intermediate sizes (hash join linear passes).
    if part_sizes.len() > 1 {
        cost += part_sizes.iter().sum::<f64>();
    }
    cost
}

/// §5.3.3's alternative (b): ship the *whole* query to the DBMS. Returns
/// the estimated cost (request overhead + final result tuples shipped +
/// the server's own work, weighted as one unit per tuple op).
pub fn estimate_all_remote_cost(
    q: &ConjunctiveQuery,
    stats: &RemoteStats,
    request_overhead: f64,
) -> f64 {
    let atoms: Vec<Atom> = q.positive_atoms().into_iter().cloned().collect();
    let result = estimate_conjunction(&atoms, stats);
    // Server work: roughly the sum of inputs it scans.
    let server: f64 = atoms
        .iter()
        .map(|a| {
            stats
                .get(&a.pred)
                .map(|s| s.cardinality as f64)
                .unwrap_or(1000.0)
        })
        .sum();
    request_overhead + result + server * 0.1
}

/// Cost-based placement (§5.3.3): given a mixed plan, decide whether
/// exporting the whole query to the remote DBMS is cheaper — "(b) Export
/// b2(X,Y) & b3(Z,c2,c6) to the DBMS". Returns the chosen plan.
pub fn choose_placement<C: CacheRead>(
    plan: Plan,
    cache: &C,
    stats: &RemoteStats,
    request_overhead: f64,
) -> Plan {
    // Only mixed plans have a real alternative; all-cache never goes
    // remote, all-remote is already alternative (b).
    let has_cache = plan.parts.iter().any(PlanPart::is_cache);
    let has_remote = plan.parts.iter().any(|p| !p.is_cache());
    if !has_cache || !has_remote {
        return plan;
    }
    // Alternative (b) requires a remote-expressible query (negation,
    // in particular, must stay local).
    let q = &plan.query;
    if !plan.neg_parts.is_empty()
        || !braid_caql::CaqlQuery::Conjunctive(q.clone()).remote_supported()
    {
        return plan;
    }
    let mixed = estimate_plan_cost(&plan, cache, stats, request_overhead);
    let all_remote = estimate_all_remote_cost(q, stats, request_overhead);
    if all_remote < mixed {
        // Rebuild as a single remote part over every atom.
        let atoms: Vec<Atom> = q.positive_atoms().into_iter().cloned().collect();
        let cmps: Vec<Comparison> = q
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Cmp(c) if comparison_in_remote_fragment(c) => Some(c.clone()),
                _ => None,
            })
            .collect();
        let residual: Vec<Comparison> = q
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Cmp(c) if !comparison_in_remote_fragment(c) => Some(c.clone()),
                _ => None,
            })
            .collect();
        let vars: Vec<String> = q.body_vars().into_iter().map(str::to_string).collect();
        return Plan {
            query: q.clone(),
            parts: vec![PlanPart {
                vars,
                source: PartSource::Remote { atoms, cmps },
            }],
            residual_cmps: residual,
            neg_parts: Vec::new(),
        };
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheManager, ElementBuilder};
    use braid_caql::parse_rule;
    use braid_relational::{Relation, Schema};
    use braid_subsume::ViewDef;

    fn def(src: &str) -> ViewDef {
        ViewDef::new(parse_rule(src).unwrap()).unwrap()
    }

    fn rel(name: &str, arity: usize, n: usize) -> Relation {
        let cols: Vec<String> = (0..arity).map(|i| format!("c{i}")).collect();
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let mut r = Relation::new(Schema::of_strs(name, &col_refs));
        for i in 0..n {
            let vals: Vec<braid_relational::Value> = (0..arity)
                .map(|k| braid_relational::Value::str(format!("v{}{}", i, k)))
                .collect();
            r.insert(braid_relational::Tuple::new(vals)).unwrap();
        }
        r
    }

    #[test]
    fn empty_cache_yields_single_remote_part() {
        let cache = CacheManager::new(usize::MAX);
        let q = parse_rule("d2(X) :- b2(X, Z), b3(Z, c2, c6).").unwrap();
        let p = plan(&q, &cache, true).unwrap();
        assert_eq!(p.parts.len(), 1);
        assert_eq!(p.remote_parts(), 1);
        assert!(!p.all_cache());
    }

    #[test]
    fn paper_5_3_3_overlap_pruning_prefers_e103() {
        // Cache: E101 = b1(X,Y); E102 = b2(X,c1); E103 = b1(X,Y) & b2(Y,Z).
        // Query: b1(X,Y) & b2(Y,c1). The QPO must use a selection on E103
        // rather than the E101 ⋈ E102 join.
        let mut cache = CacheManager::new(usize::MAX);
        cache.insert(
            def("e101(X, Y) :- b1(X, Y)."),
            ElementBuilder::Materialized(rel("e101", 2, 10)),
        );
        cache.insert(
            def("e102(X) :- b2(X, c1)."),
            ElementBuilder::Materialized(rel("e102", 1, 10)),
        );
        let e103 = cache
            .insert(
                def("e103(X, Y, Z) :- b1(X, Y), b2(Y, Z)."),
                ElementBuilder::Materialized(rel("e103", 3, 10)),
            )
            .unwrap();
        let q = parse_rule("q(X, Y) :- b1(X, Y), b2(Y, c1).").unwrap();
        let p = plan(&q, &cache, true).unwrap();
        assert_eq!(p.parts.len(), 1, "one part covering both atoms: {p:?}");
        match &p.parts[0].source {
            PartSource::Cache {
                element,
                derivation,
            } => {
                assert_eq!(*element, e103);
                // Residual: the Z = c1 selection.
                assert_eq!(derivation.filters.len(), 1);
            }
            other => panic!("expected cache part, got {other:?}"),
        }
        assert!(p.all_cache());
    }

    #[test]
    fn partial_cover_mixes_cache_and_remote() {
        // Paper §5.3.2/§5.3.3: with E12 cached, d2(X, c6) splits into the
        // cached b3 part and a remote b2 fetch.
        let mut cache = CacheManager::new(usize::MAX);
        cache.insert(
            def("e12(X, Y) :- b3(X, c2, Y)."),
            ElementBuilder::Materialized(rel("e12", 2, 5)),
        );
        let q = parse_rule("d2(X) :- b2(X, Z), b3(Z, c2, c6).").unwrap();
        let p = plan(&q, &cache, true).unwrap();
        assert_eq!(p.parts.len(), 2);
        assert_eq!(p.remote_parts(), 1);
        let cache_part = p.parts.iter().find(|x| x.is_cache()).unwrap();
        assert!(cache_part.vars.contains(&"Z".to_string()));
        let remote_part = p.parts.iter().find(|x| !x.is_cache()).unwrap();
        match &remote_part.source {
            PartSource::Remote { atoms, .. } => {
                assert_eq!(atoms.len(), 1);
                assert_eq!(atoms[0].pred, "b2");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exact_match_mode_ignores_subsuming_elements() {
        let mut cache = CacheManager::new(usize::MAX);
        cache.insert(
            def("e(X, Y) :- b1(X, Y)."),
            ElementBuilder::Materialized(rel("e", 2, 5)),
        );
        // The instantiated query is subsumed but not an exact match.
        let q = parse_rule("q(X) :- b1(X, c1).").unwrap();
        let exact = plan(&q, &cache, false).unwrap();
        assert_eq!(exact.remote_parts(), 1);
        let subsumed = plan(&q, &cache, true).unwrap();
        assert_eq!(subsumed.remote_parts(), 0);
    }

    #[test]
    fn exact_match_mode_hits_identical_query() {
        let mut cache = CacheManager::new(usize::MAX);
        cache.insert(
            def("e(X) :- b1(X, c1)."),
            ElementBuilder::Materialized(rel("e", 1, 5)),
        );
        let q = parse_rule("q(A) :- b1(A, c1).").unwrap();
        let p = plan(&q, &cache, false).unwrap();
        assert!(p.all_cache());
    }

    #[test]
    fn comparisons_push_to_remote_and_residual() {
        let cache = CacheManager::new(usize::MAX);
        let q = parse_rule("q(X, Y) :- b1(X, Y), X > 3.").unwrap();
        let p = plan(&q, &cache, true).unwrap();
        match &p.parts[0].source {
            PartSource::Remote { cmps, .. } => assert_eq!(cmps.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(p.residual_cmps.is_empty());
    }

    #[test]
    fn arithmetic_comparison_stays_residual() {
        let cache = CacheManager::new(usize::MAX);
        let q = parse_rule("q(X, Y) :- b1(X, Y), Y > X + 1.").unwrap();
        let p = plan(&q, &cache, true).unwrap();
        match &p.parts[0].source {
            PartSource::Remote { cmps, .. } => assert!(cmps.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.residual_cmps.len(), 1);
    }

    #[test]
    fn unsafe_query_rejected() {
        let cache = CacheManager::new(usize::MAX);
        let q = parse_rule("q(W) :- b1(X, Y).").unwrap();
        assert!(matches!(
            plan(&q, &cache, true),
            Err(CmsError::UnsafeQuery(_))
        ));
    }

    #[test]
    fn negation_becomes_anti_join_part() {
        let cache = CacheManager::new(usize::MAX);
        let q = parse_rule("q(X) :- b1(X, Y), not b2(X, Y).").unwrap();
        let p = plan(&q, &cache, true).unwrap();
        assert_eq!(p.neg_parts.len(), 1);
        assert!(
            !p.neg_parts[0].is_cache(),
            "empty cache: negated atom fetched"
        );
        assert_eq!(p.neg_parts[0].vars, vec!["X", "Y"]);
        // A cached cover for the negated atom is preferred.
        let mut warm = CacheManager::new(usize::MAX);
        warm.insert(
            def("e(X, Y) :- b2(X, Y)."),
            ElementBuilder::Materialized(rel("e", 2, 5)),
        );
        let p2 = plan(&q, &warm, true).unwrap();
        assert!(p2.neg_parts[0].is_cache());
    }

    #[test]
    fn bind_still_rejected() {
        let cache = CacheManager::new(usize::MAX);
        let q = parse_rule("q(X, Y) :- b1(X, Z), Y is Z + 1.").unwrap();
        assert!(matches!(
            plan(&q, &cache, true),
            Err(CmsError::Unplannable(_))
        ));
    }

    #[test]
    fn placement_exports_when_remote_join_ships_less() {
        // Cache holds tiny `small`; the uncovered `huge` atom is
        // unselective: a mixed plan ships all of `huge`, while the server
        // can join and ship only the (small) result — §5.3.3's plan (b).
        let mut cache = CacheManager::new(usize::MAX);
        cache.insert(
            def("e(X, Y) :- small(X, Y)."),
            ElementBuilder::Materialized(rel("small", 2, 4)),
        );
        let q = parse_rule("q(X, Z) :- small(X, Y), huge(Y, Z).").unwrap();
        let mixed = plan(&q, &cache, true).unwrap();
        assert_eq!(mixed.remote_parts(), 1);
        assert!(mixed.parts.iter().any(PlanPart::is_cache));

        let mut stats = RemoteStats::new();
        stats.insert(
            "huge".into(),
            braid_relational::RelationStats {
                cardinality: 100_000,
                distinct: vec![50, 50],
                min: vec![],
                max: vec![],
                approx_bytes: 1_000_000,
            },
        );
        stats.insert(
            "small".into(),
            braid_relational::RelationStats {
                cardinality: 4,
                distinct: vec![4, 4],
                min: vec![],
                max: vec![],
                approx_bytes: 100,
            },
        );
        let chosen = choose_placement(mixed, &cache, &stats, 50.0);
        assert_eq!(chosen.remote_parts(), 1);
        assert!(
            chosen.parts.iter().all(|p| !p.is_cache()),
            "whole query exported: {chosen:?}"
        );
        assert_eq!(
            chosen.parts[0].vars.len(),
            3,
            "exported part produces every body variable"
        );
    }

    #[test]
    fn placement_keeps_mixed_plan_when_remote_part_is_selective() {
        let mut cache = CacheManager::new(usize::MAX);
        cache.insert(
            def("e(X, Y) :- small(X, Y)."),
            ElementBuilder::Materialized(rel("small", 2, 4)),
        );
        // The remote atom is pinned by a constant: it ships almost nothing.
        let q = parse_rule("q(X, Z) :- small(X, Y), huge(Y, c7, Z).").unwrap();
        let mixed = plan(&q, &cache, true).unwrap();
        let mut stats = RemoteStats::new();
        stats.insert(
            "huge".into(),
            braid_relational::RelationStats {
                cardinality: 100_000,
                distinct: vec![50, 50_000, 50],
                min: vec![],
                max: vec![],
                approx_bytes: 1_000_000,
            },
        );
        stats.insert(
            "small".into(),
            braid_relational::RelationStats {
                cardinality: 4,
                distinct: vec![4, 4],
                min: vec![],
                max: vec![],
                approx_bytes: 100,
            },
        );
        let chosen = choose_placement(mixed, &cache, &stats, 50.0);
        assert!(
            chosen.parts.iter().any(PlanPart::is_cache),
            "selective remote part keeps the cached cover: {chosen:?}"
        );
    }

    #[test]
    fn placement_never_touches_pure_plans() {
        let mut cache = CacheManager::new(usize::MAX);
        cache.insert(
            def("e(X, Y) :- b1(X, Y)."),
            ElementBuilder::Materialized(rel("e", 2, 5)),
        );
        let stats = RemoteStats::new();
        // All-cache plan.
        let q = parse_rule("q(X, Y) :- b1(X, Y).").unwrap();
        let p1 = plan(&q, &cache, true).unwrap();
        assert!(p1.all_cache());
        let chosen = choose_placement(p1, &cache, &stats, 50.0);
        assert!(chosen.all_cache());
        // All-remote plan.
        let q2 = parse_rule("q(X, Y) :- b9(X, Y).").unwrap();
        let p2 = plan(&q2, &cache, true).unwrap();
        let chosen2 = choose_placement(p2, &cache, &stats, 50.0);
        assert_eq!(chosen2.remote_parts(), 1);
    }

    #[test]
    fn estimate_conjunction_applies_joins_and_selections() {
        let mut stats = RemoteStats::new();
        stats.insert(
            "r".into(),
            braid_relational::RelationStats {
                cardinality: 1000,
                distinct: vec![100, 10],
                min: vec![],
                max: vec![],
                approx_bytes: 10_000,
            },
        );
        let q = parse_rule("q(X, Z) :- r(X, Y), r(Y, Z).").unwrap();
        let atoms: Vec<braid_caql::Atom> = q.positive_atoms().into_iter().cloned().collect();
        // 1000 × 1000 / max(V(col1)=10, V(col0)=100) = 10_000.
        let est = estimate_conjunction(&atoms, &stats);
        assert!((est - 10_000.0).abs() < 1e-6, "est = {est}");
        // A constant selection scales by 1/V.
        let qc = parse_rule("q(Y) :- r(c1, Y).").unwrap();
        let atoms: Vec<braid_caql::Atom> = qc.positive_atoms().into_iter().cloned().collect();
        let est = estimate_conjunction(&atoms, &stats);
        assert!((est - 10.0).abs() < 1e-6, "est = {est}");
    }

    #[test]
    fn noncontiguous_uncovered_atoms_make_separate_remote_parts() {
        let mut cache = CacheManager::new(usize::MAX);
        cache.insert(
            def("e(X, Y) :- b2(X, Y)."),
            ElementBuilder::Materialized(rel("e", 2, 5)),
        );
        // b2 (middle atom) is covered; b1 and b3 become two remote runs.
        let q = parse_rule("q(X, W) :- b1(X, Y), b2(Y, Z), b3(Z, W).").unwrap();
        let p = plan(&q, &cache, true).unwrap();
        assert_eq!(p.remote_parts(), 2);
        assert_eq!(p.parts.len(), 3);
    }
}
