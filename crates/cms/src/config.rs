//! CMS configuration: the experiment switchboard.
//!
//! Every technique in the paper's Figure 2 ("Alleviating the Impedance
//! Mismatch") and §5.3 is independently toggleable so the benchmark
//! harness can run ablations: result caching, subsumption reuse, query
//! generalization, prefetching, advice-driven indexing and replacement,
//! lazy evaluation, and parallel cache/remote execution.

use crate::resilience::ResilienceConfig;
use braid_relational::ExecConfig;
use braid_remote::TransportConfig;
use braid_trace::{SinkHandle, TraceSink};
use std::sync::Arc;

/// Tunable CMS behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct CmsConfig {
    /// Cache capacity in approximate bytes. `usize::MAX` ⇒ unbounded.
    pub cache_capacity_bytes: usize,
    /// Number of shared-cache shards (each behind its own `RwLock`),
    /// with capacity split evenly between them. 1 (the default) keeps
    /// the whole cache in a single shard so single-session capacity
    /// behaviour is byte-identical to the unsharded CMS; concurrent
    /// multi-session runs raise this to reduce lock contention.
    pub cache_shards: usize,
    /// Cache the results of evaluated queries (§5.3 "result caching").
    pub result_caching: bool,
    /// Reuse cached elements via subsumption and local compensation
    /// (§5.3.2). With this off, only exact-match reuse happens — the
    /// BERMUDA/\[SELL87\] baseline behaviour.
    pub subsumption: bool,
    /// Generalize IE-queries when advice shows a subsuming view spec
    /// (§5.3.1): fetch more, reuse later.
    pub generalization: bool,
    /// Prefetch predicted-next queries from the path expression (§4.2).
    pub prefetching: bool,
    /// Build hash indices on consumer-annotated (`?`) attributes
    /// (§4.2.1).
    pub index_advice: bool,
    /// Modify LRU replacement with path-expression predictions (§5.4:
    /// "an LRU scheme which may be modified due to advi\[c\]e").
    pub advice_replacement: bool,
    /// Answer cache-only queries with lazy generators (§5.1).
    pub lazy_evaluation: bool,
    /// Execute remote and cache subqueries in parallel (§5 feature (e)).
    pub parallel_execution: bool,
    /// Use pipelined (streaming) transfer from the remote DBMS (§5.5);
    /// otherwise store-and-forward.
    pub pipelining: bool,
    /// Transfer buffer size, in tuples (§5.5 buffering).
    pub transfer_buffer_tuples: usize,
    /// How many predicted queries ahead an element is pinned against
    /// replacement (the paper's "d1 is not the best candidate" horizon).
    pub pin_horizon: usize,
    /// Upper bound, in milliseconds, on how long a single-flight *joiner*
    /// waits for its leader to publish before presuming the leader
    /// wedged, evicting the stale flight entry, and surfacing a
    /// transient [`CmsError::FlightStranded`](crate::CmsError). 0 ⇒ wait
    /// forever (pre-timeout behaviour). Only the blocking join path is
    /// bounded; cooperative sessions park instead of waiting.
    pub flight_join_timeout_ms: u64,
    /// Estimated number of future hits needed to make generalization
    /// worthwhile (cost heuristic of §5.3.1 step 1).
    pub generalization_min_predicted_reuse: usize,
    /// §5.3.3 cost-based placement: when a plan mixes cache and remote
    /// parts, estimate the mixed plan against exporting the whole query
    /// to the DBMS ("(b) Export b2(X,Y) & b3(Z,c2,c6) to the DBMS") and
    /// take the cheaper. Off by default: the heuristic trades cache reuse
    /// for shipped-result size, which only pays when cached fractions are
    /// small and unselective.
    pub cost_based_placement: bool,
    /// Hold producer-style cache elements in the column-major
    /// representation (§5.2's co-existing alternative representations,
    /// third form): per-column typed vectors with dictionary-encoded
    /// strings, served by the executor's vectorized kernels. Elements
    /// with consumer (`?`) annotations keep indexed rows — point probes
    /// want the hash index, sequential scans and aggregates want
    /// columns. Conversion is lossless both ways; answers are
    /// bit-identical either way. Off by default so the representation
    /// choice is an explicit ablation knob.
    pub columnar: bool,
    /// Cache *whole base relations* on first touch and answer locally —
    /// the single-relation buffering strategy of Ceri, Gottlob &
    /// Wiederhold \[CERI86\] that the paper contrasts with ("in \[CERI86\],
    /// cached elements contain only single relations", §5.3.2).
    pub whole_relation_caching: bool,
    /// Remote-fault handling: retries, deadlines, circuit breaking and
    /// cache-only degraded answers (see [`ResilienceConfig`]).
    pub resilience: ResilienceConfig,
    /// How remote fetches reach the DBMS engine: the default in-process
    /// call path (byte-identical to the pre-network CMS), or a pooled
    /// TCP client speaking the length-prefixed wire protocol to a
    /// [`RemoteTcpServer`](braid_remote::RemoteTcpServer).
    pub transport: TransportConfig,
    /// Batched-executor configuration (batch-size knob) used for every
    /// local plan execution: monitor pipelines, cache derivations, and
    /// lazy generator opens.
    pub exec: ExecConfig,
    /// Structured-tracing sink shared by every session of this CMS. The
    /// default no-op sink disables all instrumentation sites (at
    /// effectively zero cost); install a
    /// [`RingSink`](braid_trace::RingSink) via
    /// [`CmsConfig::with_trace`] to capture span/event logs.
    pub trace: SinkHandle,
}

impl Default for CmsConfig {
    /// Full BrAID: every technique on, effectively unbounded cache.
    fn default() -> Self {
        CmsConfig {
            cache_capacity_bytes: usize::MAX,
            cache_shards: 1,
            result_caching: true,
            subsumption: true,
            generalization: true,
            prefetching: true,
            index_advice: true,
            advice_replacement: true,
            lazy_evaluation: true,
            parallel_execution: true,
            pipelining: true,
            transfer_buffer_tuples: 64,
            pin_horizon: 2,
            flight_join_timeout_ms: 30_000,
            generalization_min_predicted_reuse: 1,
            cost_based_placement: false,
            columnar: false,
            whole_relation_caching: false,
            resilience: ResilienceConfig::default(),
            transport: TransportConfig::InProcess,
            exec: ExecConfig::default(),
            trace: SinkHandle::noop(),
        }
    }
}

impl CmsConfig {
    /// Everything off: the loose-coupling baseline (every IE request goes
    /// to the remote DBMS; nothing is cached).
    pub fn loose_coupling() -> Self {
        CmsConfig {
            cache_capacity_bytes: 0,
            cache_shards: 1,
            result_caching: false,
            subsumption: false,
            generalization: false,
            prefetching: false,
            index_advice: false,
            advice_replacement: false,
            lazy_evaluation: false,
            parallel_execution: false,
            pipelining: false,
            transfer_buffer_tuples: 1,
            pin_horizon: 0,
            flight_join_timeout_ms: 30_000,
            generalization_min_predicted_reuse: usize::MAX,
            cost_based_placement: false,
            columnar: false,
            whole_relation_caching: false,
            resilience: ResilienceConfig::default(),
            transport: TransportConfig::InProcess,
            exec: ExecConfig::default(),
            trace: SinkHandle::noop(),
        }
    }

    /// Exact-match result caching only — the BERMUDA-style bridge
    /// baseline: results are cached and reused only "if an exact match of
    /// a later query occurs" (§2).
    pub fn exact_match() -> Self {
        CmsConfig {
            subsumption: false,
            generalization: false,
            prefetching: false,
            index_advice: false,
            advice_replacement: false,
            lazy_evaluation: false,
            ..CmsConfig::default()
        }
    }

    /// Single-relation buffering (the \[CERI86\] baseline): whole base
    /// relations are cached on first touch and queries evaluate locally;
    /// no view-level result caching, no advice-driven techniques.
    pub fn single_relation() -> Self {
        CmsConfig {
            result_caching: false,
            generalization: false,
            prefetching: false,
            index_advice: false,
            advice_replacement: false,
            whole_relation_caching: true,
            ..CmsConfig::default()
        }
    }

    /// Full BrAID (alias of `default`).
    pub fn braid() -> Self {
        CmsConfig::default()
    }

    /// Builder-style toggles for ablation benches.
    pub fn with_subsumption(mut self, on: bool) -> Self {
        self.subsumption = on;
        self
    }

    /// Toggle generalization.
    pub fn with_generalization(mut self, on: bool) -> Self {
        self.generalization = on;
        self
    }

    /// Toggle prefetching.
    pub fn with_prefetching(mut self, on: bool) -> Self {
        self.prefetching = on;
        self
    }

    /// Toggle advice-driven indexing.
    pub fn with_index_advice(mut self, on: bool) -> Self {
        self.index_advice = on;
        self
    }

    /// Toggle lazy evaluation.
    pub fn with_lazy(mut self, on: bool) -> Self {
        self.lazy_evaluation = on;
        self
    }

    /// Toggle advice-modified replacement.
    pub fn with_advice_replacement(mut self, on: bool) -> Self {
        self.advice_replacement = on;
        self
    }

    /// Toggle parallel subquery execution.
    pub fn with_parallel(mut self, on: bool) -> Self {
        self.parallel_execution = on;
        self
    }

    /// Toggle pipelined (streaming) transfer from the remote DBMS.
    pub fn with_pipelining(mut self, on: bool) -> Self {
        self.pipelining = on;
        self
    }

    /// Make execution deterministic for simulation/replay: remote parts
    /// run serially on the driving thread, so the remote request clock —
    /// and with it every seeded `FaultPlan` decision — is a pure function
    /// of the order queries are dispatched in. Used by the braid-sim
    /// step scheduler; every other technique keeps its configured value.
    pub fn deterministic(mut self) -> Self {
        self.parallel_execution = false;
        self
    }

    /// Set the cache capacity.
    pub fn with_capacity(mut self, bytes: usize) -> Self {
        self.cache_capacity_bytes = bytes;
        self
    }

    /// Set the shared-cache shard count (clamped ≥ 1).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards.max(1);
        self
    }

    /// Toggle §5.3.3 cost-based placement.
    pub fn with_cost_based_placement(mut self, on: bool) -> Self {
        self.cost_based_placement = on;
        self
    }

    /// Toggle the column-major cache representation for producer-style
    /// elements (vectorized scans/aggregates; consumer-annotated
    /// elements keep indexed rows).
    pub fn with_columnar(mut self, on: bool) -> Self {
        self.columnar = on;
        self
    }

    /// Bound how long a single-flight joiner waits for its leader
    /// (milliseconds; 0 ⇒ wait forever).
    pub fn with_flight_join_timeout_ms(mut self, ms: u64) -> Self {
        self.flight_join_timeout_ms = ms;
        self
    }

    /// Set the resilience policy (retries, deadlines, breaker,
    /// degraded mode).
    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Set the remote transport: [`TransportConfig::InProcess`] (the
    /// default) or [`TransportConfig::Tcp`] with a client-pool config
    /// pointed at a listening [`RemoteTcpServer`](braid_remote::RemoteTcpServer).
    pub fn with_transport(mut self, transport: TransportConfig) -> Self {
        self.transport = transport;
        self
    }

    /// Set the executor batch size (rows per leaf batch, clamped ≥ 1).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.exec = ExecConfig::with_batch_size(batch_size);
        self
    }

    /// Install a structured-tracing sink shared by every session of this
    /// CMS (see [`braid_trace`]). Replaces the default no-op sink.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = SinkHandle::new(sink);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_as_documented() {
        let braid = CmsConfig::braid();
        assert!(braid.subsumption && braid.prefetching && braid.lazy_evaluation);
        let exact = CmsConfig::exact_match();
        assert!(exact.result_caching && !exact.subsumption && !exact.prefetching);
        let loose = CmsConfig::loose_coupling();
        assert!(!loose.result_caching && loose.cache_capacity_bytes == 0);
    }

    #[test]
    fn builder_toggles() {
        let c = CmsConfig::braid()
            .with_subsumption(false)
            .with_capacity(1024);
        assert!(!c.subsumption);
        assert_eq!(c.cache_capacity_bytes, 1024);
        assert!(c.prefetching);
    }

    #[test]
    fn shard_knob_defaults_to_one_and_clamps() {
        assert_eq!(CmsConfig::braid().cache_shards, 1);
        assert_eq!(CmsConfig::loose_coupling().cache_shards, 1);
        assert_eq!(CmsConfig::braid().with_shards(0).cache_shards, 1);
        assert_eq!(CmsConfig::braid().with_shards(4).cache_shards, 4);
    }

    #[test]
    fn batch_size_knob_clamps_to_one() {
        assert_eq!(CmsConfig::braid().exec.batch_size, 256);
        assert_eq!(CmsConfig::braid().with_batch_size(0).exec.batch_size, 1);
        assert_eq!(CmsConfig::braid().with_batch_size(32).exec.batch_size, 32);
    }
}
