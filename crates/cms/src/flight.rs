//! Single-flight deduplication of remote fetches.
//!
//! When two sessions miss the cache on subsumption-equivalent subqueries
//! at the same time, the translated SQL they would ship to the server is
//! identical. Issuing it twice doubles the server's tuple operations for
//! no information gain — so the first session to arrive *leads* the
//! flight and actually fetches, while later arrivals *join* it: they
//! block on the same in-flight entry and share the leader's result
//! (success or error), counted as `dedup_hits` in
//! [`crate::CmsMetrics`].
//!
//! Protocol:
//! 1. Lock the flight map. If the key is absent, insert a fresh
//!    [`Flight`] and become leader; otherwise clone its `Arc`, bump the
//!    waiter count, and become a joiner. The map lock is released before
//!    any fetching or waiting, so flights for different keys proceed
//!    fully in parallel.
//! 2. The leader runs the fetch closure (the *entire* resilience
//!    retry/breaker loop — joiners share the final outcome, not an
//!    intermediate failure), publishes the result under the flight's
//!    mutex, removes the map entry, and notifies the condvar.
//! 3. Joiners block on the condvar until the result is published.
//!
//! The leader removes the key *before* notifying, so a session arriving
//! after completion starts a fresh flight — results are never reused
//! across time, only shared within one overlapping window (the cache,
//! not the flight table, is the store of record).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// The outcome shared between a flight's leader and its joiners.
pub type FlightResult<T, E> = std::result::Result<T, E>;

#[derive(Debug)]
struct Flight<T, E> {
    done: Mutex<Option<FlightResult<T, E>>>,
    cv: Condvar,
    waiters: Mutex<usize>,
}

/// The single-flight table, keyed by translated remote-SQL text.
#[derive(Debug)]
pub struct SingleFlight<T, E> {
    inflight: Mutex<HashMap<String, Arc<Flight<T, E>>>>,
}

impl<T, E> Default for SingleFlight<T, E> {
    fn default() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }
}

impl<T: Clone, E: Clone> SingleFlight<T, E> {
    /// Fresh, empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sessions currently waiting on `key`'s flight (0 when no
    /// flight is open). Deterministic test hook: a leader can hold its
    /// fetch open until a joiner has provably arrived.
    pub fn waiter_count(&self, key: &str) -> usize {
        let map = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
        map.get(key)
            .map_or(0, |f| *f.waiters.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Is a flight currently open for `key`? Deterministic test hook: a
    /// would-be joiner can wait until the leader has registered.
    pub fn in_flight(&self, key: &str) -> bool {
        let map = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
        map.contains_key(key)
    }

    /// Run `fetch` under single-flight semantics for `key`. Returns the
    /// result plus `true` when this call led the flight (actually
    /// fetched) or `false` when it joined an in-flight fetch.
    pub fn run(
        &self,
        key: &str,
        fetch: impl FnOnce() -> FlightResult<T, E>,
    ) -> (FlightResult<T, E>, bool) {
        let flight = {
            let mut map = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(f) = map.get(key) {
                let f = Arc::clone(f);
                *f.waiters.lock().unwrap_or_else(|p| p.into_inner()) += 1;
                Some(f)
            } else {
                map.insert(
                    key.to_string(),
                    Arc::new(Flight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                        waiters: Mutex::new(0),
                    }),
                );
                None
            }
        };

        match flight {
            None => {
                // Leader: fetch with no locks held, publish, then retire
                // the key so later sessions re-fetch fresh data.
                let result = fetch();
                let flight = {
                    let mut map = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
                    map.remove(key).expect("leader's flight entry present")
                };
                *flight.done.lock().unwrap_or_else(|p| p.into_inner()) = Some(result.clone());
                flight.cv.notify_all();
                (result, true)
            }
            Some(f) => {
                // Joiner: block until the leader publishes.
                let mut done = f.done.lock().unwrap_or_else(|p| p.into_inner());
                while done.is_none() {
                    done = f.cv.wait(done).unwrap_or_else(|p| p.into_inner());
                }
                (done.clone().expect("published above"), false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn solo_flight_leads_and_returns() {
        let sf: SingleFlight<u32, String> = SingleFlight::new();
        let (r, led) = sf.run("k", || Ok(7));
        assert_eq!(r, Ok(7));
        assert!(led);
        assert_eq!(sf.waiter_count("k"), 0, "entry retired after the fetch");
    }

    #[test]
    fn sequential_calls_both_lead() {
        // The flight table shares only *overlapping* fetches: once a
        // flight lands, the next call re-fetches (the cache is the store
        // of record, not the flight table).
        let sf: SingleFlight<u32, String> = SingleFlight::new();
        let fetches = AtomicUsize::new(0);
        let mut led_count = 0;
        for _ in 0..2 {
            let (_, led) = sf.run("k", || {
                fetches.fetch_add(1, Ordering::SeqCst);
                Ok(1)
            });
            led_count += usize::from(led);
        }
        assert_eq!(fetches.load(Ordering::SeqCst), 2);
        assert_eq!(led_count, 2);
    }

    #[test]
    fn concurrent_joiner_shares_the_leaders_result() {
        // Deterministic overlap: the leader's fetch refuses to complete
        // until the joiner has provably joined (waiter_count hook).
        let sf: Arc<SingleFlight<u32, String>> = Arc::new(SingleFlight::new());
        let fetches = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let leader = {
                let sf = Arc::clone(&sf);
                let fetches = Arc::clone(&fetches);
                s.spawn(move || {
                    sf.run("k", || {
                        fetches.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open until the joiner arrives.
                        while sf.waiter_count("k") == 0 {
                            std::thread::yield_now();
                        }
                        Ok(42)
                    })
                })
            };
            // Wait until the leader's flight is registered, then join it.
            while !sf.in_flight("k") {
                std::thread::yield_now();
            }
            let (r, led) = sf.run("k", || {
                fetches.fetch_add(1, Ordering::SeqCst);
                Ok(0) // must never run
            });
            let (lr, lled) = leader.join().unwrap();
            assert_eq!(fetches.load(Ordering::SeqCst), 1, "exactly one fetch");
            assert_eq!(r, Ok(42), "joiner sees the leader's value");
            assert_eq!(lr, Ok(42));
            assert!(lled);
            assert!(!led, "second session joined, not led");
        });
    }

    #[test]
    fn errors_broadcast_to_joiners() {
        let sf: Arc<SingleFlight<u32, String>> = Arc::new(SingleFlight::new());
        std::thread::scope(|s| {
            let leader = {
                let sf = Arc::clone(&sf);
                s.spawn(move || {
                    sf.run("k", || {
                        while sf.waiter_count("k") == 0 {
                            std::thread::yield_now();
                        }
                        Err("boom".to_string())
                    })
                })
            };
            while !sf.in_flight("k") {
                std::thread::yield_now();
            }
            let (r, led) = sf.run("k", || Ok(1));
            let (lr, _) = leader.join().unwrap();
            assert_eq!(lr, Err("boom".to_string()));
            assert!(!led, "arrived while the leader's flight was open");
            assert_eq!(r, Err("boom".to_string()), "joiners share the error");
        });
    }

    #[test]
    fn distinct_keys_do_not_interfere() {
        let sf: SingleFlight<u32, String> = SingleFlight::new();
        let (a, _) = sf.run("a", || Ok(1));
        let (b, _) = sf.run("b", || Ok(2));
        assert_eq!((a, b), (Ok(1), Ok(2)));
    }
}
