//! Single-flight deduplication of remote fetches.
//!
//! When two sessions miss the cache on subsumption-equivalent subqueries
//! at the same time, the translated SQL they would ship to the server is
//! identical. Issuing it twice doubles the server's tuple operations for
//! no information gain — so the first session to arrive *leads* the
//! flight and actually fetches, while later arrivals *join* it: they
//! wait on the same in-flight entry and share the leader's result
//! (success or error), counted as `dedup_hits` in
//! [`crate::CmsMetrics`].
//!
//! Protocol:
//! 1. Lock the flight map. If the key is absent, insert a fresh
//!    [`Flight`] and become leader; otherwise clone its `Arc`, bump the
//!    waiter count, and become a joiner. The map lock is released before
//!    any fetching or waiting, so flights for different keys proceed
//!    fully in parallel.
//! 2. The leader runs the fetch closure (the *entire* resilience
//!    retry/breaker loop — joiners share the final outcome, not an
//!    intermediate failure), retires the map entry, publishes the result
//!    under the flight's state mutex, notifies the condvar, and fires
//!    every registered [`Waker`].
//! 3. Joiners either block on the condvar until the result is published
//!    ([`SingleFlight::run`] / [`SingleFlight::run_with_timeout`]) or —
//!    on the cooperative scheduler path — register a waker via
//!    [`SingleFlight::subscribe`] and park the *session* instead of the
//!    OS thread, resuming when the waker fires.
//!
//! The leader removes the key *before* notifying, so a session arriving
//! after completion starts a fresh flight — results are never reused
//! across time, only shared within one overlapping window (the cache,
//! not the flight table, is the store of record).
//!
//! Leader failure is survivable in both directions:
//! - A *panicking* leader unwinds through a drop guard that retires the
//!   map entry, marks the flight abandoned, and wakes every joiner; the
//!   joiners retry and one of them becomes the new leader. Nobody is
//!   stranded.
//! - A *wedged* leader (stuck in a hung transport call) is bounded by
//!   [`SingleFlight::run_with_timeout`]: a joiner gives up after the
//!   deadline, evicts the stale map entry (only if it is still the same
//!   flight) so later arrivals can lead fresh, and surfaces a typed
//!   timeout to the caller.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The outcome shared between a flight's leader and its joiners.
pub type FlightResult<T, E> = std::result::Result<T, E>;

/// A callback fired exactly once when a subscribed flight publishes or
/// is abandoned. Cloneable so the flight can hold it while the
/// scheduler keeps its own handle; firing is idempotent from the
/// flight's side (each registered clone is invoked once, then dropped).
#[derive(Clone)]
pub struct Waker(Arc<dyn Fn() + Send + Sync>);

impl Waker {
    /// Wrap a callback as a waker.
    pub fn new(f: impl Fn() + Send + Sync + 'static) -> Waker {
        Waker(Arc::new(f))
    }

    /// Fire the callback.
    pub fn wake(&self) {
        (self.0)();
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Waker")
    }
}

#[derive(Debug)]
struct FlightState<T, E> {
    /// The published outcome; `None` while the leader is still fetching.
    result: Option<FlightResult<T, E>>,
    /// Set when the leader unwound without publishing: joiners must
    /// retry (one of them re-leads a fresh flight).
    abandoned: bool,
    /// Cooperative joiners to fire on publish/abandon.
    wakers: Vec<Waker>,
}

#[derive(Debug)]
struct Flight<T, E> {
    state: Mutex<FlightState<T, E>>,
    cv: Condvar,
    waiters: Mutex<usize>,
}

impl<T, E> Flight<T, E> {
    fn new() -> Flight<T, E> {
        Flight {
            state: Mutex::new(FlightState {
                result: None,
                abandoned: false,
                wakers: Vec::new(),
            }),
            cv: Condvar::new(),
            waiters: Mutex::new(0),
        }
    }
}

/// What a blocking joiner's wait ended with.
enum WaitOutcome<T, E> {
    /// The leader published; here is the shared result.
    Ready(FlightResult<T, E>),
    /// The leader unwound without publishing; retry (and maybe lead).
    Abandoned,
    /// The deadline elapsed before the leader published.
    TimedOut,
}

/// A joiner's wait exceeded the configured deadline — the leader is
/// presumed wedged. Carries how long the joiner actually waited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinTimedOut {
    /// Wall-clock time spent waiting before giving up.
    pub waited: Duration,
}

/// Outcome of a non-blocking [`SingleFlight::subscribe`] attempt.
pub enum Subscribe<T, E> {
    /// No flight is open for the key — the caller should lead one via
    /// [`SingleFlight::run`] / [`SingleFlight::run_with_timeout`].
    Lead,
    /// A flight was open and has already published: share its result
    /// without waiting.
    Ready(FlightResult<T, E>),
    /// Joined an open flight. The waker fires exactly once when the
    /// leader publishes or abandons; the ticket then resolves to the
    /// shared result (or `None` after abandonment — retry and lead).
    Parked(FlightTicket<T, E>),
}

/// A handle onto a joined flight, redeemed after the waker fires.
#[derive(Debug, Clone)]
pub struct FlightTicket<T, E>(Arc<Flight<T, E>>);

impl<T: Clone, E: Clone> FlightTicket<T, E> {
    /// The published result, or `None` if the flight has not published
    /// (still in progress, or abandoned by a failed leader).
    pub fn result(&self) -> Option<FlightResult<T, E>> {
        let st = self.0.state.lock().unwrap_or_else(|p| p.into_inner());
        st.result.clone()
    }
}

/// Retires the leader's map entry and wakes joiners even when the
/// leader's fetch panics: joiners observe `abandoned`, retry, and one
/// of them leads a fresh flight instead of waiting forever.
struct LeaderGuard<'a, T, E> {
    table: &'a SingleFlight<T, E>,
    key: &'a str,
    flight: &'a Arc<Flight<T, E>>,
    published: bool,
}

impl<T: Clone, E: Clone> LeaderGuard<'_, T, E> {
    fn publish(mut self, result: &FlightResult<T, E>) {
        self.published = true;
        self.table.retire(self.key, self.flight);
        let wakers = {
            let mut st = self.flight.state.lock().unwrap_or_else(|p| p.into_inner());
            st.result = Some(result.clone());
            std::mem::take(&mut st.wakers)
        };
        self.flight.cv.notify_all();
        for w in wakers {
            w.wake();
        }
    }
}

impl<T, E> Drop for LeaderGuard<'_, T, E> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        // The leader unwound mid-fetch. Retire the entry first so a
        // retrying joiner can immediately lead fresh, then mark the
        // flight abandoned and wake everyone.
        self.table.retire(self.key, self.flight);
        let wakers = {
            let mut st = self.flight.state.lock().unwrap_or_else(|p| p.into_inner());
            st.abandoned = true;
            std::mem::take(&mut st.wakers)
        };
        self.flight.cv.notify_all();
        for w in wakers {
            w.wake();
        }
    }
}

/// The single-flight table, keyed by translated remote-SQL text.
#[derive(Debug)]
pub struct SingleFlight<T, E> {
    inflight: Mutex<HashMap<String, Arc<Flight<T, E>>>>,
}

impl<T, E> Default for SingleFlight<T, E> {
    fn default() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }
}

impl<T, E> SingleFlight<T, E> {
    /// Remove `key`'s entry *only if* it is still `flight` — tolerant of
    /// the entry having already been evicted by a timed-out joiner or
    /// replaced by a newer flight for the same key.
    fn retire(&self, key: &str, flight: &Arc<Flight<T, E>>) {
        let mut map = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
        if map.get(key).is_some_and(|f| Arc::ptr_eq(f, flight)) {
            map.remove(key);
        }
    }
}

impl<T: Clone, E: Clone> SingleFlight<T, E> {
    /// Fresh, empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sessions currently waiting on `key`'s flight (0 when no
    /// flight is open). Deterministic test hook: a leader can hold its
    /// fetch open until a joiner has provably arrived.
    pub fn waiter_count(&self, key: &str) -> usize {
        let map = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
        map.get(key)
            .map_or(0, |f| *f.waiters.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Is a flight currently open for `key`? Deterministic test hook: a
    /// would-be joiner can wait until the leader has registered.
    pub fn in_flight(&self, key: &str) -> bool {
        let map = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
        map.contains_key(key)
    }

    /// Number of flights currently open — the "no leaked wakers"
    /// invariant check: at quiescence every flight has published (firing
    /// its wakers) and retired its entry, so this must be zero.
    pub fn open_flights(&self) -> usize {
        let map = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
        map.len()
    }

    /// Atomically become the leader (inserting a fresh flight) or a
    /// joiner (cloning the open one and bumping its waiter count when
    /// `count_waiter`).
    fn enter(&self, key: &str, count_waiter: bool) -> (Arc<Flight<T, E>>, bool) {
        let mut map = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(f) = map.get(key) {
            let f = Arc::clone(f);
            if count_waiter {
                *f.waiters.lock().unwrap_or_else(|p| p.into_inner()) += 1;
            }
            (f, false)
        } else {
            let f = Arc::new(Flight::new());
            map.insert(key.to_string(), Arc::clone(&f));
            (f, true)
        }
    }

    /// Block until `flight` publishes, is abandoned, or `deadline`
    /// elapses (`None` waits forever).
    fn wait(flight: &Flight<T, E>, deadline: Option<Duration>) -> WaitOutcome<T, E> {
        let start = Instant::now();
        let mut st = flight.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(r) = st.result.clone() {
                return WaitOutcome::Ready(r);
            }
            if st.abandoned {
                return WaitOutcome::Abandoned;
            }
            match deadline {
                None => {
                    st = flight.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                }
                Some(d) => {
                    let elapsed = start.elapsed();
                    if elapsed >= d {
                        return WaitOutcome::TimedOut;
                    }
                    let (guard, _timeout) = flight
                        .cv
                        .wait_timeout(st, d - elapsed)
                        .unwrap_or_else(|p| p.into_inner());
                    st = guard;
                }
            }
        }
    }

    /// Run `fetch` under single-flight semantics for `key`. Returns the
    /// result plus `true` when this call led the flight (actually
    /// fetched) or `false` when it joined an in-flight fetch. Joiners
    /// wait with no deadline; if the leader unwinds without publishing
    /// they retry, and one of them leads a fresh flight.
    pub fn run(
        &self,
        key: &str,
        fetch: impl FnOnce() -> FlightResult<T, E>,
    ) -> (FlightResult<T, E>, bool) {
        match self.run_with_timeout(key, None, fetch) {
            Ok(out) => out,
            Err(_) => unreachable!("no deadline, so a join can never time out"),
        }
    }

    /// [`SingleFlight::run`] with a bound on how long a *joiner* waits
    /// for the leader. On timeout the joiner evicts the stale map entry
    /// (if it is still the same flight) so later arrivals can lead
    /// fresh, and returns [`JoinTimedOut`]. The leader path is never
    /// bounded here — its own fetch closure carries the resilience
    /// timeouts.
    pub fn run_with_timeout(
        &self,
        key: &str,
        join_deadline: Option<Duration>,
        fetch: impl FnOnce() -> FlightResult<T, E>,
    ) -> Result<(FlightResult<T, E>, bool), JoinTimedOut> {
        let mut fetch = Some(fetch);
        let start = Instant::now();
        loop {
            let (flight, leads) = self.enter(key, true);
            if leads {
                let guard = LeaderGuard {
                    table: self,
                    key,
                    flight: &flight,
                    published: false,
                };
                let result = (fetch.take().expect("fetch unconsumed until we lead"))();
                guard.publish(&result);
                return Ok((result, true));
            }
            match Self::wait(&flight, join_deadline) {
                WaitOutcome::Ready(r) => return Ok((r, false)),
                WaitOutcome::Abandoned => continue,
                WaitOutcome::TimedOut => {
                    self.retire(key, &flight);
                    return Err(JoinTimedOut {
                        waited: start.elapsed(),
                    });
                }
            }
        }
    }

    /// Non-blocking join for the cooperative scheduler: if a flight is
    /// open for `key`, register `waker` (fired exactly once on publish
    /// or abandonment) and return a ticket; if it has already published,
    /// return the result immediately; if no flight is open, tell the
    /// caller to lead. Never blocks and never runs a fetch.
    pub fn subscribe(&self, key: &str, waker: Waker) -> Subscribe<T, E> {
        let flight = {
            let map = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
            match map.get(key) {
                Some(f) => Arc::clone(f),
                None => return Subscribe::Lead,
            }
        };
        let mut st = flight.state.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(r) = st.result.clone() {
            return Subscribe::Ready(r);
        }
        if st.abandoned {
            // The leader died between our map lookup and the state lock;
            // the entry is already retired, so lead fresh.
            return Subscribe::Lead;
        }
        st.wakers.push(waker);
        drop(st);
        Subscribe::Parked(FlightTicket(flight))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn solo_flight_leads_and_returns() {
        let sf: SingleFlight<u32, String> = SingleFlight::new();
        let (r, led) = sf.run("k", || Ok(7));
        assert_eq!(r, Ok(7));
        assert!(led);
        assert_eq!(sf.waiter_count("k"), 0, "entry retired after the fetch");
    }

    #[test]
    fn sequential_calls_both_lead() {
        // The flight table shares only *overlapping* fetches: once a
        // flight lands, the next call re-fetches (the cache is the store
        // of record, not the flight table).
        let sf: SingleFlight<u32, String> = SingleFlight::new();
        let fetches = AtomicUsize::new(0);
        let mut led_count = 0;
        for _ in 0..2 {
            let (_, led) = sf.run("k", || {
                fetches.fetch_add(1, Ordering::SeqCst);
                Ok(1)
            });
            led_count += usize::from(led);
        }
        assert_eq!(fetches.load(Ordering::SeqCst), 2);
        assert_eq!(led_count, 2);
    }

    #[test]
    fn concurrent_joiner_shares_the_leaders_result() {
        // Deterministic overlap: the leader's fetch refuses to complete
        // until the joiner has provably joined (waiter_count hook).
        let sf: Arc<SingleFlight<u32, String>> = Arc::new(SingleFlight::new());
        let fetches = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let leader = {
                let sf = Arc::clone(&sf);
                let fetches = Arc::clone(&fetches);
                s.spawn(move || {
                    sf.run("k", || {
                        fetches.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open until the joiner arrives.
                        while sf.waiter_count("k") == 0 {
                            std::thread::yield_now();
                        }
                        Ok(42)
                    })
                })
            };
            // Wait until the leader's flight is registered, then join it.
            while !sf.in_flight("k") {
                std::thread::yield_now();
            }
            let (r, led) = sf.run("k", || {
                fetches.fetch_add(1, Ordering::SeqCst);
                Ok(0) // must never run
            });
            let (lr, lled) = leader.join().unwrap();
            assert_eq!(fetches.load(Ordering::SeqCst), 1, "exactly one fetch");
            assert_eq!(r, Ok(42), "joiner sees the leader's value");
            assert_eq!(lr, Ok(42));
            assert!(lled);
            assert!(!led, "second session joined, not led");
        });
    }

    #[test]
    fn errors_broadcast_to_joiners() {
        let sf: Arc<SingleFlight<u32, String>> = Arc::new(SingleFlight::new());
        std::thread::scope(|s| {
            let leader = {
                let sf = Arc::clone(&sf);
                s.spawn(move || {
                    sf.run("k", || {
                        while sf.waiter_count("k") == 0 {
                            std::thread::yield_now();
                        }
                        Err("boom".to_string())
                    })
                })
            };
            while !sf.in_flight("k") {
                std::thread::yield_now();
            }
            let (r, led) = sf.run("k", || Ok(1));
            let (lr, _) = leader.join().unwrap();
            assert_eq!(lr, Err("boom".to_string()));
            assert!(!led, "arrived while the leader's flight was open");
            assert_eq!(r, Err("boom".to_string()), "joiners share the error");
        });
    }

    #[test]
    fn distinct_keys_do_not_interfere() {
        let sf: SingleFlight<u32, String> = SingleFlight::new();
        let (a, _) = sf.run("a", || Ok(1));
        let (b, _) = sf.run("b", || Ok(2));
        assert_eq!((a, b), (Ok(1), Ok(2)));
    }

    #[test]
    fn panicking_leader_does_not_strand_joiners() {
        // A leader whose fetch panics unwinds through the drop guard:
        // the joiner observes abandonment, retries, and leads fresh —
        // no condvar deadline is ever needed for this failure mode.
        let sf: Arc<SingleFlight<u32, String>> = Arc::new(SingleFlight::new());
        std::thread::scope(|s| {
            let leader = {
                let sf = Arc::clone(&sf);
                s.spawn(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        sf.run("k", || {
                            while sf.waiter_count("k") == 0 {
                                std::thread::yield_now();
                            }
                            panic!("leader killed mid-flight");
                        })
                    }));
                    assert!(result.is_err(), "leader must have panicked");
                })
            };
            while !sf.in_flight("k") {
                std::thread::yield_now();
            }
            // Joins the doomed flight; after the leader dies, retries
            // and leads its own fetch.
            let (r, led) = sf.run("k", || Ok(99));
            leader.join().unwrap();
            assert_eq!(r, Ok(99), "rescued joiner re-led and fetched");
            assert!(led, "the rescued joiner became the new leader");
            assert_eq!(sf.open_flights(), 0, "no stale entry left behind");
        });
    }

    #[test]
    fn wedged_leader_times_out_joiner_and_evicts_entry() {
        // A leader stuck in a hung fetch never publishes; the joiner's
        // deadline fires, the stale entry is evicted so later arrivals
        // can lead fresh, and the caller sees a typed timeout.
        let sf: Arc<SingleFlight<u32, String>> = Arc::new(SingleFlight::new());
        let release = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let leader = {
                let sf = Arc::clone(&sf);
                let release = Arc::clone(&release);
                s.spawn(move || {
                    sf.run("k", || {
                        // Wedge until the test releases us.
                        while release.load(Ordering::SeqCst) == 0 {
                            std::thread::yield_now();
                        }
                        Ok(1)
                    })
                })
            };
            while !sf.in_flight("k") {
                std::thread::yield_now();
            }
            let err = sf
                .run_with_timeout("k", Some(Duration::from_millis(20)), || Ok(2))
                .expect_err("wedged leader must time the joiner out");
            assert!(err.waited >= Duration::from_millis(20));
            assert!(
                !sf.in_flight("k"),
                "timed-out joiner evicts the stale entry"
            );
            // A fresh arrival now leads immediately instead of joining
            // the wedged flight.
            let (r, led) = sf.run("k", || Ok(3));
            assert_eq!((r, led), (Ok(3), true));
            // Unwedge the original leader; its publish must tolerate the
            // entry being gone (ptr_eq-guarded retire).
            release.store(1, Ordering::SeqCst);
            let (lr, lled) = leader.join().unwrap();
            assert_eq!((lr, lled), (Ok(1), true));
            assert_eq!(sf.open_flights(), 0);
        });
    }

    #[test]
    fn subscribe_with_no_flight_says_lead() {
        let sf: SingleFlight<u32, String> = SingleFlight::new();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        match sf.subscribe(
            "k",
            Waker::new(move || {
                f.fetch_add(1, Ordering::SeqCst);
            }),
        ) {
            Subscribe::Lead => {}
            _ => panic!("no flight open: caller must lead"),
        }
        assert_eq!(fired.load(Ordering::SeqCst), 0, "waker never registered");
    }

    #[test]
    fn subscriber_waker_fires_on_publish_and_ticket_resolves() {
        let sf: Arc<SingleFlight<u32, String>> = Arc::new(SingleFlight::new());
        let fired = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let leader = {
                let sf = Arc::clone(&sf);
                let fired = Arc::clone(&fired);
                s.spawn(move || {
                    sf.run("k", || {
                        // Hold the flight open until the blocking joiner
                        // arrives — the test subscribes *before* spawning
                        // it, so the waker is provably registered first.
                        while sf.waiter_count("k") == 0 {
                            std::thread::yield_now();
                        }
                        assert_eq!(fired.load(Ordering::SeqCst), 0, "not fired before publish");
                        Ok(7)
                    })
                })
            };
            while !sf.in_flight("k") {
                std::thread::yield_now();
            }
            let f = Arc::clone(&fired);
            let ticket = match sf.subscribe(
                "k",
                Waker::new(move || {
                    f.fetch_add(1, Ordering::SeqCst);
                }),
            ) {
                Subscribe::Parked(t) => t,
                _ => panic!("flight open and unpublished: must park"),
            };
            assert_eq!(ticket.result(), None, "nothing published yet");
            // Let the leader see a waiter via the blocking-path hook.
            let sf2 = Arc::clone(&sf);
            let join = s.spawn(move || sf2.run("k", || Ok(0)));
            let (lr, _) = leader.join().unwrap();
            assert_eq!(lr, Ok(7));
            assert_eq!(fired.load(Ordering::SeqCst), 1, "waker fired exactly once");
            assert_eq!(
                ticket.result(),
                Some(Ok(7)),
                "ticket resolves to shared result"
            );
            assert_eq!(join.join().unwrap(), (Ok(7), false));
        });
    }

    #[test]
    fn subscriber_waker_fires_on_abandonment() {
        let sf: Arc<SingleFlight<u32, String>> = Arc::new(SingleFlight::new());
        let fired = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let leader = {
                let sf = Arc::clone(&sf);
                s.spawn(move || {
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        sf.run("k", || -> FlightResult<u32, String> {
                            while sf.waiter_count("k") == 0 {
                                std::thread::yield_now();
                            }
                            panic!("abandon ship");
                        })
                    }));
                })
            };
            while !sf.in_flight("k") {
                std::thread::yield_now();
            }
            let f = Arc::clone(&fired);
            let ticket = match sf.subscribe(
                "k",
                Waker::new(move || {
                    f.fetch_add(1, Ordering::SeqCst);
                }),
            ) {
                Subscribe::Parked(t) => t,
                _ => panic!("flight open: must park"),
            };
            // A blocking joiner gives the leader its waiter signal and
            // exercises the retry-and-re-lead path at the same time.
            let sf2 = Arc::clone(&sf);
            let join = s.spawn(move || sf2.run("k", || Ok(5)));
            leader.join().unwrap();
            assert_eq!(join.join().unwrap(), (Ok(5), true), "joiner re-led");
            assert_eq!(
                fired.load(Ordering::SeqCst),
                1,
                "abandonment fired the waker"
            );
            assert_eq!(
                ticket.result(),
                None,
                "abandoned ticket resolves to nothing: caller retries"
            );
        });
    }
}
