//! Resilience policy for remote fetches: retry with capped exponential
//! backoff, per-request deadlines, and a circuit breaker shared across
//! the Execution Monitor's parallel fetch threads.
//!
//! Everything here is *simulated-time deterministic*: backoff is charged
//! in cost units (counters, not sleeps), the breaker is count-based
//! (K consecutive failures open it, the next `cooldown` attempts are
//! rejected, then a half-open probe decides), and deadlines compare the
//! per-request latency receipt the remote server returns. Same fault
//! plan + same request order → same recovery behaviour.

use crate::error::{CmsError, Result};
use crate::metrics::CmsMetrics;
use braid_trace::{TraceKind, Tracer};
use std::sync::{Arc, Mutex};

/// Tunable resilience policy, carried on
/// [`CmsConfig`](crate::config::CmsConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    /// Retries per remote subquery after the first attempt
    /// (0 = fail on first transient error).
    pub max_retries: u32,
    /// Backoff charged before the first retry, in simulated cost units.
    pub backoff_base_units: u64,
    /// Cap on a single retry's backoff charge (exponential doubling
    /// stops here).
    pub backoff_cap_units: u64,
    /// Per-attempt budget of simulated latency units; an attempt whose
    /// receipt exceeds it is treated as [`RemoteError::Timeout`]
    /// (and retried). `None` disables deadlines.
    ///
    /// [`RemoteError::Timeout`]: braid_remote::RemoteError::Timeout
    pub deadline_units: Option<u64>,
    /// Consecutive transient failures that open the circuit breaker
    /// (0 disables the breaker).
    pub breaker_threshold: u32,
    /// Attempts rejected while the breaker is open before a half-open
    /// probe is allowed through.
    pub breaker_cooldown: u32,
    /// When the remote is unreachable (retries exhausted or breaker
    /// open), answer from the cache alone and tag the answer's
    /// completeness instead of failing the query.
    pub degraded_mode: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            max_retries: 3,
            backoff_base_units: 16,
            backoff_cap_units: 256,
            deadline_units: None,
            breaker_threshold: 5,
            breaker_cooldown: 8,
            degraded_mode: true,
        }
    }
}

impl ResilienceConfig {
    /// No retries, no breaker, no degradation: every transient fault
    /// surfaces immediately (the pre-resilience behaviour).
    pub fn none() -> Self {
        ResilienceConfig {
            max_retries: 0,
            backoff_base_units: 0,
            backoff_cap_units: 0,
            deadline_units: None,
            breaker_threshold: 0,
            breaker_cooldown: 0,
            degraded_mode: false,
        }
    }

    /// Set the retry budget.
    #[must_use]
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Set the backoff schedule (base doubling up to cap, in cost units).
    #[must_use]
    pub fn with_backoff(mut self, base_units: u64, cap_units: u64) -> Self {
        self.backoff_base_units = base_units;
        self.backoff_cap_units = cap_units;
        self
    }

    /// Set the per-attempt latency deadline.
    #[must_use]
    pub fn with_deadline(mut self, units: u64) -> Self {
        self.deadline_units = Some(units);
        self
    }

    /// Set the breaker policy (`threshold` 0 disables it).
    #[must_use]
    pub fn with_breaker(mut self, threshold: u32, cooldown: u32) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// Enable or disable cache-only degraded answers.
    #[must_use]
    pub fn with_degraded_mode(mut self, on: bool) -> Self {
        self.degraded_mode = on;
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerPhase {
    Closed,
    Open,
    HalfOpen,
}

#[derive(Debug)]
struct BreakerState {
    phase: BreakerPhase,
    consecutive_failures: u32,
    rejects_left: u32,
}

/// Shared resilience machinery: one instance per [`Cms`](crate::Cms),
/// shared by reference across the Execution Monitor's fetch threads so
/// all subqueries see the same breaker state.
#[derive(Debug)]
pub struct Resilience {
    config: ResilienceConfig,
    metrics: Arc<CmsMetrics>,
    breaker: Mutex<BreakerState>,
    tracer: Tracer,
}

impl Resilience {
    /// Build the policy engine over the CMS metrics sink.
    pub fn new(config: ResilienceConfig, metrics: Arc<CmsMetrics>) -> Resilience {
        Resilience {
            config,
            metrics,
            breaker: Mutex::new(BreakerState {
                phase: BreakerPhase::Closed,
                consecutive_failures: 0,
                rejects_left: 0,
            }),
            tracer: Tracer::disabled(),
        }
    }

    /// Point this policy engine's fault events at a session tracer.
    /// Retries, breaker transitions and deadline timeouts surface as
    /// point events under the session's current span.
    pub(crate) fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The tracer fault events are reported through.
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The active policy.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// The per-attempt deadline, if any.
    pub fn deadline_units(&self) -> Option<u64> {
        self.config.deadline_units
    }

    /// The metrics sink this policy reports into.
    pub(crate) fn metrics(&self) -> &CmsMetrics {
        &self.metrics
    }

    /// Should an attempt be allowed through the breaker right now?
    /// A rejected attempt advances the open-state cooldown, so retrying
    /// against an open breaker eventually earns a half-open probe.
    fn admit(&self) -> Result<()> {
        if self.config.breaker_threshold == 0 {
            return Ok(());
        }
        let mut b = self.breaker.lock().expect("breaker lock poisoned");
        match b.phase {
            BreakerPhase::Closed | BreakerPhase::HalfOpen => Ok(()),
            BreakerPhase::Open => {
                if b.rejects_left > 0 {
                    b.rejects_left -= 1;
                    self.metrics.add_breaker_rejections(1);
                    self.tracer.event(
                        TraceKind::BreakerReject,
                        "attempt rejected while breaker open",
                        vec![("rejects_left", b.rejects_left.to_string())],
                    );
                    Err(CmsError::CircuitOpen)
                } else {
                    b.phase = BreakerPhase::HalfOpen;
                    Ok(())
                }
            }
        }
    }

    fn record_success(&self) {
        if self.config.breaker_threshold == 0 {
            return;
        }
        let mut b = self.breaker.lock().expect("breaker lock poisoned");
        b.phase = BreakerPhase::Closed;
        b.consecutive_failures = 0;
    }

    fn record_failure(&self) {
        if self.config.breaker_threshold == 0 {
            return;
        }
        let mut b = self.breaker.lock().expect("breaker lock poisoned");
        match b.phase {
            BreakerPhase::HalfOpen => {
                // Failed probe: snap back open for a full cooldown.
                b.phase = BreakerPhase::Open;
                b.rejects_left = self.config.breaker_cooldown;
                self.metrics.add_breaker_opens(1);
                self.tracer.event(
                    TraceKind::BreakerOpen,
                    "half-open probe failed",
                    vec![("cooldown", self.config.breaker_cooldown.to_string())],
                );
            }
            BreakerPhase::Closed => {
                b.consecutive_failures += 1;
                if b.consecutive_failures >= self.config.breaker_threshold {
                    b.phase = BreakerPhase::Open;
                    b.rejects_left = self.config.breaker_cooldown;
                    self.metrics.add_breaker_opens(1);
                    self.tracer.event(
                        TraceKind::BreakerOpen,
                        "consecutive transient failures reached threshold",
                        vec![
                            ("failures", b.consecutive_failures.to_string()),
                            ("cooldown", self.config.breaker_cooldown.to_string()),
                        ],
                    );
                }
            }
            BreakerPhase::Open => {}
        }
    }

    /// Is the breaker currently refusing attempts?
    pub fn breaker_open(&self) -> bool {
        self.breaker.lock().expect("breaker lock poisoned").phase == BreakerPhase::Open
    }

    /// Run one remote operation under the retry + breaker policy.
    ///
    /// Transient errors ([`CmsError::is_transient`]) consume retries,
    /// charging capped exponential backoff in cost units; hard errors
    /// surface immediately. When the budget is spent the final error is
    /// wrapped in [`CmsError::Exhausted`].
    ///
    /// # Errors
    /// Hard errors from `op` verbatim; `Exhausted` after the retry
    /// budget is spent on transient errors or breaker rejections.
    pub fn run<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let mut attempts = 0u32;
        let mut last: Option<CmsError> = None;
        for attempt in 0..=self.config.max_retries {
            if let Err(e) = self.admit() {
                // Breaker rejection consumes this slot in the schedule
                // but never reaches the remote.
                last = Some(e);
                continue;
            }
            attempts += 1;
            match op() {
                Ok(v) => {
                    self.record_success();
                    return Ok(v);
                }
                Err(e) if e.is_transient() => {
                    self.record_failure();
                    if attempt < self.config.max_retries {
                        let backoff = self
                            .config
                            .backoff_base_units
                            .saturating_mul(1u64 << attempt.min(32))
                            .min(self.config.backoff_cap_units);
                        self.metrics.add_retries(1);
                        self.metrics.add_backoff_units(backoff);
                        self.metrics.record_retry_backoff(backoff);
                        self.tracer.event(
                            TraceKind::Retry,
                            e.to_string(),
                            vec![
                                ("attempt", (attempt + 1).to_string()),
                                ("backoff_units", backoff.to_string()),
                            ],
                        );
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(CmsError::Exhausted {
            attempts,
            last: Box::new(last.unwrap_or(CmsError::CircuitOpen)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_remote::RemoteError;

    fn res(cfg: ResilienceConfig) -> Resilience {
        Resilience::new(cfg, Arc::new(CmsMetrics::new()))
    }

    #[test]
    fn first_success_needs_no_retry() {
        let r = res(ResilienceConfig::default());
        let out: Result<u32> = r.run(|| Ok(7));
        assert_eq!(out.unwrap(), 7);
    }

    #[test]
    fn transient_errors_are_retried_until_success() {
        let r = res(ResilienceConfig::default().with_retries(3));
        let mut calls = 0;
        let out = r.run(|| {
            calls += 1;
            if calls < 3 {
                Err(CmsError::Remote(RemoteError::Unavailable))
            } else {
                Ok("done")
            }
        });
        assert_eq!(out.unwrap(), "done");
        assert_eq!(calls, 3);
    }

    #[test]
    fn hard_errors_are_not_retried() {
        let r = res(ResilienceConfig::default().with_retries(5));
        let mut calls = 0;
        let out: Result<()> = r.run(|| {
            calls += 1;
            Err(CmsError::UnknownRelation("nope".into()))
        });
        assert_eq!(out.unwrap_err(), CmsError::UnknownRelation("nope".into()));
        assert_eq!(calls, 1);
    }

    #[test]
    fn exhaustion_wraps_final_error_with_attempt_count() {
        let r = res(ResilienceConfig::default()
            .with_retries(2)
            .with_breaker(0, 0));
        let out: Result<()> = r.run(|| Err(CmsError::Remote(RemoteError::Timeout)));
        match out.unwrap_err() {
            CmsError::Exhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert_eq!(*last, CmsError::Remote(RemoteError::Timeout));
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn backoff_is_charged_and_capped() {
        let metrics = Arc::new(CmsMetrics::new());
        let r = Resilience::new(
            ResilienceConfig::default()
                .with_retries(4)
                .with_backoff(10, 25)
                .with_breaker(0, 0),
            Arc::clone(&metrics),
        );
        let _: Result<()> = r.run(|| Err(CmsError::Remote(RemoteError::Unavailable)));
        let s = metrics.snapshot();
        assert_eq!(s.retries, 4);
        // 10, 20, then capped at 25 twice.
        assert_eq!(s.retry_backoff_units, 10 + 20 + 25 + 25);
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_on_probe() {
        let metrics = Arc::new(CmsMetrics::new());
        let r = Resilience::new(
            ResilienceConfig::default()
                .with_retries(0)
                .with_breaker(2, 3),
            Arc::clone(&metrics),
        );
        // Two failing calls open the breaker.
        for _ in 0..2 {
            let _: Result<()> = r.run(|| Err(CmsError::Remote(RemoteError::Unavailable)));
        }
        assert!(r.breaker_open());
        // The next three attempts are rejected without calling op.
        for _ in 0..3 {
            let mut called = false;
            let out: Result<()> = r.run(|| {
                called = true;
                Ok(())
            });
            assert!(!called, "op must not run while breaker is open");
            assert!(matches!(
                out.unwrap_err(),
                CmsError::Exhausted { attempts: 0, .. }
            ));
        }
        // Cooldown spent: the next attempt is a half-open probe, and its
        // success closes the breaker.
        let out: Result<u32> = r.run(|| Ok(1));
        assert_eq!(out.unwrap(), 1);
        assert!(!r.breaker_open());
        let s = metrics.snapshot();
        assert_eq!(s.breaker_opens, 1);
        assert_eq!(s.breaker_rejections, 3);
    }

    #[test]
    fn failed_probe_reopens_breaker() {
        let r = res(ResilienceConfig::default()
            .with_retries(0)
            .with_breaker(1, 1));
        let _: Result<()> = r.run(|| Err(CmsError::Remote(RemoteError::Unavailable)));
        assert!(r.breaker_open());
        // One rejection spends the cooldown...
        let _: Result<()> = r.run(|| Ok(()));
        // ...so this is the probe; it fails and the breaker reopens.
        let _: Result<()> = r.run(|| Err(CmsError::Remote(RemoteError::Unavailable)));
        assert!(r.breaker_open());
    }

    #[test]
    fn retrying_through_open_breaker_earns_probe() {
        // With enough retries in one run() call, the breaker's cooldown
        // is consumed by rejections and the probe succeeds.
        let r = res(ResilienceConfig::default()
            .with_retries(4)
            .with_breaker(1, 2));
        let _: Result<()> = r.run(|| Err(CmsError::Remote(RemoteError::Unavailable)));
        assert!(r.breaker_open());
        let mut calls = 0;
        let out = r.run(|| {
            calls += 1;
            Ok(9)
        });
        assert_eq!(out.unwrap(), 9);
        assert_eq!(calls, 1, "two rejected slots, then one probe");
    }
}
