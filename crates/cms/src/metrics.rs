//! Workstation-side cost accounting for the CMS.
//!
//! Together with the remote server's counters this completes the paper's
//! cost metric (§3): communication volume and server demand live in
//! `braid-remote`; "computation that needs to be done by the workstation"
//! is counted here.
//!
//! Every field — monotone counter or log2 histogram — is declared once,
//! in the [`cms_metrics!`] invocation below. The macro generates the
//! atomic struct, the `Copy` snapshot struct, the bump methods,
//! `snapshot`/`reset`, and the field-by-field [`CmsMetricsSnapshot::since`]
//! delta, so a new counter cannot silently miss delta accounting: adding
//! a field to the list wires all five at once, and the size-of guard
//! test below fails if the snapshot ever grows a field outside the list.

use braid_trace::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};

/// Declares the full CMS metrics surface in one place. Generates:
/// `CmsMetrics` (atomics), `CmsMetricsSnapshot` (`Copy` values),
/// per-field bump/record methods, `snapshot()`, `reset()`,
/// `CmsMetricsSnapshot::since()`, and the `COUNTER_FIELDS` /
/// `GAUGE_FIELDS` / `HISTOGRAM_FIELDS` counts backing the completeness
/// guard test. Counters bump with `fetch_add`; gauges are monotone
/// high-water marks recorded with `fetch_max` (so `since` deltas stay
/// non-negative); histograms record log2-bucketed values.
macro_rules! cms_metrics {
    (
        counters { $($(#[$cmeta:meta])* $cname:ident => $cbump:ident,)+ }
        gauges { $($(#[$gmeta:meta])* $gname:ident => $gbump:ident,)+ }
        histograms { $($(#[$hmeta:meta])* $hname:ident => $hbump:ident,)+ }
    ) => {
        /// Counters, high-water gauges and histograms maintained by the CMS.
        #[derive(Debug, Default)]
        pub struct CmsMetrics {
            $($cname: AtomicU64,)+
            $($gname: AtomicU64,)+
            $($hname: Histogram,)+
        }

        /// Snapshot of [`CmsMetrics`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct CmsMetricsSnapshot {
            $($(#[$cmeta])* pub $cname: u64,)+
            $($(#[$gmeta])* pub $gname: u64,)+
            $($(#[$hmeta])* pub $hname: HistogramSnapshot,)+
        }

        impl CmsMetrics {
            $(
                pub(crate) fn $cbump(&self, n: u64) {
                    self.$cname.fetch_add(n, Ordering::Relaxed);
                }
            )+
            $(
                pub(crate) fn $gbump(&self, value: u64) {
                    self.$gname.fetch_max(value, Ordering::Relaxed);
                }
            )+
            $(
                pub(crate) fn $hbump(&self, value: u64) {
                    self.$hname.record(value);
                }
            )+

            /// Read all counters, gauges and histograms.
            pub fn snapshot(&self) -> CmsMetricsSnapshot {
                CmsMetricsSnapshot {
                    $($cname: self.$cname.load(Ordering::Relaxed),)+
                    $($gname: self.$gname.load(Ordering::Relaxed),)+
                    $($hname: self.$hname.snapshot(),)+
                }
            }

            /// Zero all counters, gauges and histograms.
            pub fn reset(&self) {
                $(self.$cname.store(0, Ordering::Relaxed);)+
                $(self.$gname.store(0, Ordering::Relaxed);)+
                $(self.$hname.reset();)+
            }
        }

        impl CmsMetricsSnapshot {
            /// Number of scalar counter fields the macro generated.
            pub const COUNTER_FIELDS: usize = [$(stringify!($cname)),+].len();
            /// Number of high-water gauge fields the macro generated.
            pub const GAUGE_FIELDS: usize = [$(stringify!($gname)),+].len();
            /// Number of histogram fields the macro generated.
            pub const HISTOGRAM_FIELDS: usize = [$(stringify!($hname)),+].len();

            /// Every counter and gauge as a `("cms.<name>", value)`
            /// entry, in declaration order — the flattening the wire
            /// STATS protocol ships, generated here so a new metric is
            /// exported automatically.
            pub fn counter_entries(&self) -> Vec<(&'static str, u64)> {
                vec![
                    $((concat!("cms.", stringify!($cname)), self.$cname),)+
                    $((concat!("cms.", stringify!($gname)), self.$gname),)+
                ]
            }

            /// Every histogram as a `("cms.<name>", snapshot)` entry.
            pub fn histogram_entries(&self) -> Vec<(&'static str, HistogramSnapshot)> {
                vec![$((concat!("cms.", stringify!($hname)), self.$hname),)+]
            }

            /// Field-by-field delta (`self - earlier`). Counters and
            /// gauges subtract (both are monotone); histograms subtract
            /// bucketwise.
            #[must_use]
            pub fn since(&self, earlier: &CmsMetricsSnapshot) -> CmsMetricsSnapshot {
                CmsMetricsSnapshot {
                    $($cname: self.$cname - earlier.$cname,)+
                    $($gname: self.$gname - earlier.$gname,)+
                    $($hname: self.$hname.since(&earlier.$hname),)+
                }
            }
        }
    };
}

cms_metrics! {
    counters {
        /// IE-queries received.
        queries => add_queries,
        /// Queries answered entirely from the cache.
        full_cache_answers => add_full_cache,
        /// Queries answered partly from the cache.
        partial_cache_answers => add_partial_cache,
        /// Subqueries shipped to the remote DBMS.
        remote_subqueries => add_remote_subqueries,
        /// Queries evaluated in a generalized form.
        generalized_queries => add_generalized,
        /// CMS-generated prefetch queries.
        prefetched_queries => add_prefetched,
        /// Queries answered with a lazy generator.
        lazy_answers => add_lazy,
        /// Hash indices built from advice.
        indices_built => add_indices,
        /// Cache elements evicted.
        evictions => add_evictions,
        /// Tuples processed by local (cache) operators.
        local_tuple_ops => add_local_ops,
        /// Batches produced by the local batched executor.
        executor_batches => add_executor_batches,
        /// Tuples produced by the local batched executor (all operators).
        executor_tuples => add_executor_tuples,
        /// Rows pruned by (fused) filter passes in the local executor.
        executor_rows_pruned => add_executor_rows_pruned,
        /// Tuples actually delivered to the IE.
        tuples_to_ie => add_tuples_to_ie,
        /// Remote fetch attempts retried after a transient fault.
        retries => add_retries,
        /// Simulated cost units charged as retry backoff.
        retry_backoff_units => add_backoff_units,
        /// Attempts abandoned because the per-request deadline was exceeded.
        deadline_timeouts => add_deadline_timeouts,
        /// Times the circuit breaker tripped open.
        breaker_opens => add_breaker_opens,
        /// Attempts rejected without contacting the remote (breaker open).
        breaker_rejections => add_breaker_rejections,
        /// Queries answered in degraded (cache-only) mode with a
        /// `Partial` completeness tag.
        degraded_answers => add_degraded,
        /// Remote fetches actually issued through the single-flight layer
        /// (each one led a flight other sessions could join).
        flight_fetches => add_flight_fetches,
        /// Remote fetches avoided because a subsumption-equivalent fetch was
        /// already in flight — the session joined it instead of duplicating
        /// the server work.
        dedup_hits => add_dedup_hits,
        /// Contended shared-cache shard-lock acquisitions (a `try_lock`
        /// failed before blocking) — the lock-wait proxy reported by E13.
        shard_lock_waits => add_shard_lock_waits,
        /// Cooperative sessions parked on a pending single-flight join
        /// (the worker pool suspended them instead of blocking a thread).
        sessions_parked => add_sessions_parked,
        /// Waker firings that re-enqueued (or flagged) a parked session.
        /// At quiescence with all flights closed this equals
        /// `sessions_parked` — the "no leaked wakers" invariant.
        wakes => add_wakes,
        /// Cooperative scheduler steps executed across all pool workers.
        steps_executed => add_steps_executed,
        /// Cache parts served from a column-major element (the plan leaf
        /// compiled to the vectorized kernels).
        columnar_hits => add_columnar_hits,
        /// Elements converted to the column-major representation after
        /// caching (producer-style elements, no consumer annotations).
        columnar_conversions => add_columnar_conversions,
        /// Elements kept as indexed rows despite columnar mode, because
        /// consumer (`?`) annotations predicted point probes.
        columnar_fallbacks => add_columnar_fallbacks,
    }
    gauges {
        /// High-water mark of the worker pool's run-queue depth.
        run_queue_depth => record_run_queue_depth,
    }
    histograms {
        /// Wall-clock latency of [`Cms::query`](crate::Cms::query) calls,
        /// in microseconds (log2 buckets; p50/p90/p99 accessors).
        query_latency_us => record_query_latency,
        /// Simulated cost units charged per individual retry backoff.
        retry_backoff => record_retry_backoff,
    }
}

impl CmsMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one plan execution's counters into the running totals.
    pub(crate) fn add_exec_stats(&self, stats: braid_relational::ExecStats) {
        self.add_executor_batches(stats.batches);
        self.add_executor_tuples(stats.tuples);
        self.add_executor_rows_pruned(stats.rows_pruned);
    }
}

impl CmsMetricsSnapshot {
    /// Cache hit rate over answered queries (full hits / queries).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.full_cache_answers as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hit_rate() {
        let m = CmsMetrics::new();
        m.add_queries(4);
        m.add_full_cache(1);
        m.add_lazy(1);
        let s = m.snapshot();
        assert_eq!(s.queries, 4);
        assert_eq!(s.lazy_answers, 1);
        assert!((s.hit_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(CmsMetricsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn executor_counters_accumulate_and_reset() {
        let m = CmsMetrics::new();
        m.add_exec_stats(braid_relational::ExecStats {
            batches: 3,
            tuples: 40,
            rows_pruned: 7,
        });
        m.add_exec_stats(braid_relational::ExecStats {
            batches: 1,
            tuples: 2,
            rows_pruned: 0,
        });
        let s = m.snapshot();
        assert_eq!(s.executor_batches, 4);
        assert_eq!(s.executor_tuples, 42);
        assert_eq!(s.executor_rows_pruned, 7);
        m.reset();
        assert_eq!(m.snapshot().executor_tuples, 0);
    }

    #[test]
    fn since_subtracts_every_field() {
        let m = CmsMetrics::new();
        m.add_queries(3);
        m.record_query_latency(100);
        let earlier = m.snapshot();
        m.add_queries(2);
        m.add_retries(1);
        m.record_query_latency(100);
        m.record_retry_backoff(16);
        let d = m.snapshot().since(&earlier);
        assert_eq!(d.queries, 2);
        assert_eq!(d.retries, 1);
        assert_eq!(d.query_latency_us.count(), 1);
        assert_eq!(d.retry_backoff.count(), 1);
    }

    /// Completeness guard: the snapshot struct may only hold fields the
    /// `cms_metrics!` list generated — a field added by hand (bypassing
    /// the macro, and therefore missing from `since`/`reset`) changes
    /// the struct's size and fails here.
    #[test]
    fn every_snapshot_field_is_macro_generated() {
        assert_eq!(
            std::mem::size_of::<CmsMetricsSnapshot>(),
            (CmsMetricsSnapshot::COUNTER_FIELDS + CmsMetricsSnapshot::GAUGE_FIELDS)
                * std::mem::size_of::<u64>()
                + CmsMetricsSnapshot::HISTOGRAM_FIELDS * std::mem::size_of::<HistogramSnapshot>(),
        );
        assert_eq!(CmsMetricsSnapshot::COUNTER_FIELDS, 29);
        assert_eq!(CmsMetricsSnapshot::GAUGE_FIELDS, 1);
        assert_eq!(CmsMetricsSnapshot::HISTOGRAM_FIELDS, 2);
    }

    /// The flattened entry lists cover every macro-declared field, so
    /// the wire STATS export can never silently miss a metric.
    #[test]
    fn entry_lists_cover_every_field() {
        let m = CmsMetrics::new();
        m.add_queries(5);
        m.record_run_queue_depth(2);
        let s = m.snapshot();
        let counters = s.counter_entries();
        assert_eq!(
            counters.len(),
            CmsMetricsSnapshot::COUNTER_FIELDS + CmsMetricsSnapshot::GAUGE_FIELDS
        );
        assert!(counters.contains(&("cms.queries", 5)));
        assert!(counters.contains(&("cms.run_queue_depth", 2)));
        assert_eq!(
            s.histogram_entries().len(),
            CmsMetricsSnapshot::HISTOGRAM_FIELDS
        );
        assert_eq!(s.histogram_entries()[0].0, "cms.query_latency_us");
    }

    #[test]
    fn run_queue_depth_is_a_high_water_mark() {
        let m = CmsMetrics::new();
        m.record_run_queue_depth(3);
        m.record_run_queue_depth(9);
        m.record_run_queue_depth(5);
        assert_eq!(m.snapshot().run_queue_depth, 9, "fetch_max, not fetch_add");
        let earlier = m.snapshot();
        m.record_run_queue_depth(12);
        assert_eq!(m.snapshot().since(&earlier).run_queue_depth, 3);
    }

    #[test]
    fn histograms_reset_with_counters() {
        let m = CmsMetrics::new();
        m.record_query_latency(50);
        m.reset();
        assert!(m.snapshot().query_latency_us.is_empty());
    }
}
