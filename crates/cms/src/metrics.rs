//! Workstation-side cost accounting for the CMS.
//!
//! Together with the remote server's counters this completes the paper's
//! cost metric (§3): communication volume and server demand live in
//! `braid-remote`; "computation that needs to be done by the workstation"
//! is counted here.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters maintained by the CMS.
#[derive(Debug, Default)]
pub struct CmsMetrics {
    queries: AtomicU64,
    full_cache_answers: AtomicU64,
    partial_cache_answers: AtomicU64,
    remote_subqueries: AtomicU64,
    generalized_queries: AtomicU64,
    prefetched_queries: AtomicU64,
    lazy_answers: AtomicU64,
    indices_built: AtomicU64,
    evictions: AtomicU64,
    local_tuple_ops: AtomicU64,
    executor_batches: AtomicU64,
    executor_tuples: AtomicU64,
    executor_rows_pruned: AtomicU64,
    tuples_to_ie: AtomicU64,
    retries: AtomicU64,
    retry_backoff_units: AtomicU64,
    deadline_timeouts: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_rejections: AtomicU64,
    degraded_answers: AtomicU64,
    flight_fetches: AtomicU64,
    dedup_hits: AtomicU64,
    shard_lock_waits: AtomicU64,
}

/// Snapshot of [`CmsMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CmsMetricsSnapshot {
    /// IE-queries received.
    pub queries: u64,
    /// Queries answered entirely from the cache.
    pub full_cache_answers: u64,
    /// Queries answered partly from the cache.
    pub partial_cache_answers: u64,
    /// Subqueries shipped to the remote DBMS.
    pub remote_subqueries: u64,
    /// Queries evaluated in a generalized form.
    pub generalized_queries: u64,
    /// CMS-generated prefetch queries.
    pub prefetched_queries: u64,
    /// Queries answered with a lazy generator.
    pub lazy_answers: u64,
    /// Hash indices built from advice.
    pub indices_built: u64,
    /// Cache elements evicted.
    pub evictions: u64,
    /// Tuples processed by local (cache) operators.
    pub local_tuple_ops: u64,
    /// Batches produced by the local batched executor.
    pub executor_batches: u64,
    /// Tuples produced by the local batched executor (all operators).
    pub executor_tuples: u64,
    /// Rows pruned by (fused) filter passes in the local executor.
    pub executor_rows_pruned: u64,
    /// Tuples actually delivered to the IE.
    pub tuples_to_ie: u64,
    /// Remote fetch attempts retried after a transient fault.
    pub retries: u64,
    /// Simulated cost units charged as retry backoff.
    pub retry_backoff_units: u64,
    /// Attempts abandoned because the per-request deadline was exceeded.
    pub deadline_timeouts: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Attempts rejected without contacting the remote (breaker open).
    pub breaker_rejections: u64,
    /// Queries answered in degraded (cache-only) mode with a
    /// `Partial` completeness tag.
    pub degraded_answers: u64,
    /// Remote fetches actually issued through the single-flight layer
    /// (each one led a flight other sessions could join).
    pub flight_fetches: u64,
    /// Remote fetches avoided because a subsumption-equivalent fetch was
    /// already in flight — the session joined it instead of duplicating
    /// the server work.
    pub dedup_hits: u64,
    /// Contended shared-cache shard-lock acquisitions (a `try_lock`
    /// failed before blocking) — the lock-wait proxy reported by E13.
    pub shard_lock_waits: u64,
}

macro_rules! bump {
    ($($name:ident => $field:ident),* $(,)?) => {
        impl CmsMetrics {
            $(
                pub(crate) fn $name(&self, n: u64) {
                    self.$field.fetch_add(n, Ordering::Relaxed);
                }
            )*
        }
    };
}

bump! {
    add_queries => queries,
    add_full_cache => full_cache_answers,
    add_partial_cache => partial_cache_answers,
    add_remote_subqueries => remote_subqueries,
    add_generalized => generalized_queries,
    add_prefetched => prefetched_queries,
    add_lazy => lazy_answers,
    add_indices => indices_built,
    add_evictions => evictions,
    add_local_ops => local_tuple_ops,
    add_executor_batches => executor_batches,
    add_executor_tuples => executor_tuples,
    add_executor_rows_pruned => executor_rows_pruned,
    add_tuples_to_ie => tuples_to_ie,
    add_retries => retries,
    add_backoff_units => retry_backoff_units,
    add_deadline_timeouts => deadline_timeouts,
    add_breaker_opens => breaker_opens,
    add_breaker_rejections => breaker_rejections,
    add_degraded => degraded_answers,
    add_flight_fetches => flight_fetches,
    add_dedup_hits => dedup_hits,
    add_shard_lock_waits => shard_lock_waits,
}

impl CmsMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one plan execution's counters into the running totals.
    pub(crate) fn add_exec_stats(&self, stats: braid_relational::ExecStats) {
        self.add_executor_batches(stats.batches);
        self.add_executor_tuples(stats.tuples);
        self.add_executor_rows_pruned(stats.rows_pruned);
    }

    /// Read all counters.
    pub fn snapshot(&self) -> CmsMetricsSnapshot {
        CmsMetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            full_cache_answers: self.full_cache_answers.load(Ordering::Relaxed),
            partial_cache_answers: self.partial_cache_answers.load(Ordering::Relaxed),
            remote_subqueries: self.remote_subqueries.load(Ordering::Relaxed),
            generalized_queries: self.generalized_queries.load(Ordering::Relaxed),
            prefetched_queries: self.prefetched_queries.load(Ordering::Relaxed),
            lazy_answers: self.lazy_answers.load(Ordering::Relaxed),
            indices_built: self.indices_built.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            local_tuple_ops: self.local_tuple_ops.load(Ordering::Relaxed),
            executor_batches: self.executor_batches.load(Ordering::Relaxed),
            executor_tuples: self.executor_tuples.load(Ordering::Relaxed),
            executor_rows_pruned: self.executor_rows_pruned.load(Ordering::Relaxed),
            tuples_to_ie: self.tuples_to_ie.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            retry_backoff_units: self.retry_backoff_units.load(Ordering::Relaxed),
            deadline_timeouts: self.deadline_timeouts.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_rejections: self.breaker_rejections.load(Ordering::Relaxed),
            degraded_answers: self.degraded_answers.load(Ordering::Relaxed),
            flight_fetches: self.flight_fetches.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            shard_lock_waits: self.shard_lock_waits.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        for c in [
            &self.queries,
            &self.full_cache_answers,
            &self.partial_cache_answers,
            &self.remote_subqueries,
            &self.generalized_queries,
            &self.prefetched_queries,
            &self.lazy_answers,
            &self.indices_built,
            &self.evictions,
            &self.local_tuple_ops,
            &self.executor_batches,
            &self.executor_tuples,
            &self.executor_rows_pruned,
            &self.tuples_to_ie,
            &self.retries,
            &self.retry_backoff_units,
            &self.deadline_timeouts,
            &self.breaker_opens,
            &self.breaker_rejections,
            &self.degraded_answers,
            &self.flight_fetches,
            &self.dedup_hits,
            &self.shard_lock_waits,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

impl CmsMetricsSnapshot {
    /// Cache hit rate over answered queries (full hits / queries).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.full_cache_answers as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hit_rate() {
        let m = CmsMetrics::new();
        m.add_queries(4);
        m.add_full_cache(1);
        m.add_lazy(1);
        let s = m.snapshot();
        assert_eq!(s.queries, 4);
        assert_eq!(s.lazy_answers, 1);
        assert!((s.hit_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(CmsMetricsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn executor_counters_accumulate_and_reset() {
        let m = CmsMetrics::new();
        m.add_exec_stats(braid_relational::ExecStats {
            batches: 3,
            tuples: 40,
            rows_pruned: 7,
        });
        m.add_exec_stats(braid_relational::ExecStats {
            batches: 1,
            tuples: 2,
            rows_pruned: 0,
        });
        let s = m.snapshot();
        assert_eq!(s.executor_batches, 4);
        assert_eq!(s.executor_tuples, 42);
        assert_eq!(s.executor_rows_pruned, 7);
        m.reset();
        assert_eq!(m.snapshot().executor_tuples, 0);
    }
}
