//! The shared, concurrently-usable cache: BrAID's CMS is "a main-memory
//! DBMS whose database is the cache" serving *all* inference sessions, so
//! the cache itself must outlive any one session and admit concurrent
//! readers.
//!
//! Structure: N shards, each a [`CacheManager`] behind its own `RwLock`.
//! An element lives in the shard of its *base-relation footprint* (the
//! minimum relation name its definition reads, hashed with FNV-1a).
//! Subsumption requires a homomorphism from the element's body onto the
//! query component, so `footprint(E) ⊆ footprint(Q)` for every candidate
//! `E` — consulting exactly the shards of `Q`'s own relations is both
//! sound and complete, and lookups over disjoint relations never contend.
//!
//! Element ids stay globally unique across shards because shard `s` of
//! `N` issues the strided sequence `s, s+N, s+2N, …`; `id % N` recovers
//! the owning shard without any shared counter.

use crate::cache::{CacheManager, CacheRead, ElementBuilder};
use crate::element::{CacheElement, ElemId};
use crate::error::Result;
use crate::metrics::CmsMetrics;
use crate::model::ModelRow;
use braid_caql::ConjunctiveQuery;
use braid_relational::{Generator, Relation};
use braid_subsume::{base_footprint, CandidateUse, Derivation, ViewDef};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// FNV-1a: deterministic across processes (unlike `DefaultHasher`), so
/// shard routing — and therefore eviction behavior — is reproducible.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A sharded, lock-protected cache shared by concurrent sessions.
#[derive(Debug)]
pub struct SharedCache {
    shards: Vec<RwLock<CacheManager>>,
    metrics: Arc<CmsMetrics>,
}

impl SharedCache {
    /// A shared cache with `shards` independent locks splitting
    /// `capacity_bytes` evenly. One shard reproduces the single-session
    /// [`CacheManager`] behavior exactly (same capacity, same LRU order).
    pub fn new(capacity_bytes: usize, shards: usize, metrics: Arc<CmsMetrics>) -> SharedCache {
        let n = shards.max(1);
        let per_shard = if capacity_bytes == usize::MAX {
            usize::MAX
        } else {
            capacity_bytes / n
        };
        SharedCache {
            shards: (0..n)
                .map(|s| {
                    RwLock::new(CacheManager::with_id_sequence(
                        per_shard,
                        s as ElemId,
                        n as u64,
                    ))
                })
                .collect(),
            metrics,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of_relation(&self, rel: &str) -> usize {
        (fnv1a(rel) % self.shards.len() as u64) as usize
    }

    fn shard_of_id(&self, id: ElemId) -> usize {
        (id % self.shards.len() as u64) as usize
    }

    /// The home shard of a query: the shard of the smallest relation in
    /// its footprint (queries with no positive atoms go to shard 0).
    fn home_shard(&self, q: &ConjunctiveQuery) -> usize {
        base_footprint(q)
            .iter()
            .next()
            .map_or(0, |r| self.shard_of_relation(r))
    }

    /// Ascending, deduplicated shard indices a query's footprint touches.
    /// Every subsumption candidate for `q` lives in one of these shards.
    fn shards_of_query(&self, q: &ConjunctiveQuery) -> Vec<usize> {
        let fp = base_footprint(q);
        if fp.is_empty() {
            return vec![0];
        }
        let mut idx: Vec<usize> = fp.iter().map(|r| self.shard_of_relation(r)).collect();
        idx.sort_unstable();
        idx.dedup();
        idx
    }

    /// Read-lock a shard, counting contention: a failed `try_read` is a
    /// lock wait another session caused.
    fn read(&self, idx: usize) -> RwLockReadGuard<'_, CacheManager> {
        let lock = &self.shards[idx];
        match lock.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.metrics.add_shard_lock_waits(1);
                lock.read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            }
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        }
    }

    /// Write-lock a shard, counting contention.
    fn write(&self, idx: usize) -> RwLockWriteGuard<'_, CacheManager> {
        let lock = &self.shards[idx];
        match lock.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.metrics.add_shard_lock_waits(1);
                lock.write()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            }
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        }
    }

    /// Number of elements across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.read(i).len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes in use across all shards.
    pub fn used_bytes(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.read(i).used_bytes())
            .sum()
    }

    /// Total evictions across all shards.
    pub fn evictions(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.read(i).evictions())
            .sum()
    }

    /// Install a result element (routed to its footprint's home shard),
    /// registering extra exact-match aliases. Returns the id (existing id
    /// if an identical definition is already cached — two sessions racing
    /// past the same miss must not double-store the result) and how many
    /// elements the insert evicted.
    pub fn insert_with_aliases(
        &self,
        def: ViewDef,
        build: ElementBuilder,
        aliases: &[String],
    ) -> (Option<ElemId>, u64) {
        let idx = self.home_shard(def.query());
        let mut mgr = self.write(idx);
        if let Some(id) = mgr.exact_lookup(def.query()) {
            mgr.touch(id);
            return (Some(id), 0);
        }
        let before = mgr.evictions();
        let id = mgr.insert_with_aliases(def, build, aliases);
        let evicted = mgr.evictions() - before;
        (id, evicted)
    }

    /// Record a derivation hit (LRU + statistics).
    pub fn touch(&self, id: ElemId) {
        self.write(self.shard_of_id(id)).touch(id);
    }

    /// Set the advice-pinned flags globally: elements in `pinned` survive
    /// replacement scans, all others are unpinned. Shards are updated one
    /// at a time (advice pins are policy, not correctness — a momentary
    /// cross-shard skew is harmless).
    pub fn set_pins(&self, pinned: &[ElemId]) {
        for i in 0..self.shards.len() {
            self.write(i).set_pins(pinned);
        }
    }

    /// Take a session pin on an element, atomically checking it still
    /// exists. Returns `None` when the element was already evicted — the
    /// caller must re-plan rather than execute against a dangling id.
    pub fn try_pin(self: &Arc<Self>, id: ElemId) -> Option<PinGuard> {
        let mut mgr = self.write(self.shard_of_id(id));
        mgr.get(id)?;
        mgr.pin(id);
        drop(mgr);
        Some(PinGuard {
            cache: Arc::clone(self),
            id,
        })
    }

    fn unpin_raw(&self, id: ElemId) {
        self.write(self.shard_of_id(id)).unpin(id);
    }

    /// Run `f` over an element (refreshing nothing).
    pub fn with_element<R>(&self, id: ElemId, f: impl FnOnce(&CacheElement) -> R) -> Option<R> {
        let mgr = self.read(self.shard_of_id(id));
        mgr.get(id).map(f)
    }

    /// Run `f` over an element mutably (refreshing its LRU stamp). Bytes
    /// are reconciled immediately after the mutation, under the same
    /// lock, so `used_bytes` never drifts across sessions.
    pub fn with_element_mut<R>(
        &self,
        id: ElemId,
        f: impl FnOnce(&mut CacheElement) -> R,
    ) -> Option<(R, u64)> {
        let mut mgr = self.write(self.shard_of_id(id));
        let r = f(mgr.get_mut(id)?);
        let before = mgr.evictions();
        mgr.reconcile_bytes();
        let evicted = mgr.evictions() - before;
        Some((r, evicted))
    }

    /// Recompute every shard's byte accounting (test support). Returns
    /// evictions triggered by the reconciliation.
    pub fn reconcile_all(&self) -> u64 {
        let mut evicted = 0;
        for i in 0..self.shards.len() {
            let mut mgr = self.write(i);
            let before = mgr.evictions();
            mgr.reconcile_bytes();
            evicted += mgr.evictions() - before;
        }
        evicted
    }

    /// Build the compensation pipeline for a derivation. The returned
    /// [`Generator`] owns its inputs (`Arc`-shared with the element), so
    /// it stays valid after the lock is released; hold a [`PinGuard`]
    /// while streaming to keep the element itself resident.
    ///
    /// # Errors
    /// Returns an error if the element is gone or a projection variable
    /// is unavailable.
    pub fn derive(&self, id: ElemId, derivation: &Derivation, vars: &[&str]) -> Result<Generator> {
        self.read(self.shard_of_id(id)).derive(id, derivation, vars)
    }

    /// Cache-model rows across all shards, ordered by element id.
    pub fn model(&self) -> Vec<ModelRow> {
        let mut rows: Vec<ModelRow> = (0..self.shards.len())
            .flat_map(|i| self.read(i).model())
            .collect();
        rows.sort_by_key(|r| r.id);
        rows
    }

    /// Ids of elements still carrying a session pin. After every
    /// [`AnswerStream`](crate::AnswerStream) of every session has been
    /// dropped this must be empty — the pin-balance invariant the
    /// simulation oracle (and the concurrency tests) check.
    pub fn leaked_session_pins(&self) -> Vec<ElemId> {
        self.ids_matching(|e| e.pin_count > 0)
    }

    /// Ids of elements matching a predicate (for advice pin scoring).
    pub fn ids_matching(&self, f: impl Fn(&CacheElement) -> bool) -> Vec<ElemId> {
        let mut ids: Vec<ElemId> = Vec::new();
        for i in 0..self.shards.len() {
            let mgr = self.read(i);
            ids.extend(mgr.elements().filter(|e| f(e)).map(|e| e.id));
        }
        ids.sort_unstable();
        ids
    }
}

impl CacheRead for SharedCache {
    fn relevant(&self, q: &ConjunctiveQuery) -> Vec<CandidateUse> {
        let mut out = Vec::new();
        for idx in self.shards_of_query(q) {
            out.extend(self.read(idx).relevant(q));
        }
        out
    }

    fn whole_subsumers(&self, q: &ConjunctiveQuery) -> Vec<(ElemId, Derivation)> {
        let mut out = Vec::new();
        for idx in self.shards_of_query(q) {
            out.extend(self.read(idx).whole_subsumers(q));
        }
        out
    }

    fn exact_lookup(&self, q: &ConjunctiveQuery) -> Option<ElemId> {
        self.read(self.home_shard(q)).exact_lookup(q)
    }

    fn cardinality_of(&self, id: ElemId) -> Option<usize> {
        self.read(self.shard_of_id(id)).cardinality_of(id)
    }

    fn is_columnar(&self, id: ElemId) -> bool {
        self.read(self.shard_of_id(id)).is_columnar(id)
    }

    fn derive_relation(
        &self,
        id: ElemId,
        derivation: &Derivation,
        vars: &[&str],
    ) -> Result<Relation> {
        self.read(self.shard_of_id(id))
            .derive_relation(id, derivation, vars)
    }
}

/// A held session pin: while alive, the pinned element cannot be evicted,
/// so an open generator streaming from it stays valid. Dropping the guard
/// releases the pin.
#[derive(Debug)]
pub struct PinGuard {
    cache: Arc<SharedCache>,
    id: ElemId,
}

impl PinGuard {
    /// The pinned element.
    pub fn id(&self) -> ElemId {
        self.id
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        self.cache.unpin_raw(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_caql::parse_rule;
    use braid_relational::{tuple, Schema};

    fn metrics() -> Arc<CmsMetrics> {
        Arc::new(CmsMetrics::new())
    }

    fn def(src: &str) -> ViewDef {
        ViewDef::new(parse_rule(src).unwrap()).unwrap()
    }

    fn rel(n: usize) -> Relation {
        let mut r = Relation::new(Schema::of_strs("e", &["x", "y"]));
        for i in 0..n {
            r.insert(tuple![format!("k{i}"), format!("v{i}")]).unwrap();
        }
        r
    }

    #[test]
    fn routing_is_footprint_stable_and_ids_unique() {
        let c = SharedCache::new(usize::MAX, 4, metrics());
        let mut ids = Vec::new();
        for rel_name in ["b1", "b2", "b3", "b4", "b5", "b6"] {
            let d = def(&format!("v(X, Y) :- {rel_name}(X, Y)."));
            let (id, _) = c.insert_with_aliases(d, ElementBuilder::Materialized(rel(2)), &[]);
            ids.push(id.unwrap());
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "ids unique across shards");
        // Lookup by an equivalent query finds the element wherever it is.
        for rel_name in ["b1", "b2", "b3", "b4", "b5", "b6"] {
            let q = parse_rule(&format!("q(A, B) :- {rel_name}(A, B).")).unwrap();
            assert!(c.exact_lookup(&q).is_some(), "{rel_name} reachable");
        }
    }

    #[test]
    fn subsumption_candidates_found_across_shard_counts() {
        // Same content, different shard counts: candidate sets agree.
        for shards in [1usize, 2, 4, 8] {
            let c = SharedCache::new(usize::MAX, shards, metrics());
            c.insert_with_aliases(
                def("v(X, Y) :- b3(X, Y)."),
                ElementBuilder::Materialized(rel(3)),
                &[],
            );
            let q = parse_rule("q(A) :- b3(A, v1).").unwrap();
            assert_eq!(c.relevant(&q).len(), 1, "shards={shards}");
            assert_eq!(c.whole_subsumers(&q).len(), 1, "shards={shards}");
        }
    }

    #[test]
    fn duplicate_definitions_collapse_to_one_element() {
        let c = SharedCache::new(usize::MAX, 2, metrics());
        let (a, _) = c.insert_with_aliases(
            def("v(X, Y) :- b1(X, Y)."),
            ElementBuilder::Materialized(rel(2)),
            &[],
        );
        let (b, _) = c.insert_with_aliases(
            def("w(P, Q) :- b1(P, Q)."),
            ElementBuilder::Materialized(rel(2)),
            &[],
        );
        assert_eq!(a, b, "second racing insert reuses the first element");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn pin_guard_blocks_eviction_and_releases_on_drop() {
        let unit = {
            let e = crate::element::CacheElement::materialized(
                0,
                def("e(X, Y) :- b1(X, Y)."),
                rel(3),
                0,
            );
            e.approx_bytes()
        };
        let c = Arc::new(SharedCache::new(unit * 2 + 64, 1, metrics()));
        let (a, _) = c.insert_with_aliases(
            def("a(X, Y) :- b1(X, Y)."),
            ElementBuilder::Materialized(rel(3)),
            &[],
        );
        let a = a.unwrap();
        let guard = c.try_pin(a).expect("element present");
        // Pressure: inserting two more elements evicts around the pin.
        c.insert_with_aliases(
            def("b(X, Y) :- b2(X, Y)."),
            ElementBuilder::Materialized(rel(3)),
            &[],
        );
        c.insert_with_aliases(
            def("d(X, Y) :- b3(X, Y)."),
            ElementBuilder::Materialized(rel(3)),
            &[],
        );
        assert!(
            c.with_element(a, |_| ()).is_some(),
            "pinned element survived the storm"
        );
        drop(guard);
        assert_eq!(c.with_element(a, |e| e.pin_count), Some(0));
        // Gone elements cannot be pinned.
        assert!(c.try_pin(9999).is_none());
    }

    #[test]
    fn used_bytes_matches_reconciled_sum() {
        let c = SharedCache::new(usize::MAX, 4, metrics());
        for rel_name in ["b1", "b2", "b3"] {
            let d = def(&format!("v(X, Y) :- {rel_name}(X, Y)."));
            c.insert_with_aliases(d, ElementBuilder::Materialized(rel(4)), &[]);
        }
        let before = c.used_bytes();
        assert_eq!(c.reconcile_all(), 0, "no evictions under MAX capacity");
        assert_eq!(c.used_bytes(), before, "accounting is already exact");
    }
}
