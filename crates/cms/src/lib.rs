//! # braid-cms
//!
//! BrAID's **Cache Management System (CMS)** — the interface subsystem
//! that bridges the inference engine and the unmodified remote DBMS.
//!
//! "Functionally, the CMS is a main memory relational database management
//! system where the database \[is\] referred to as the cache. The cache
//! consists of relations which are typically views over the remote
//! database as defined by CAQL queries. ... The CMS is functionally more
//! powerful than a traditional DBMS. It employs a subsumption algorithm to
//! find all relevant data in the cache for a given CAQL query. To retrieve
//! data from the remote database, it performs query translation to \[the\]
//! data manipulation language (DML) of the remote DBMS" (Sheth & O'Hare,
//! ICDE 1991, §3).
//!
//! The module layout mirrors Figure 5 ("Organization of the CMS"):
//!
//! | Figure 5 box            | module        |
//! |-------------------------|---------------|
//! | Query Planner/Optimizer | [`planner`]   |
//! | Advice Manager          | [`advice_mgr`]|
//! | Execution Monitor       | [`monitor`]   |
//! | Remote DBMS Interface   | [`rdi`]       |
//! | Cache Manager (+ Query Processor) | [`cache`], [`element`] |
//! | cache model             | [`model`]     |
//!
//! plus [`config`] (the experiment switchboard for every technique in the
//! paper's Figure 2), [`stream`] (the tuple-at-a-time answer streams
//! handed to the IE) and [`metrics`] (workstation-side cost accounting).

pub mod advice_mgr;
pub mod cache;
pub mod caql_exec;
pub mod cms;
pub mod config;
pub mod element;
pub mod error;
pub mod flight;
pub mod metrics;
pub mod model;
pub mod monitor;
pub mod planner;
pub mod rdi;
pub mod resilience;
pub mod sched;
pub mod shared;
pub mod stream;

pub use cache::CacheRead;
pub use cms::Cms;
pub use config::CmsConfig;
pub use element::{CacheElement, ElemId, Repr};
pub use error::{CmsError, Result};
pub use flight::{SingleFlight, Subscribe, Waker};
pub use metrics::{CmsMetrics, CmsMetricsSnapshot};
pub use monitor::{CoopCtx, RemoteFlight};
pub use planner::{PartSource, Plan, PlanPart};
pub use resilience::{Resilience, ResilienceConfig};
pub use sched::{PoolConfig, PoolSnapshot, Step, Task, TaskId, WorkerPool};
pub use shared::{PinGuard, SharedCache};
pub use stream::{AnswerStream, Completeness};

// The structured-tracing subsystem the CMS is instrumented with, re-exported
// so downstream crates (IE, core) share one span tree without a direct
// `braid-trace` dependency.
pub use braid_trace as trace;
