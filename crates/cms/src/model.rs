//! The cache model: meta-information about the cache.
//!
//! "The CMS controls the cache and the cache model (i.e., meta-information
//! about the cache)" (§3). "The cache model contains information on the
//! cache elements. It is a relation of type (E_id, E_def, ....)" (§5.3.2)
//! — and since the IE "can access cache model information from the CMS"
//! (§3), the model is exported as an ordinary relation.

use crate::element::{CacheElement, Repr};
use braid_relational::{Column, Relation, Schema, Tuple, Value, ValueType};

/// One row of the cache model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRow {
    /// `E_id`.
    pub id: u64,
    /// `E_def` — printed view definition.
    pub def: String,
    /// Representation kind: `"extension"`, `"generator"`, `"both"` or
    /// `"columnar"`.
    pub repr: &'static str,
    /// Cardinality when materialized.
    pub cardinality: Option<usize>,
    /// Approximate bytes held.
    pub bytes: usize,
    /// Derivation hits served.
    pub hits: u64,
    /// Logical time of last use.
    pub last_used: u64,
    /// Advice-pinned against replacement?
    pub pinned: bool,
}

impl ModelRow {
    /// Summarize an element.
    pub fn of(e: &CacheElement) -> ModelRow {
        ModelRow {
            id: e.id,
            def: e.def.to_string(),
            repr: match &e.repr {
                Repr::Extension(_) => "extension",
                Repr::Generator(_) => "generator",
                Repr::Both { .. } => "both",
                Repr::Columnar(_) => "columnar",
            },
            cardinality: e.cardinality(),
            bytes: e.approx_bytes(),
            hits: e.hits,
            last_used: e.last_used,
            pinned: e.pinned,
        }
    }
}

/// The schema of the exported cache-model relation.
pub fn model_schema() -> Schema {
    Schema::new(
        "cache_model",
        vec![
            Column::new("e_id", ValueType::Int),
            Column::new("e_def", ValueType::Str),
            Column::new("repr", ValueType::Str),
            Column::new("cardinality", ValueType::Int),
            Column::new("bytes", ValueType::Int),
            Column::new("hits", ValueType::Int),
            Column::new("last_used", ValueType::Int),
            Column::new("pinned", ValueType::Bool),
        ],
    )
    .expect("static schema is valid")
}

/// Export rows as a relation the IE can query.
pub fn as_relation<'a>(rows: impl Iterator<Item = &'a ModelRow>) -> Relation {
    let mut rel = Relation::new(model_schema());
    for r in rows {
        let t = Tuple::new(vec![
            Value::Int(r.id as i64),
            Value::str(&r.def),
            Value::str(r.repr),
            r.cardinality
                .map(|c| Value::Int(c as i64))
                .unwrap_or(Value::Null),
            Value::Int(r.bytes as i64),
            Value::Int(r.hits as i64),
            Value::Int(r.last_used as i64),
            Value::Bool(r.pinned),
        ]);
        rel.insert(t).expect("model schema arity matches");
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_caql::parse_rule;
    use braid_subsume::ViewDef;

    #[test]
    fn model_row_and_relation_export() {
        let def = ViewDef::new(parse_rule("e(X, Y) :- b(X, Y).").unwrap()).unwrap();
        let rel = Relation::from_tuples(
            Schema::of_strs("e", &["x", "y"]),
            vec![braid_relational::tuple!["a", "b"]],
        )
        .unwrap();
        let e = CacheElement::materialized(7, def, rel, 3);
        let row = ModelRow::of(&e);
        assert_eq!(row.id, 7);
        assert_eq!(row.repr, "extension");
        assert_eq!(row.cardinality, Some(1));
        let exported = as_relation([row].iter());
        assert_eq!(exported.len(), 1);
        assert_eq!(exported.schema().arity(), 8);
    }
}
