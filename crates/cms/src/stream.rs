//! Answer streams: tuple-at-a-time delivery to the inference engine.
//!
//! "The CMS returns the result for the query using a stream" (§3). An
//! eager stream iterates a materialized result; a lazy stream pulls from a
//! running generator, producing "a single solution on demand whenever
//! possible (i.e., when a query can be solved using only cached data)"
//! (§5.5).

use braid_relational::{RunningGenerator, Schema, Tuple, TupleStream};
use std::collections::VecDeque;

enum Inner {
    Eager(VecDeque<Tuple>),
    Lazy(Box<RunningGenerator>),
}

/// A stream of answer tuples handed to the IE.
pub struct AnswerStream {
    schema: Schema,
    inner: Inner,
    delivered: usize,
    lazy: bool,
}

impl AnswerStream {
    /// An eager stream over a computed result.
    pub fn eager(schema: Schema, tuples: Vec<Tuple>) -> AnswerStream {
        AnswerStream {
            schema,
            inner: Inner::Eager(tuples.into()),
            delivered: 0,
            lazy: false,
        }
    }

    /// A lazy stream over a running generator.
    pub fn lazy(generator: RunningGenerator) -> AnswerStream {
        let schema = generator.schema().clone();
        AnswerStream {
            schema,
            inner: Inner::Lazy(Box::new(generator)),
            delivered: 0,
            lazy: true,
        }
    }

    /// Schema of the answers.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Was this answer produced lazily?
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// Tuples delivered so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Pull the next answer (the IE's tuple-at-a-time interface).
    pub fn next_tuple(&mut self) -> Option<Tuple> {
        let t = match &mut self.inner {
            Inner::Eager(q) => q.pop_front(),
            Inner::Lazy(g) => g.next_tuple(),
        };
        if t.is_some() {
            self.delivered += 1;
        }
        t
    }

    /// Drain everything (set-at-a-time consumers — compiled IEs).
    pub fn drain(mut self) -> Vec<Tuple> {
        let mut out = Vec::new();
        while let Some(t) = self.next_tuple() {
            out.push(t);
        }
        out
    }
}

impl Iterator for AnswerStream {
    type Item = Tuple;
    fn next(&mut self) -> Option<Tuple> {
        self.next_tuple()
    }
}

impl std::fmt::Debug for AnswerStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnswerStream")
            .field("schema", &self.schema.to_string())
            .field("lazy", &self.lazy)
            .field("delivered", &self.delivered)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_relational::{tuple, Generator, Relation};
    use std::sync::Arc;

    #[test]
    fn eager_stream_counts_deliveries() {
        let mut s =
            AnswerStream::eager(Schema::of_strs("r", &["x"]), vec![tuple!["a"], tuple!["b"]]);
        assert!(!s.is_lazy());
        assert_eq!(s.next_tuple(), Some(tuple!["a"]));
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.by_ref().count(), 1);
    }

    #[test]
    fn lazy_stream_pulls_from_generator() {
        let rel = Relation::from_tuples(
            Schema::of_strs("r", &["x"]),
            vec![tuple!["a"], tuple!["b"], tuple!["c"]],
        )
        .unwrap();
        let g = Generator::scan(Arc::new(rel));
        let mut s = AnswerStream::lazy(g.open());
        assert!(s.is_lazy());
        assert!(s.next_tuple().is_some());
        assert_eq!(s.delivered(), 1);
        let rest = s.drain();
        assert_eq!(rest.len(), 2);
    }
}
