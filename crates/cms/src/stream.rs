//! Answer streams: tuple-at-a-time delivery to the inference engine.
//!
//! "The CMS returns the result for the query using a stream" (§3). An
//! eager stream iterates a materialized result; a lazy stream pulls from a
//! running generator, producing "a single solution on demand whenever
//! possible (i.e., when a query can be solved using only cached data)"
//! (§5.5).
//!
//! The lazy arm is where the batched executor's output is adapted back to
//! the IE's tuple-at-a-time interface: the underlying
//! [`braid_relational::RunningPlan`] pulls whole `TupleBatch`es from its
//! operator tree and hands them out one tuple per [`TupleStream::next_tuple`]
//! call, so the IE sees single-tuple demand while the executor amortizes
//! per-operator overhead across the batch.

use braid_relational::{RunningGenerator, Schema, Tuple, TupleStream};
use std::collections::VecDeque;

/// How complete an answer stream is with respect to the query's true
/// result. Exact is the normal case; Partial arises only in degraded
/// mode, when the remote DBMS was unreachable and subsumption could
/// *not* prove the cache covers the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completeness {
    /// Every answer tuple is present: either the remote cooperated, or
    /// subsumption proved the cached data fully covers the query.
    Exact,
    /// The remote was unreachable and coverage could not be proven; the
    /// stream holds only the tuples provable from cache. Each listed
    /// subquery names a plan part that would have needed the remote.
    Partial {
        /// Human-readable descriptions of the unanswerable plan parts.
        missing_subqueries: Vec<String>,
    },
}

impl Completeness {
    /// Is the answer provably complete?
    pub fn is_exact(&self) -> bool {
        matches!(self, Completeness::Exact)
    }
}

enum Inner {
    Eager(VecDeque<Tuple>),
    Lazy(Box<RunningGenerator>),
}

/// A stream of answer tuples handed to the IE.
pub struct AnswerStream {
    schema: Schema,
    inner: Inner,
    delivered: usize,
    lazy: bool,
    completeness: Completeness,
    // Session pins on the cache elements a lazy generator reads from.
    // Held only for their Drop impl: while the stream is open, concurrent
    // sessions cannot evict those elements out from under it.
    _pins: Vec<crate::shared::PinGuard>,
}

impl AnswerStream {
    /// An eager stream over a computed result.
    pub fn eager(schema: Schema, tuples: Vec<Tuple>) -> AnswerStream {
        AnswerStream {
            schema,
            inner: Inner::Eager(tuples.into()),
            delivered: 0,
            lazy: false,
            completeness: Completeness::Exact,
            _pins: Vec::new(),
        }
    }

    /// A lazy stream over a running generator.
    pub fn lazy(generator: RunningGenerator) -> AnswerStream {
        let schema = generator.schema().clone();
        AnswerStream {
            schema,
            inner: Inner::Lazy(Box::new(generator)),
            delivered: 0,
            lazy: true,
            completeness: Completeness::Exact,
            _pins: Vec::new(),
        }
    }

    /// A lazy stream holding session pins on the cache elements it reads
    /// from, released when the stream drops.
    pub fn lazy_pinned(
        generator: RunningGenerator,
        pins: Vec<crate::shared::PinGuard>,
    ) -> AnswerStream {
        let mut s = AnswerStream::lazy(generator);
        s._pins = pins;
        s
    }

    /// Tag the stream's completeness (degraded-mode answers).
    #[must_use]
    pub fn with_completeness(mut self, completeness: Completeness) -> AnswerStream {
        self.completeness = completeness;
        self
    }

    /// How complete this answer is (see [`Completeness`]).
    pub fn completeness(&self) -> &Completeness {
        &self.completeness
    }

    /// Shorthand: is this answer provably complete?
    pub fn is_exact(&self) -> bool {
        self.completeness.is_exact()
    }

    /// Schema of the answers.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Was this answer produced lazily?
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// Tuples delivered so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Pull the next answer (the IE's tuple-at-a-time interface).
    pub fn next_tuple(&mut self) -> Option<Tuple> {
        let t = match &mut self.inner {
            Inner::Eager(q) => q.pop_front(),
            Inner::Lazy(g) => g.next_tuple(),
        };
        if t.is_some() {
            self.delivered += 1;
        }
        t
    }

    /// Drain everything (set-at-a-time consumers — compiled IEs).
    pub fn drain(mut self) -> Vec<Tuple> {
        let mut out = Vec::new();
        while let Some(t) = self.next_tuple() {
            out.push(t);
        }
        out
    }
}

impl Iterator for AnswerStream {
    type Item = Tuple;
    fn next(&mut self) -> Option<Tuple> {
        self.next_tuple()
    }
}

impl std::fmt::Debug for AnswerStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnswerStream")
            .field("schema", &self.schema.to_string())
            .field("lazy", &self.lazy)
            .field("delivered", &self.delivered)
            .field("completeness", &self.completeness)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_relational::{tuple, Generator, Relation};
    use std::sync::Arc;

    #[test]
    fn eager_stream_counts_deliveries() {
        let mut s =
            AnswerStream::eager(Schema::of_strs("r", &["x"]), vec![tuple!["a"], tuple!["b"]]);
        assert!(!s.is_lazy());
        assert_eq!(s.next_tuple(), Some(tuple!["a"]));
        assert_eq!(s.delivered(), 1);
        assert_eq!(s.by_ref().count(), 1);
    }

    #[test]
    fn streams_default_to_exact_and_can_be_tagged_partial() {
        let s = AnswerStream::eager(Schema::of_strs("r", &["x"]), vec![]);
        assert!(s.is_exact());
        let s = s.with_completeness(Completeness::Partial {
            missing_subqueries: vec!["b2(X, Z)".into()],
        });
        assert!(!s.is_exact());
        match s.completeness() {
            Completeness::Partial { missing_subqueries } => {
                assert_eq!(missing_subqueries, &["b2(X, Z)".to_string()]);
            }
            Completeness::Exact => panic!("expected partial"),
        }
    }

    #[test]
    fn lazy_stream_pulls_from_generator() {
        let rel = Relation::from_tuples(
            Schema::of_strs("r", &["x"]),
            vec![tuple!["a"], tuple!["b"], tuple!["c"]],
        )
        .unwrap();
        let g = Generator::scan(Arc::new(rel));
        let mut s = AnswerStream::lazy(g.open());
        assert!(s.is_lazy());
        assert!(s.next_tuple().is_some());
        assert_eq!(s.delivered(), 1);
        let rest = s.drain();
        assert_eq!(rest.len(), 2);
    }
}
