//! Error type for the CMS.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CmsError>;

/// Errors raised by the Cache Management System.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmsError {
    /// The query referenced a view name with no known specification and
    /// carried no body to evaluate.
    UnknownView(String),
    /// The query referenced a base relation absent from the remote schema.
    UnknownRelation(String),
    /// The query is unsafe (a head variable is not range restricted).
    UnsafeQuery(String),
    /// The query falls outside what the CMS can plan (e.g. an unsupported
    /// literal form in a remote-only part).
    Unplannable(String),
    /// An error from the remote DBMS.
    Remote(String),
    /// An error from the local relational engine.
    Engine(String),
}

impl fmt::Display for CmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmsError::UnknownView(v) => write!(f, "unknown view `{v}` (no advice, empty body)"),
            CmsError::UnknownRelation(r) => {
                write!(f, "relation `{r}` is not in the remote schema")
            }
            CmsError::UnsafeQuery(q) => write!(f, "unsafe query: {q}"),
            CmsError::Unplannable(m) => write!(f, "cannot plan query: {m}"),
            CmsError::Remote(m) => write!(f, "remote DBMS error: {m}"),
            CmsError::Engine(m) => write!(f, "engine error: {m}"),
        }
    }
}

impl std::error::Error for CmsError {}

impl From<braid_remote::RemoteError> for CmsError {
    fn from(e: braid_remote::RemoteError) -> Self {
        CmsError::Remote(e.to_string())
    }
}

impl From<braid_relational::RelationalError> for CmsError {
    fn from(e: braid_relational::RelationalError) -> Self {
        CmsError::Engine(e.to_string())
    }
}
