//! Error type for the CMS.

use braid_remote::RemoteError;
use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CmsError>;

/// Errors raised by the Cache Management System.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmsError {
    /// The query referenced a view name with no known specification and
    /// carried no body to evaluate.
    UnknownView(String),
    /// The query referenced a base relation absent from the remote schema.
    UnknownRelation(String),
    /// The query is unsafe (a head variable is not range restricted).
    UnsafeQuery(String),
    /// The query falls outside what the CMS can plan (e.g. an unsupported
    /// literal form in a remote-only part).
    Unplannable(String),
    /// An error from the remote DBMS, preserved structurally so callers
    /// can distinguish transient transport faults from hard errors
    /// (available through [`std::error::Error::source`] as well).
    Remote(RemoteError),
    /// A connection-level fault from the network transport (TCP path):
    /// the socket-level [`std::io::ErrorKind`] is lifted out of the
    /// underlying [`RemoteError::Io`] so callers can classify without
    /// digging, while the full remote error stays reachable through
    /// [`std::error::Error::source`].
    Transport {
        /// Socket-level failure class (reset, timeout, refused, ...).
        kind: std::io::ErrorKind,
        /// The underlying remote error, boxed to keep the variant small.
        source: Box<RemoteError>,
    },
    /// A parallel fetch worker panicked; the panic payload is captured
    /// as text. Distinct from [`CmsError::Remote`]: the remote side did
    /// nothing wrong, the workstation-side worker died.
    WorkerPanic(String),
    /// All retries were exhausted (or the circuit breaker rejected the
    /// attempt) and degraded mode was off; the underlying final error
    /// is preserved.
    Exhausted {
        /// Attempts actually made against the remote (0 if the breaker
        /// rejected every one).
        attempts: u32,
        /// The error from the last attempt.
        last: Box<CmsError>,
    },
    /// The circuit breaker is open: the remote is presumed down and the
    /// attempt was rejected without contacting it.
    CircuitOpen,
    /// A single-flight joiner waited longer than the configured deadline
    /// for its leader to publish — the leader is presumed wedged. The
    /// stale flight entry has been evicted; a retry starts a fresh
    /// flight, so this is transient.
    FlightStranded {
        /// How long the joiner waited before giving up, in milliseconds.
        waited_ms: u64,
    },
    /// Cooperative-scheduler control flow, not a real failure: the
    /// session joined an in-flight fetch and must park until its waker
    /// fires, then re-run the query (the joined result is stashed and
    /// consumed on retry). Never `is_transient` — degraded mode must not
    /// swallow it — and never shown to end users; the worker pool
    /// intercepts it before results surface.
    WouldBlock,
    /// An error from the local relational engine.
    Engine(String),
}

impl CmsError {
    /// Is this a failure a retry or degraded answer could address —
    /// i.e. a transport-level remote fault rather than a planning or
    /// evaluation bug?
    pub fn is_transient(&self) -> bool {
        match self {
            CmsError::Remote(e) => e.is_transient(),
            CmsError::Transport { kind, .. } => braid_remote::transient_io_kind(*kind),
            CmsError::CircuitOpen => true,
            CmsError::FlightStranded { .. } => true,
            CmsError::Exhausted { last, .. } => last.is_transient(),
            _ => false,
        }
    }

    /// Is this the cooperative scheduler's park signal? (Checked by the
    /// worker pool and by call sites that would otherwise swallow
    /// evaluation errors, e.g. speculative generalizations and
    /// prefetches, which must let the park propagate.)
    pub fn is_would_block(&self) -> bool {
        matches!(self, CmsError::WouldBlock)
    }
}

impl fmt::Display for CmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmsError::UnknownView(v) => write!(f, "unknown view `{v}` (no advice, empty body)"),
            CmsError::UnknownRelation(r) => {
                write!(f, "relation `{r}` is not in the remote schema")
            }
            CmsError::UnsafeQuery(q) => write!(f, "unsafe query: {q}"),
            CmsError::Unplannable(m) => write!(f, "cannot plan query: {m}"),
            CmsError::Remote(e) => write!(f, "remote DBMS error: {e}"),
            CmsError::Transport { kind, source } => {
                write!(f, "transport fault ({kind:?}): {source}")
            }
            CmsError::WorkerPanic(m) => write!(f, "remote fetch worker panicked: {m}"),
            CmsError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
            CmsError::CircuitOpen => write!(f, "circuit breaker open: remote presumed down"),
            CmsError::FlightStranded { waited_ms } => {
                write!(
                    f,
                    "single-flight join abandoned after {waited_ms}ms: leader presumed wedged"
                )
            }
            CmsError::WouldBlock => {
                write!(f, "session would block (cooperative scheduler internal)")
            }
            CmsError::Engine(m) => write!(f, "engine error: {m}"),
        }
    }
}

impl std::error::Error for CmsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CmsError::Remote(e) => Some(e),
            CmsError::Transport { source, .. } => Some(source.as_ref()),
            CmsError::Exhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<RemoteError> for CmsError {
    fn from(e: RemoteError) -> Self {
        // Socket-level faults get their own variant so the io::ErrorKind
        // is one match arm away; everything else stays `Remote`.
        if let RemoteError::Io { kind, .. } = &e {
            let kind = *kind;
            return CmsError::Transport {
                kind,
                source: Box::new(e),
            };
        }
        CmsError::Remote(e)
    }
}

impl From<braid_relational::RelationalError> for CmsError {
    fn from(e: braid_relational::RelationalError) -> Self {
        CmsError::Engine(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn remote_errors_keep_structure_and_source() {
        let e = CmsError::from(RemoteError::Disconnected {
            tuples_delivered: 7,
        });
        assert_eq!(
            e,
            CmsError::Remote(RemoteError::Disconnected {
                tuples_delivered: 7
            })
        );
        let src = e.source().expect("remote source preserved");
        assert_eq!(
            src.downcast_ref::<RemoteError>(),
            Some(&RemoteError::Disconnected {
                tuples_delivered: 7
            })
        );
    }

    #[test]
    fn exhausted_chains_to_final_error() {
        let e = CmsError::Exhausted {
            attempts: 3,
            last: Box::new(CmsError::Remote(RemoteError::Timeout)),
        };
        assert!(e.is_transient());
        let src = e.source().expect("exhausted has a source");
        let inner = src.downcast_ref::<CmsError>().unwrap();
        assert_eq!(
            inner.source().unwrap().to_string(),
            "remote request timed out"
        );
    }

    #[test]
    fn transience_classification() {
        assert!(CmsError::Remote(RemoteError::Unavailable).is_transient());
        assert!(CmsError::CircuitOpen.is_transient());
        assert!(!CmsError::Remote(RemoteError::UnknownRelation("x".into())).is_transient());
        assert!(!CmsError::UnsafeQuery("q".into()).is_transient());
        assert!(!CmsError::WorkerPanic("boom".into()).is_transient());
        assert!(
            CmsError::FlightStranded { waited_ms: 50 }.is_transient(),
            "a fresh flight can be led on retry"
        );
        assert!(
            !CmsError::WouldBlock.is_transient(),
            "degraded mode must not swallow the park signal"
        );
        assert!(CmsError::WouldBlock.is_would_block());
        assert!(!CmsError::CircuitOpen.is_would_block());
    }

    #[test]
    fn socket_faults_lift_into_transport_variant() {
        use std::io::ErrorKind;
        let e = CmsError::from(RemoteError::Io {
            kind: ErrorKind::ConnectionReset,
            detail: "peer reset".into(),
        });
        let CmsError::Transport { kind, ref source } = e else {
            panic!("expected Transport, got {e:?}");
        };
        assert_eq!(kind, ErrorKind::ConnectionReset);
        assert!(e.is_transient(), "connection reset is retryable");
        assert!(matches!(**source, RemoteError::Io { .. }));
        // The io chain survives through source().
        let src = e.source().expect("transport has a source");
        assert!(src.to_string().contains("peer reset"), "{src}");
    }

    #[test]
    fn transport_transience_follows_error_kind() {
        use std::io::ErrorKind;
        let transient = CmsError::from(RemoteError::Io {
            kind: ErrorKind::TimedOut,
            detail: String::new(),
        });
        assert!(transient.is_transient());
        let permanent = CmsError::from(RemoteError::Io {
            kind: ErrorKind::InvalidData,
            detail: "corrupt frame".into(),
        });
        assert!(
            matches!(permanent, CmsError::Transport { .. }) && !permanent.is_transient(),
            "corrupt frames must not be retried: {permanent:?}"
        );
    }
}
