//! Scenario execution: a step-based scheduler over [`BraidSession`]s,
//! with the model-based differential oracle checked after every solve
//! and cross-cutting invariants checked at the end of the run.
//!
//! Determinism rules (see DESIGN.md §10): sessions are driven one step
//! at a time on the *calling* thread in the order fixed by
//! `scenario.schedule`, and the CMS runs with
//! [`CmsConfig::deterministic`] (serial remote parts). The remote
//! request clock then ticks in program order, every seeded `FaultPlan`
//! decision is a pure function of the scenario, and a failing seed
//! replays exactly. [`run_scenario_threaded`] trades that determinism
//! for real-thread schedule diversity (the soak lane runs both).

use crate::model::RefModel;
use crate::scenario::SimScenario;
use braid::{
    BraidConfig, BraidSession, BraidSystem, CheckedSolutions, CmsConfig, Completeness, PoolConfig,
    RemoteDbms, RemoteTcpServer, RingSink, SessionTask, TcpClientConfig, TcpServerConfig,
    TransportConfig, Tuple, WorkerPool,
};
use braid_net::{FaultProxy, ProxyPlan};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// A deliberately-injected defect, used by meta-tests to prove the
/// oracle catches real bugs and the shrinker minimizes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimBug {
    /// No injected defect (normal operation).
    #[default]
    None,
    /// Drop the last tuple from every `every`-th non-empty answer —
    /// the observable signature of a planner that skipped one remainder
    /// subquery's contribution.
    DropLastTuple {
        /// Sabotage every n-th non-empty answer (1 ⇒ all of them).
        every: usize,
    },
}

/// Runner options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Injected defect (meta-testing only).
    pub bug: SimBug,
    /// Ring capacity for the span log (events beyond it disable the
    /// span-forest check rather than failing it).
    pub trace_events: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            bug: SimBug::None,
            trace_events: 1 << 16,
        }
    }
}

/// What went wrong, attributed to the step that exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// An `Exact` answer differed from the reference model.
    AnswerMismatch,
    /// A `Partial` answer contained tuples the model does not derive.
    PartialNotSubset,
    /// A `Partial` answer named no missing subqueries (or appeared in a
    /// fault-free scenario).
    CompletenessContract,
    /// A solve errored although no faults were injected.
    UnexpectedError,
    /// A cache element kept a session pin after every stream was dropped.
    PinLeak,
    /// Cache byte accounting drifted, or metrics counters disagree with
    /// each other (tuple/fault conservation).
    MetricsConservation,
    /// The drained trace log is not a well-nested span forest.
    SpanForest,
}

/// One oracle violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Scheduler step (usize::MAX for end-of-run invariants).
    pub step: usize,
    /// Session that solved the offending query (usize::MAX at end).
    pub session: usize,
    /// The query text ("<end-of-run>" for invariants).
    pub query: String,
    /// What property failed.
    pub kind: ViolationKind,
    /// Human-readable specifics.
    pub detail: String,
}

/// Outcome of one scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// Solves executed (= schedule length).
    pub solves: usize,
    /// Answers tagged `Exact`.
    pub exact: usize,
    /// Answers tagged `Partial`.
    pub partial: usize,
    /// Typed errors tolerated because faults were active.
    pub tolerated_errors: usize,
    /// Answers with at least one tuple (meta-test support: a scenario
    /// with none gives an injected answer-dropping bug nothing to bite).
    pub nonempty_answers: usize,
    /// FNV-1a digest over every (query, completeness, answers) triple in
    /// step order — two runs of the same scenario must agree bit-for-bit.
    pub digest: u64,
    /// Everything the oracle caught (empty ⇒ the scenario passed).
    pub violations: Vec<Violation>,
}

impl SimReport {
    /// Did the scenario pass every check?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// FNV-1a offset basis every simulation digest chain starts from.
pub const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= u64::from(b);
        *digest = digest.wrapping_mul(0x100_0000_01b3);
    }
}

/// Fold one answered query into a digest chain: FNV-1a over the query
/// text, the completeness verdict (with any missing subqueries), and
/// every solution tuple in answer order. Start chains from
/// [`DIGEST_SEED`]. The load harness reuses this exact shape so a
/// worker process's digest is recomputable from the [`RefModel`].
pub fn digest_answer(digest: &mut u64, query: &str, checked: &CheckedSolutions) {
    fnv1a(digest, query.as_bytes());
    match &checked.completeness {
        Completeness::Exact => fnv1a(digest, b"|exact"),
        Completeness::Partial { missing_subqueries } => {
            fnv1a(digest, b"|partial");
            for m in missing_subqueries {
                fnv1a(digest, m.as_bytes());
            }
        }
    }
    for t in &checked.solutions {
        fnv1a(digest, format!("{t:?}").as_bytes());
    }
}

/// Build the system under test exactly as the scenario prescribes.
/// Public so differential tests can drive the *same* configuration
/// through other entry points (`solve_explained`, lazy streams) and
/// compare against the step scheduler's answers.
///
/// The system-wide trace sink stays no-op: span ids are allocated per
/// session tracer, so each session gets its *own* [`RingSink`] (via
/// `attach_session_sink`) and its forest is verified independently.
pub fn build_system(sc: &SimScenario) -> BraidSystem {
    build_system_with_transport(sc, TransportConfig::InProcess)
}

/// [`build_system`] with an explicit remote transport: the socket soak
/// lane points this at a [`RemoteTcpServer`] (through a [`FaultProxy`]);
/// every other scenario knob is applied unchanged.
pub fn build_system_with_transport(sc: &SimScenario, transport: TransportConfig) -> BraidSystem {
    let mut cms = CmsConfig::braid()
        .with_shards(sc.shards as usize)
        .with_batch_size(sc.batch_size as usize)
        .with_lazy(sc.lazy)
        .with_prefetching(sc.prefetch)
        .with_generalization(sc.generalization)
        .with_subsumption(sc.subsumption)
        .with_columnar(sc.columnar)
        .with_transport(transport)
        .deterministic();
    if let Some(cap) = sc.capacity_bytes {
        cms = cms.with_capacity(cap as usize);
    }
    let mut config = BraidConfig::with_cms(cms);
    if let Some(f) = &sc.faults {
        config = config.with_faults(f.plan());
    }
    BraidSystem::new(sc.dataset.catalog(), sc.dataset.knowledge_base(), config)
}

/// Check one solve's answer against the model; returns the violation, if
/// any. `bug_state` counts non-empty answers for [`SimBug`] pacing.
#[allow(clippy::too_many_arguments)]
fn check_answer(
    model: &RefModel,
    sc: &SimScenario,
    step: usize,
    session: usize,
    query: &str,
    checked: &CheckedSolutions,
    violations: &mut Vec<Violation>,
) {
    let expected = match model.solve_text(query) {
        Ok(t) => t,
        Err(e) => {
            violations.push(Violation {
                step,
                session,
                query: query.to_string(),
                kind: ViolationKind::AnswerMismatch,
                detail: format!("reference model failed: {e}"),
            });
            return;
        }
    };
    match &checked.completeness {
        Completeness::Exact => {
            if checked.solutions != expected {
                violations.push(Violation {
                    step,
                    session,
                    query: query.to_string(),
                    kind: ViolationKind::AnswerMismatch,
                    detail: diff_detail(&checked.solutions, &expected),
                });
            }
        }
        Completeness::Partial { missing_subqueries } => {
            if !sc.faults_active() {
                violations.push(Violation {
                    step,
                    session,
                    query: query.to_string(),
                    kind: ViolationKind::CompletenessContract,
                    detail: "answer tagged Partial although no faults are injected".into(),
                });
            }
            if missing_subqueries.is_empty() {
                violations.push(Violation {
                    step,
                    session,
                    query: query.to_string(),
                    kind: ViolationKind::CompletenessContract,
                    detail: "Partial answer names no missing subqueries".into(),
                });
            }
            let full: BTreeSet<&Tuple> = expected.iter().collect();
            if let Some(extra) = checked.solutions.iter().find(|t| !full.contains(t)) {
                violations.push(Violation {
                    step,
                    session,
                    query: query.to_string(),
                    kind: ViolationKind::PartialNotSubset,
                    detail: format!(
                        "partial answer contains {extra:?} which the model does not derive"
                    ),
                });
            }
        }
    }
}

fn diff_detail(got: &[Tuple], want: &[Tuple]) -> String {
    let got_set: BTreeSet<&Tuple> = got.iter().collect();
    let want_set: BTreeSet<&Tuple> = want.iter().collect();
    let missing: Vec<_> = want_set.difference(&got_set).take(3).collect();
    let extra: Vec<_> = got_set.difference(&want_set).take(3).collect();
    format!(
        "system returned {} tuples, model {}; missing e.g. {missing:?}; extra e.g. {extra:?}",
        got.len(),
        want.len()
    )
}

/// End-of-run invariants: pin balance, cache byte accounting, metric
/// conservation, span-forest well-formedness. `sessions` must already be
/// dropped (their streams release pins on drop).
fn check_invariants(
    sc: &SimScenario,
    system: &BraidSystem,
    rings: &[Arc<RingSink>],
    tolerated_errors: usize,
    violations: &mut Vec<Violation>,
) {
    let end = |kind: ViolationKind, detail: String| Violation {
        step: usize::MAX,
        session: usize::MAX,
        query: "<end-of-run>".into(),
        kind,
        detail,
    };

    // Pin balance: every AnswerStream is gone, so no session pin may
    // survive.
    let leaked = system.cms().shared_cache().leaked_session_pins();
    if !leaked.is_empty() {
        violations.push(end(
            ViolationKind::PinLeak,
            format!("elements {leaked:?} still session-pinned after all streams dropped"),
        ));
    }

    // Cache byte accounting must be exact: recomputing it from scratch
    // must neither change the footprint nor trigger evictions.
    let drift = system.cms().shared_cache().reconcile_all();
    if drift != 0 {
        violations.push(end(
            ViolationKind::MetricsConservation,
            format!("byte-accounting reconciliation evicted {drift} elements"),
        ));
    }

    // Metric conservation across the remote/cache/answer pipeline.
    let m = system.metrics();
    if m.remote.faults_injected
        != m.remote.unavailable_faults
            + m.remote.timeout_faults
            + m.remote.disconnect_faults
            + m.remote.latency_spike_faults
    {
        violations.push(end(
            ViolationKind::MetricsConservation,
            format!(
                "faults_injected {} != sum of per-kind fault counters",
                m.remote.faults_injected
            ),
        ));
    }
    if m.remote.wasted_tuples > m.remote.tuples_shipped {
        violations.push(end(
            ViolationKind::MetricsConservation,
            format!(
                "wasted_tuples {} exceeds tuples_shipped {}",
                m.remote.wasted_tuples, m.remote.tuples_shipped
            ),
        ));
    }
    if m.cms.full_cache_answers + m.cms.partial_cache_answers > m.cms.queries {
        violations.push(end(
            ViolationKind::MetricsConservation,
            "cache-answer counters exceed total CMS queries".into(),
        ));
    }
    let lat = m.cms.query_latency_us.count();
    if tolerated_errors == 0 && lat != m.cms.queries {
        violations.push(end(
            ViolationKind::MetricsConservation,
            format!(
                "query_latency_us count {lat} != cms queries {}",
                m.cms.queries
            ),
        ));
    }
    if !sc.faults_active() {
        if m.remote.faults_injected != 0 {
            violations.push(end(
                ViolationKind::MetricsConservation,
                format!(
                    "{} faults injected in a fault-free scenario",
                    m.remote.faults_injected
                ),
            ));
        }
        if m.cms.degraded_answers != 0 {
            violations.push(end(
                ViolationKind::MetricsConservation,
                format!(
                    "{} degraded answers in a fault-free scenario",
                    m.cms.degraded_answers
                ),
            ));
        }
    }

    // Span-forest well-formedness (reused from braid-trace), checked per
    // session — span ids are allocated by the session's tracer, so each
    // session's ring is its own forest. Only meaningful when the ring
    // kept every event.
    for (si, ring) in rings.iter().enumerate() {
        if ring.dropped() == 0 {
            let events = ring.snapshot();
            if let Err(e) = braid_trace::verify_span_forest(&events) {
                violations.push(end(ViolationKind::SpanForest, format!("session {si}: {e}")));
            }
        }
    }
}

/// Run a scenario deterministically and check every oracle.
///
/// # Errors
/// Harness-level failures only (invalid scenario, model construction):
/// oracle *violations* are reported in the returned [`SimReport`], not
/// as errors.
pub fn run_scenario(sc: &SimScenario, opts: &SimOptions) -> Result<SimReport, String> {
    sc.validate()?;
    let model = RefModel::new(&sc.dataset.catalog(), &sc.dataset.knowledge_base())?;
    let system = build_system(sc);

    let rings: Vec<Arc<RingSink>> = sc
        .sessions
        .iter()
        .map(|_| Arc::new(RingSink::new(opts.trace_events)))
        .collect();
    let mut sessions: Vec<BraidSession<'_>> = sc
        .sessions
        .iter()
        .zip(&rings)
        .map(|(_, ring)| {
            let mut sess = system.session();
            sess.cms_mut().attach_session_sink(Arc::clone(ring) as _);
            sess
        })
        .collect();
    let mut cursors = vec![0usize; sc.sessions.len()];
    let mut violations = Vec::new();
    let mut report = SimReport {
        solves: 0,
        exact: 0,
        partial: 0,
        tolerated_errors: 0,
        nonempty_answers: 0,
        digest: DIGEST_SEED,
        violations: Vec::new(),
    };

    for (step, &s) in sc.schedule.iter().enumerate() {
        let query = &sc.sessions[s][cursors[s]];
        cursors[s] += 1;
        report.solves += 1;
        match sessions[s].solve_checked(query, sc.strategy) {
            Ok(mut checked) => {
                if !checked.solutions.is_empty() {
                    report.nonempty_answers += 1;
                    if let SimBug::DropLastTuple { every } = opts.bug {
                        if every > 0 && report.nonempty_answers.is_multiple_of(every) {
                            checked.solutions.pop();
                        }
                    }
                }
                match checked.completeness {
                    Completeness::Exact => report.exact += 1,
                    Completeness::Partial { .. } => report.partial += 1,
                }
                digest_answer(&mut report.digest, query, &checked);
                check_answer(&model, sc, step, s, query, &checked, &mut violations);
            }
            Err(e) => {
                fnv1a(&mut report.digest, format!("{query}|error").as_bytes());
                if sc.faults_active() {
                    report.tolerated_errors += 1;
                } else {
                    violations.push(Violation {
                        step,
                        session: s,
                        query: query.clone(),
                        kind: ViolationKind::UnexpectedError,
                        detail: format!("solve failed without injected faults: {e}"),
                    });
                }
            }
        }
    }

    drop(sessions);
    check_invariants(
        sc,
        &system,
        &rings,
        report.tolerated_errors,
        &mut violations,
    );
    report.violations = violations;
    Ok(report)
}

/// Run a scenario with each session on its own OS thread, ignoring the
/// step schedule: real-thread schedule diversity over the same shared
/// cache. Answers are still oracle-checked (an `Exact` answer must match
/// the model under *any* interleaving), but the run is not replayable —
/// the soak lane pairs it with the deterministic runner.
///
/// # Errors
/// Harness-level failures only, as for [`run_scenario`].
pub fn run_scenario_threaded(sc: &SimScenario, opts: &SimOptions) -> Result<SimReport, String> {
    sc.validate()?;
    let system = build_system(sc);
    run_threaded_over(&system, sc, opts)
}

/// Drive `sc`'s sessions on OS threads over an already-built system and
/// run every oracle check — the shared body of the threaded and socket
/// soak lanes.
fn run_threaded_over(
    system: &BraidSystem,
    sc: &SimScenario,
    opts: &SimOptions,
) -> Result<SimReport, String> {
    let model = RefModel::new(&sc.dataset.catalog(), &sc.dataset.knowledge_base())?;

    type SolveLog = Vec<(usize, String, Result<CheckedSolutions, String>)>;
    let outcomes: Vec<(SolveLog, Arc<RingSink>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sc
            .sessions
            .iter()
            .enumerate()
            .map(|(si, queries)| {
                scope.spawn(move || {
                    let ring = Arc::new(RingSink::new(opts.trace_events));
                    let mut sess = system.session();
                    sess.cms_mut().attach_session_sink(Arc::clone(&ring) as _);
                    let log = queries
                        .iter()
                        .map(|q| {
                            (
                                si,
                                q.clone(),
                                sess.solve_checked(q, sc.strategy)
                                    .map_err(|e| e.to_string()),
                            )
                        })
                        .collect::<SolveLog>();
                    (log, ring)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread"))
            .collect()
    });
    let (results, rings): (Vec<SolveLog>, Vec<Arc<RingSink>>) = outcomes.into_iter().unzip();

    let mut violations = Vec::new();
    let mut report = SimReport {
        solves: 0,
        exact: 0,
        partial: 0,
        tolerated_errors: 0,
        nonempty_answers: 0,
        digest: 0,
        violations: Vec::new(),
    };
    for log in results {
        for (step, (si, query, outcome)) in log.into_iter().enumerate() {
            report.solves += 1;
            match outcome {
                Ok(checked) => {
                    report.nonempty_answers += usize::from(!checked.solutions.is_empty());
                    match checked.completeness {
                        Completeness::Exact => report.exact += 1,
                        Completeness::Partial { .. } => report.partial += 1,
                    }
                    check_answer(&model, sc, step, si, &query, &checked, &mut violations);
                }
                Err(e) => {
                    if sc.faults_active() {
                        report.tolerated_errors += 1;
                    } else {
                        violations.push(Violation {
                            step,
                            session: si,
                            query,
                            kind: ViolationKind::UnexpectedError,
                            detail: format!("solve failed without injected faults: {e}"),
                        });
                    }
                }
            }
        }
    }

    check_invariants(sc, system, &rings, report.tolerated_errors, &mut violations);
    report.violations = violations;
    Ok(report)
}

/// Worker count for the cooperative lane: the `SIM_WORKERS` env knob,
/// defaulting to 4.
fn sim_workers() -> usize {
    std::env::var("SIM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 1)
        .unwrap_or(4)
}

/// Run a scenario's sessions as [`SessionTask`] state machines on a
/// fixed [`WorkerPool`] (`SIM_WORKERS` threads, default 4) instead of a
/// thread per session — the cooperative lane. Oracle checks are the
/// ones every lane runs; on top of them this lane asserts the
/// scheduler's own conservation laws:
///
/// - no flight left open on the shared single-flight table,
/// - `wakes == sessions_parked` in the CMS metrics (no leaked wakers),
/// - for fault-free scenarios, a session-major answer digest that must
///   match the reference model bit-for-bit — cooperative scheduling may
///   reorder *between* sessions but must not perturb a single session's
///   answers.
///
/// # Errors
/// Harness-level failures only, as for [`run_scenario`].
pub fn run_scenario_coop(sc: &SimScenario, opts: &SimOptions) -> Result<SimReport, String> {
    sc.validate()?;
    let model = RefModel::new(&sc.dataset.catalog(), &sc.dataset.knowledge_base())?;
    let system = build_system(sc);
    let pool = WorkerPool::with_metrics(
        PoolConfig {
            workers: sim_workers(),
            step_budget: 8,
        },
        system.cms().metrics_handle(),
    );

    type SolveLog = Vec<(String, Result<CheckedSolutions, String>)>;
    let mut logs: Vec<Arc<Mutex<SolveLog>>> = Vec::with_capacity(sc.sessions.len());
    let mut rings: Vec<Arc<RingSink>> = Vec::with_capacity(sc.sessions.len());
    for queries in &sc.sessions {
        let ring = Arc::new(RingSink::new(opts.trace_events));
        let log: Arc<Mutex<SolveLog>> = Arc::new(Mutex::new(Vec::new()));
        let mut sess = system.session_owned();
        sess.cms_mut().attach_session_sink(Arc::clone(&ring) as _);
        let (sink, texts) = (Arc::clone(&log), queries.clone());
        pool.spawn(Box::new(SessionTask::new(
            sess,
            queries.clone(),
            sc.strategy,
            move |i, r| {
                sink.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push((texts[i].clone(), r.map_err(|e| e.to_string())));
            },
        )));
        logs.push(log);
        rings.push(ring);
    }
    pool.join();
    let pool_snap = pool.snapshot();
    // Stop the workers before inspecting invariants; finished tasks have
    // already dropped their sessions (and with them any stream pins).
    pool.shutdown();

    let results: Vec<SolveLog> = logs
        .into_iter()
        .map(|l| {
            Arc::try_unwrap(l)
                .expect("pool drained, no task holds the log")
                .into_inner()
                .unwrap_or_else(|p| p.into_inner())
        })
        .collect();

    let mut violations = Vec::new();
    let mut report = SimReport {
        solves: 0,
        exact: 0,
        partial: 0,
        tolerated_errors: 0,
        nonempty_answers: 0,
        digest: DIGEST_SEED,
        violations: Vec::new(),
    };
    // Session-major digest of what the model expects; only compared in
    // fault-free scenarios, where every answer must be Exact.
    let mut expected_digest = report.digest;
    for (si, log) in results.iter().enumerate() {
        if log.len() != sc.sessions[si].len() {
            violations.push(Violation {
                step: usize::MAX,
                session: si,
                query: "<end-of-run>".into(),
                kind: ViolationKind::UnexpectedError,
                detail: format!(
                    "session ran {} of {} queries",
                    log.len(),
                    sc.sessions[si].len()
                ),
            });
        }
        for (step, (query, outcome)) in log.iter().enumerate() {
            report.solves += 1;
            if !sc.faults_active() {
                if let Ok(tuples) = model.solve_text(query) {
                    digest_answer(
                        &mut expected_digest,
                        query,
                        &CheckedSolutions {
                            solutions: tuples,
                            completeness: Completeness::Exact,
                        },
                    );
                }
            }
            match outcome {
                Ok(checked) => {
                    report.nonempty_answers += usize::from(!checked.solutions.is_empty());
                    match checked.completeness {
                        Completeness::Exact => report.exact += 1,
                        Completeness::Partial { .. } => report.partial += 1,
                    }
                    digest_answer(&mut report.digest, query, checked);
                    check_answer(&model, sc, step, si, query, checked, &mut violations);
                }
                Err(e) => {
                    fnv1a(&mut report.digest, format!("{query}|error").as_bytes());
                    if sc.faults_active() {
                        report.tolerated_errors += 1;
                    } else {
                        violations.push(Violation {
                            step,
                            session: si,
                            query: query.clone(),
                            kind: ViolationKind::UnexpectedError,
                            detail: format!("solve failed without injected faults: {e}"),
                        });
                    }
                }
            }
        }
    }

    // Scheduler conservation laws.
    let end = |kind: ViolationKind, detail: String| Violation {
        step: usize::MAX,
        session: usize::MAX,
        query: "<end-of-run>".into(),
        kind,
        detail,
    };
    if pool_snap.panicked != 0 {
        violations.push(end(
            ViolationKind::UnexpectedError,
            format!("{} session task(s) panicked", pool_snap.panicked),
        ));
    }
    let open = system.cms().open_flights();
    if open != 0 {
        violations.push(end(
            ViolationKind::MetricsConservation,
            format!("{open} single-flight entr(ies) still open after quiescence"),
        ));
    }
    let m = system.cms().metrics();
    if m.wakes != m.sessions_parked {
        violations.push(end(
            ViolationKind::MetricsConservation,
            format!(
                "leaked wakers: {} wakes for {} parks",
                m.wakes, m.sessions_parked
            ),
        ));
    }
    if !sc.faults_active() && report.digest != expected_digest {
        violations.push(end(
            ViolationKind::AnswerMismatch,
            "session-major digest diverged from the reference model".into(),
        ));
    }

    check_invariants(
        sc,
        &system,
        &rings,
        report.tolerated_errors,
        &mut violations,
    );
    report.violations = violations;
    Ok(report)
}

/// The wire-fault plan a scenario implies: quiet scenarios get a clean
/// pass-through proxy; faulted ones add connection resets and torn
/// frames, seeded from the scenario's fault seed so per-connection
/// decisions replay.
fn proxy_plan(sc: &SimScenario) -> ProxyPlan {
    match &sc.faults {
        Some(f) if f.is_active() => ProxyPlan::seeded(f.seed)
            .with_resets(0.05)
            .with_truncation(0.05, 300),
        _ => ProxyPlan::healthy(),
    }
}

/// Run a scenario with each session on its own OS thread *and* the
/// remote behind a real TCP listener, reached through a fault-injecting
/// proxy: the engine-level `FaultPlan` moves to the server side (its
/// typed errors now travel the wire), and scenarios with faults active
/// additionally suffer connection resets and torn frames on the link.
/// Oracle checks are identical to the other lanes; on top of them the
/// lane asserts that no connection leaks — the client pool's `in_use`
/// gauge and the server's `active` gauge must both drain to zero.
///
/// # Errors
/// Harness-level failures only (socket setup included), as for
/// [`run_scenario`].
pub fn run_scenario_socket(sc: &SimScenario, opts: &SimOptions) -> Result<SimReport, String> {
    sc.validate()?;
    let engine = RemoteDbms::with_defaults(sc.dataset.catalog());
    if let Some(f) = &sc.faults {
        engine.set_fault_plan(Some(f.plan()));
    }
    let mut server = RemoteTcpServer::serve(engine, TcpServerConfig::default())
        .map_err(|e| format!("socket lane: listen failed: {e}"))?;
    let mut proxy = FaultProxy::start(server.addr(), proxy_plan(sc))
        .map_err(|e| format!("socket lane: proxy failed: {e}"))?;
    let mut client = TcpClientConfig::to(proxy.addr().to_string());
    client.connect_timeout_ms = 500;
    client.backoff_base_ms = 2;
    client.backoff_cap_ms = 16;
    let system = build_system_with_transport(sc, TransportConfig::Tcp(client));

    let mut report = run_threaded_over(&system, sc, opts)?;

    // Socket-lane invariants: every connection accounted for.
    let leak = |detail: String| Violation {
        step: usize::MAX,
        session: usize::MAX,
        query: "<end-of-run>".into(),
        kind: ViolationKind::MetricsConservation,
        detail,
    };
    let pool = system
        .cms()
        .transport_pool_stats()
        .expect("socket lane runs over TCP");
    if pool.in_use != 0 {
        report.violations.push(leak(format!(
            "client pool still has {} connection(s) checked out",
            pool.in_use
        )));
    }
    drop(system);
    proxy.shutdown();
    server.shutdown();
    let active = server.stats().active;
    if active != 0 {
        report.violations.push(leak(format!(
            "server still counts {active} active connection(s) after shutdown"
        )));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First generated seed without faults and with data-bearing answers:
    /// the canvas for bug-injection meta-tests.
    fn quiet_seed_with_answers() -> (SimScenario, SimReport) {
        for seed in 0..100u64 {
            let sc = SimScenario::generate(seed);
            if sc.faults_active() {
                continue;
            }
            let report = run_scenario(&sc, &SimOptions::default()).expect("harness runs");
            if report.nonempty_answers > 0 {
                return (sc, report);
            }
        }
        panic!("no fault-free scenario with non-empty answers in seeds 0..100");
    }

    #[test]
    fn a_simple_scenario_passes_clean() {
        let sc = SimScenario::generate(3);
        let report = run_scenario(&sc, &SimOptions::default()).expect("harness runs");
        assert!(report.passed(), "violations: {:#?}", report.violations);
        assert_eq!(report.solves, sc.query_count());
    }

    #[test]
    fn runs_are_bit_for_bit_deterministic() {
        // Pick a seed with faults active so the fault path is under test.
        let sc = (0..200u64)
            .map(SimScenario::generate)
            .find(|s| s.faults_active() && s.sessions.len() > 1)
            .expect("generator produces faulted multi-session scenarios");
        let opts = SimOptions::default();
        let a = run_scenario(&sc, &opts).expect("harness runs");
        let b = run_scenario(&sc, &opts).expect("harness runs");
        assert_eq!(a, b, "same scenario must replay identically");
    }

    #[test]
    fn socket_lane_passes_clean_and_faulted() {
        let quiet = SimScenario::generate(3);
        let r = run_scenario_socket(&quiet, &SimOptions::default()).expect("harness runs");
        assert!(r.passed(), "quiet violations: {:#?}", r.violations);
        assert_eq!(r.solves, quiet.query_count());

        let faulted = (0..200u64)
            .map(SimScenario::generate)
            .find(|s| s.faults_active())
            .expect("generator produces faulted scenarios");
        let r = run_scenario_socket(&faulted, &SimOptions::default()).expect("harness runs");
        assert!(r.passed(), "faulted violations: {:#?}", r.violations);
    }

    #[test]
    fn coop_lane_passes_clean_and_faulted() {
        let quiet = (0..100u64)
            .map(SimScenario::generate)
            .find(|s| !s.faults_active() && s.sessions.len() > 1)
            .expect("generator produces quiet multi-session scenarios");
        let r = run_scenario_coop(&quiet, &SimOptions::default()).expect("harness runs");
        assert!(r.passed(), "quiet violations: {:#?}", r.violations);
        assert_eq!(r.solves, quiet.query_count());
        assert_eq!(r.partial, 0, "fault-free coop answers are all Exact");

        let faulted = (0..200u64)
            .map(SimScenario::generate)
            .find(|s| s.faults_active())
            .expect("generator produces faulted scenarios");
        let r = run_scenario_coop(&faulted, &SimOptions::default()).expect("harness runs");
        assert!(r.passed(), "faulted violations: {:#?}", r.violations);
    }

    #[test]
    fn coop_digest_is_schedule_independent_on_quiet_seeds() {
        // The session-major digest orders answers per session, so for a
        // fault-free scenario it must be identical across runs even
        // though the pool interleaves sessions differently each time —
        // and identical to what the model predicts (checked inside the
        // lane itself).
        let (sc, _) = quiet_seed_with_answers();
        let opts = SimOptions::default();
        let a = run_scenario_coop(&sc, &opts).expect("harness runs");
        let b = run_scenario_coop(&sc, &opts).expect("harness runs");
        assert!(a.passed(), "violations: {:#?}", a.violations);
        assert_eq!(
            a.digest, b.digest,
            "coop digest must not depend on interleaving"
        );
    }

    #[test]
    fn injected_bug_is_caught() {
        let (sc, clean) = quiet_seed_with_answers();
        assert!(
            clean.passed(),
            "clean run must pass: {:#?}",
            clean.violations
        );
        let opts = SimOptions {
            bug: SimBug::DropLastTuple { every: 1 },
            ..SimOptions::default()
        };
        let report = run_scenario(&sc, &opts).expect("harness runs");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::AnswerMismatch),
            "oracle must catch the dropped tuple, got {:#?}",
            report.violations
        );
    }
}
