//! # braid-sim — deterministic simulation harness for BrAID
//!
//! FoundationDB-style simulation testing for the IE → CMS → remote
//! pipeline, with a SQLancer-style model-based differential oracle:
//!
//! * [`model::RefModel`] — a naive, cache-free, subsumption-free CAQL
//!   evaluator (stratified bottom-up Datalog fixpoint) over the same
//!   ground-truth database the simulated remote serves. Whatever the
//!   full system answers is checked against it.
//! * [`scenario::SimScenario`] — a declarative scenario: dataset,
//!   per-session query streams, an explicit interleaving schedule,
//!   cache-capacity pressure, batch/shard/technique knobs, and a seeded
//!   [`scenario::FaultSpec`]. Scenarios round-trip through JSON
//!   ([`SimScenario::to_json`]/[`SimScenario::from_json`]) so failures
//!   replay from a pasted string.
//! * [`gen`] — a fully deterministic generator: one `u64` seed ⇒ one
//!   scenario, byte-stable across runs and platforms (SplitMix64, no
//!   external RNG crate).
//! * [`run`] — the step scheduler. [`run::run_scenario`] drives every
//!   session on the calling thread in schedule order with parallel
//!   execution disabled ([`braid_cms::CmsConfig::deterministic`]), so
//!   the remote request clock — and every seeded fault decision — is a
//!   pure function of the scenario. [`run::run_scenario_threaded`]
//!   trades that replayability for real-thread schedule diversity.
//! * [`shrink`] — delta-debugging minimization of failing scenarios
//!   (drop queries, then faults, then sessions; capacity last) plus
//!   [`shrink::regression_test`] to emit a ready-to-paste test.
//!
//! The oracle checks after every solve: `Exact` answers must be
//! byte-identical to the model, `Partial` answers must be a subset with
//! a non-empty `missing_subqueries` explanation, and end-of-run
//! invariants (pin balance, metrics conservation, span-forest
//! well-formedness) must hold.

pub mod gen;
pub mod json;
pub mod model;
pub mod run;
pub mod scenario;
pub mod shrink;

pub use gen::SimRng;
pub use json::Json;
pub use model::RefModel;
pub use run::{
    build_system, build_system_with_transport, digest_answer, run_scenario, run_scenario_coop,
    run_scenario_socket, run_scenario_threaded, SimBug, SimOptions, SimReport, Violation,
    ViolationKind, DIGEST_SEED,
};
pub use scenario::{Dataset, FaultSpec, SimScenario};
pub use shrink::{regression_test, shrink, ShrinkOutcome};
