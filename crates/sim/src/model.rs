//! The reference model: a naive, cache-free, subsumption-free CAQL
//! evaluator that serves as the answer oracle.
//!
//! The model deliberately shares *no* machinery with the system under
//! test. Where the IE/CMS pipeline plans, caches, subsumes, generalizes,
//! prefetches and degrades, the model does the dumbest correct thing:
//! bottom-up naive fixpoint evaluation of the whole knowledge base over
//! the ground-truth catalog, with stratified negation-as-failure, then a
//! select over the goal pattern. If the two ever disagree on an
//! `Exact`-tagged answer, the system is wrong (or, symmetrically, the
//! model is — either way a bug worth a shrunk repro).
//!
//! Answer shape contract (matching `InferenceEngine::solve_all`): one
//! tuple per solution, one column per goal argument (constants included),
//! sorted and deduplicated.

use braid::{KnowledgeBase, Rule};
use braid_caql::{parse_query, Atom, ConjunctiveQuery, Literal, Subst, Term};
use braid_relational::{Relation, Schema, Tuple, Value};
use braid_remote::Catalog;
use std::collections::{BTreeMap, BTreeSet};

/// One variable assignment produced while evaluating a rule body.
type Bindings = BTreeMap<String, Value>;

/// The oracle: every predicate's full extension, computed once, naively.
pub struct RefModel {
    /// Extension of every base and derived predicate.
    db: BTreeMap<String, Relation>,
}

impl RefModel {
    /// Evaluate the whole knowledge base over the catalog to fixpoint.
    ///
    /// # Errors
    /// Returns a message if the program is unstratifiable (negation
    /// through recursion), a rule head has an unbound variable, or a rule
    /// references a relation absent from both the catalog and the rules.
    pub fn new(catalog: &Catalog, kb: &KnowledgeBase) -> Result<RefModel, String> {
        let mut db: BTreeMap<String, Relation> = BTreeMap::new();
        for name in catalog.names() {
            let rel = catalog
                .relation(name)
                .map_err(|e| format!("catalog relation {name}: {e}"))?;
            db.insert(name.to_string(), (**rel).clone());
        }
        // Empty extensions for every derived predicate, so negation over
        // a not-yet-derived predicate in a later stratum still resolves.
        for r in kb.rules() {
            let head = &r.clause.head;
            db.entry(head.pred.clone()).or_insert_with(|| {
                Relation::new(Schema::positional(head.pred.clone(), head.arity()))
            });
        }

        for stratum in stratify(kb)? {
            fixpoint(&mut db, &stratum)?;
        }
        Ok(RefModel { db })
    }

    /// Solve a textual AI query (`?- p(a, X).`) against the model.
    ///
    /// # Errors
    /// Parse errors and unknown predicates.
    pub fn solve_text(&self, query: &str) -> Result<Vec<Tuple>, String> {
        let goal = parse_query(query).map_err(|e| format!("parse `{query}`: {e}"))?;
        self.solve_goal(&goal)
    }

    /// All solutions of a goal atom: the predicate's extension selected by
    /// the goal's constants and repeated variables, full goal arity,
    /// sorted and deduplicated.
    ///
    /// # Errors
    /// Unknown predicates.
    pub fn solve_goal(&self, goal: &Atom) -> Result<Vec<Tuple>, String> {
        let rel = self
            .db
            .get(&goal.pred)
            .ok_or_else(|| format!("unknown predicate {}", goal.pred))?;
        let mut out: BTreeSet<Tuple> = BTreeSet::new();
        'tuples: for t in rel.iter() {
            let mut bound: BTreeMap<&str, &Value> = BTreeMap::new();
            for (arg, v) in goal.args.iter().zip(t.values()) {
                match arg {
                    Term::Const(c) => {
                        if c != v {
                            continue 'tuples;
                        }
                    }
                    Term::Var(name) => match bound.get(name.as_str()) {
                        Some(prev) if *prev != v => continue 'tuples,
                        Some(_) => {}
                        None => {
                            bound.insert(name, v);
                        }
                    },
                }
            }
            out.insert(t.clone());
        }
        Ok(out.into_iter().collect())
    }

    /// Evaluate an arbitrary conjunctive query (head projection included)
    /// against the model database — base relations *and* derived
    /// extensions. Used by edge-case tests as the ground truth for
    /// CMS-level plans (subsumption compensation, remainders, negation).
    ///
    /// # Errors
    /// Unknown predicates, unschedulable literals, unbound head variables.
    pub fn eval_query(&self, q: &ConjunctiveQuery) -> Result<Vec<Tuple>, String> {
        let rows = eval_body(&self.db, &q.body)?;
        let mut out: BTreeSet<Tuple> = BTreeSet::new();
        for b in &rows {
            out.insert(instantiate_head(&q.head, b)?);
        }
        Ok(out.into_iter().collect())
    }

    /// The full extension of a predicate (test support).
    pub fn extension(&self, pred: &str) -> Option<&Relation> {
        self.db.get(pred)
    }
}

/// Assign each derived predicate a stratum: positive dependencies stay in
/// the same stratum or above, negative dependencies must be strictly
/// above. Returns rules grouped by stratum, ascending.
fn stratify(kb: &KnowledgeBase) -> Result<Vec<Vec<Rule>>, String> {
    let mut stratum: BTreeMap<&str, usize> = BTreeMap::new();
    for r in kb.rules() {
        stratum.insert(&r.clause.head.pred, 0);
    }
    let npreds = stratum.len().max(1);
    // Bellman-Ford-style relaxation; more than |preds| lifts of any
    // predicate means a negative cycle (unstratifiable program).
    for round in 0..=npreds {
        let mut changed = false;
        for r in kb.rules() {
            let head = r.clause.head.pred.as_str();
            let mut need = stratum[head];
            for l in &r.clause.body {
                match l {
                    Literal::Atom(a) => {
                        if let Some(&s) = stratum.get(a.pred.as_str()) {
                            need = need.max(s);
                        }
                    }
                    Literal::Neg(a) => {
                        if let Some(&s) = stratum.get(a.pred.as_str()) {
                            need = need.max(s + 1);
                        }
                    }
                    Literal::Cmp(_) | Literal::Bind { .. } => {}
                }
            }
            if need > stratum[head] {
                stratum.insert(&r.clause.head.pred, need);
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if round == npreds {
            return Err("program is not stratifiable (negation through recursion)".into());
        }
    }
    let max = stratum.values().copied().max().unwrap_or(0);
    let mut out: Vec<Vec<Rule>> = vec![Vec::new(); max + 1];
    for r in kb.rules() {
        out[stratum[r.clause.head.pred.as_str()]].push(r.clone());
    }
    Ok(out.into_iter().filter(|s| !s.is_empty()).collect())
}

/// Naive fixpoint of one stratum: re-derive every rule until no relation
/// grows.
fn fixpoint(db: &mut BTreeMap<String, Relation>, rules: &[Rule]) -> Result<(), String> {
    loop {
        let mut changed = false;
        for r in rules {
            let rows = eval_body(db, &r.clause.body)?;
            let head = &r.clause.head;
            let mut fresh = Vec::new();
            for b in &rows {
                fresh.push(instantiate_head(head, b)?);
            }
            let rel = db
                .get_mut(&head.pred)
                .expect("derived extensions pre-seeded");
            for t in fresh {
                if rel.insert(t).map_err(|e| format!("insert: {e}"))? {
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(());
        }
    }
}

/// Ground the head atom under one binding row.
fn instantiate_head(head: &Atom, b: &Bindings) -> Result<Tuple, String> {
    let mut vals = Vec::with_capacity(head.arity());
    for arg in &head.args {
        match arg {
            Term::Const(c) => vals.push(c.clone()),
            Term::Var(v) => vals.push(
                b.get(v)
                    .cloned()
                    .ok_or_else(|| format!("unsafe rule: head variable {v} unbound"))?,
            ),
        }
    }
    Ok(Tuple::new(vals))
}

/// Evaluate a body: nested-loop joins for positive atoms, with
/// comparisons, evaluable binds and negation-as-failure applied as soon
/// as their inputs are bound. Negations are deferred until no positive
/// literal can bind more variables; their never-bound variables are
/// existential (safe-query semantics).
fn eval_body(db: &BTreeMap<String, Relation>, body: &[Literal]) -> Result<Vec<Bindings>, String> {
    let mut rows: Vec<Bindings> = vec![BTreeMap::new()];
    let mut bound: BTreeSet<String> = BTreeSet::new();
    let mut pending: Vec<&Literal> = body.iter().collect();

    while !pending.is_empty() {
        let ready = pending.iter().position(|l| match l {
            Literal::Atom(_) => true,
            Literal::Cmp(c) => {
                c.lhs.vars().iter().all(|v| bound.contains(*v))
                    && c.rhs.vars().iter().all(|v| bound.contains(*v))
            }
            Literal::Bind { expr, .. } => expr.vars().iter().all(|v| bound.contains(*v)),
            Literal::Neg(_) => false,
        });
        let idx = match ready {
            Some(i) => i,
            // Only negations (or unschedulable comparisons) left.
            None => match pending.iter().position(|l| matches!(l, Literal::Neg(_))) {
                Some(i) => i,
                None => {
                    return Err(format!(
                        "cannot schedule literal `{}`: unbound variables",
                        pending[0]
                    ))
                }
            },
        };
        let lit = pending.remove(idx);
        match lit {
            Literal::Atom(a) => {
                let rel = db
                    .get(&a.pred)
                    .ok_or_else(|| format!("unknown relation {}", a.pred))?;
                let mut next = Vec::new();
                for b in &rows {
                    join_atom(a, rel, b, &mut next);
                }
                rows = next;
                for v in a.vars() {
                    bound.insert(v.to_string());
                }
            }
            Literal::Neg(a) => {
                let rel = db
                    .get(&a.pred)
                    .ok_or_else(|| format!("unknown relation {}", a.pred))?;
                rows.retain(|b| {
                    let mut probe = Vec::new();
                    join_atom(a, rel, b, &mut probe);
                    probe.is_empty()
                });
            }
            Literal::Cmp(c) => {
                let mut keep = Vec::new();
                for b in rows {
                    let s = subst_of(&b);
                    let ground = match s.apply_literal(&Literal::Cmp(c.clone())) {
                        Literal::Cmp(g) => g,
                        _ => unreachable!("substitution preserves literal shape"),
                    };
                    if ground.eval().map_err(|e| format!("comparison {c}: {e}"))? {
                        keep.push(b);
                    }
                }
                rows = keep;
            }
            Literal::Bind { var, expr } => {
                let mut next = Vec::new();
                for mut b in rows {
                    let s = subst_of(&b);
                    let v = s
                        .apply_arith(expr)
                        .eval()
                        .map_err(|e| format!("bind {var} is {expr}: {e}"))?;
                    match b.get(var.as_str()) {
                        Some(prev) if *prev != v => {}
                        Some(_) => next.push(b),
                        None => {
                            b.insert(var.clone(), v);
                            next.push(b);
                        }
                    }
                }
                rows = next;
                bound.insert(var.clone());
            }
        }
    }
    Ok(rows)
}

/// Extend one binding row against every matching tuple of `rel`.
fn join_atom(a: &Atom, rel: &Relation, b: &Bindings, out: &mut Vec<Bindings>) {
    'row: for t in rel.iter() {
        if t.values().len() != a.arity() {
            continue;
        }
        let mut nb = b.clone();
        for (arg, v) in a.args.iter().zip(t.values()) {
            match arg {
                Term::Const(c) => {
                    if c != v {
                        continue 'row;
                    }
                }
                Term::Var(x) => match nb.get(x.as_str()) {
                    Some(prev) if prev != v => continue 'row,
                    Some(_) => {}
                    None => {
                        nb.insert(x.clone(), v.clone());
                    }
                },
            }
        }
        out.push(nb);
    }
}

/// A binding row as a substitution (for grounding comparisons/binds).
fn subst_of(b: &Bindings) -> Subst {
    let mut s = Subst::new();
    for (v, val) in b {
        s.insert(v.clone(), Term::Const(val.clone()));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_caql::parse_rule;
    use braid_relational::tuple;

    fn tiny_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.install(
            Relation::from_tuples(
                Schema::of_strs("parent", &["p", "c"]),
                vec![
                    tuple!["ann", "bob"],
                    tuple!["bob", "cal"],
                    tuple!["cal", "dee"],
                ],
            )
            .unwrap(),
        );
        c
    }

    fn tiny_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.declare_base("parent", 2);
        kb.add_program(
            "anc(X, Y) :- parent(X, Y).\n\
             anc(X, Y) :- parent(X, Z), anc(Z, Y).\n\
             leaf(X) :- parent(P, X), not parent(X, Q).",
        )
        .unwrap();
        kb
    }

    #[test]
    fn recursive_closure_reaches_fixpoint() {
        let m = RefModel::new(&tiny_catalog(), &tiny_kb()).unwrap();
        assert_eq!(m.extension("anc").unwrap().len(), 6);
        let sols = m.solve_text("?- anc(ann, Y).").unwrap();
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn goal_constants_and_repeats_select() {
        let m = RefModel::new(&tiny_catalog(), &tiny_kb()).unwrap();
        let sols = m.solve_text("?- anc(bob, dee).").unwrap();
        assert_eq!(sols, vec![tuple!["bob", "dee"]]);
        // Repeated variable: anc(X, X) is empty on a tree.
        assert!(m.solve_text("?- anc(X, X).").unwrap().is_empty());
    }

    #[test]
    fn negation_as_failure_is_stratified() {
        let m = RefModel::new(&tiny_catalog(), &tiny_kb()).unwrap();
        let sols = m.solve_text("?- leaf(X).").unwrap();
        assert_eq!(sols, vec![tuple!["dee"]]);
    }

    #[test]
    fn unstratifiable_program_is_rejected() {
        let mut kb = KnowledgeBase::new();
        kb.declare_base("b", 1);
        kb.add_program("p(X) :- b(X), not q(X).\nq(X) :- b(X), not p(X).")
            .unwrap();
        let mut c = Catalog::new();
        c.install(Relation::from_tuples(Schema::of_strs("b", &["x"]), vec![tuple!["a"]]).unwrap());
        assert!(RefModel::new(&c, &kb).is_err());
    }

    #[test]
    fn eval_query_handles_comparisons_and_binds() {
        let mut c = Catalog::new();
        c.install(
            Relation::from_tuples(
                Schema::of_strs("n", &["x"]),
                (0..6i64).map(|i| Tuple::new(vec![Value::Int(i)])),
            )
            .unwrap(),
        );
        let m = RefModel::new(&c, &KnowledgeBase::new()).unwrap();
        let q = parse_rule("big(X, Y) :- n(X), X >= 3, Y is X + 1.").unwrap();
        let sols = m.eval_query(&q).unwrap();
        assert_eq!(
            sols,
            vec![
                Tuple::new(vec![Value::Int(3), Value::Int(4)]),
                Tuple::new(vec![Value::Int(4), Value::Int(5)]),
                Tuple::new(vec![Value::Int(5), Value::Int(6)]),
            ]
        );
    }
}
