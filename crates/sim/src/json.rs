//! A minimal JSON value, writer and parser — just enough to make
//! scenarios replayable as text. No external dependencies are available
//! in this environment, and the scenario language needs only unsigned
//! integers, strings, booleans, arrays and objects, so numbers are kept
//! as `u64` end to end (an `f64` round-trip would corrupt 64-bit seeds).

use std::fmt::Write as _;

/// A JSON value restricted to the scenario language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (seeds, counts, byte sizes, permilles).
    UInt(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys (stable rendering).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field.
    ///
    /// # Errors
    /// Missing key.
    pub fn req(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// The integer value, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&braid_trace::json_escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&braid_trace::json_escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the subset above; numbers must be unsigned
    /// integers).
    ///
    /// # Errors
    /// Syntax errors with a byte offset.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_keyword(b, pos, "null", Json::Null),
        Some(b't') => parse_keyword(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .map_err(|e| e.to_string())?
                .parse::<u64>()
                .map(Json::UInt)
                .map_err(|e| format!("number at byte {start}: {e}"))
        }
        Some(c) => Err(format!("unexpected `{}` at byte {pos}", *c as char)),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(String::from)?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("\\u escape: {e}"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            _ => {
                // Re-decode multi-byte UTF-8 starting at c.
                let start = *pos - 1;
                let width = utf8_width(c);
                let s = b
                    .get(start..start + width)
                    .and_then(|chunk| std::str::from_utf8(chunk).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                out.push_str(s);
                *pos = start + width;
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scenario_shapes() {
        let v = Json::Obj(vec![
            ("seed".into(), Json::UInt(u64::MAX)),
            ("name".into(), Json::Str("genealogy \"g2\"".into())),
            (
                "sessions".into(),
                Json::Arr(vec![Json::Arr(vec![Json::Str("?- anc(p0, X).".into())])]),
            ),
            ("capacity".into(), Json::Null),
            ("lazy".into(), Json::Bool(true)),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let v = Json::UInt(0x9e3779b97f4a7c15);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("-4").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
    }
}
