//! Seeded scenario generation: one `u64` in, one replayable scenario out.
//!
//! Every draw goes through a self-contained SplitMix64 stream, so the
//! generator has no dependency on external RNG crates and the mapping
//! from seed to scenario is pinned by a snapshot test (seed-stability
//! guard): regression seeds recorded in tests stay meaningful across
//! refactors, or the snapshot fails loudly.

use crate::scenario::{Dataset, FaultSpec, SimScenario};
use braid::Strategy;

/// SplitMix64: tiny, fast, deterministic, good enough for scenario
/// composition (this is not a statistical-quality concern).
#[derive(Debug, Clone)]
pub struct SimRng(u64);

impl SimRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> SimRng {
        SimRng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `permille`/1000.
    pub fn chance(&mut self, permille: u64) -> bool {
        self.below(1000) < permille
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// A probe-able derived view: name, arity, and the constant domain each
/// argument position draws bound values from.
struct View {
    name: &'static str,
    arg_domains: Vec<usize>,
}

/// Views a query can probe, mirroring the workload's derived relations,
/// plus the constant domains their argument positions range over.
fn views(dataset: &Dataset) -> (Vec<View>, Vec<Vec<String>>) {
    match *dataset {
        Dataset::Genealogy {
            generations,
            branching,
            ..
        } => {
            let n = braid_workload::genealogy::person_count(generations, branching);
            let persons = (0..n).map(|i| format!("p{i}")).collect();
            let mk = |name, arity: usize| View {
                name,
                arg_domains: vec![0; arity],
            };
            (
                vec![
                    mk("grandparent", 2),
                    mk("sibling", 2),
                    mk("ancestor", 2),
                    mk("cousin", 2),
                    mk("uncle", 2),
                    mk("elder_parent", 2),
                    mk("adult", 1),
                ],
                vec![persons],
            )
        }
        Dataset::Suppliers {
            parts, suppliers, ..
        } => {
            let part_names = (0..parts).map(|i| format!("part{i}")).collect();
            let sup_names = (0..suppliers).map(|i| format!("sup{i}")).collect();
            (
                vec![
                    View {
                        name: "component",
                        arg_domains: vec![0, 0],
                    },
                    View {
                        name: "bulk_supplier",
                        arg_domains: vec![1, 0],
                    },
                    View {
                        name: "supplies_component",
                        arg_domains: vec![1, 0],
                    },
                    View {
                        name: "colocated",
                        arg_domains: vec![1, 1],
                    },
                ],
                vec![part_names, sup_names],
            )
        }
    }
}

/// One query: a derived-view probe with the first argument bound most of
/// the time (the paper's instance-query pattern), occasionally fully
/// unbound (whole-view scans that stress caching and generalization).
fn gen_query(rng: &mut SimRng, views: &[View], domains: &[Vec<String>]) -> String {
    let view = &views[rng.below(views.len() as u64) as usize];
    let vars = ["X", "Y", "Z"];
    // Decide per argument: bound to a domain constant, or free.
    let bind_first = rng.chance(700);
    let bind_rest = rng.chance(250);
    let args: Vec<String> = view
        .arg_domains
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let bound = if i == 0 { bind_first } else { bind_rest };
            if bound {
                rng.pick(&domains[d]).clone()
            } else {
                vars[i].to_string()
            }
        })
        .collect();
    format!("?- {}({}).", view.name, args.join(", "))
}

impl SimScenario {
    /// Generate the scenario for a seed — the whole point: query streams,
    /// session count, interleaving, knobs and faults all flow from this
    /// one number, so a failing seed *is* the repro.
    pub fn generate(seed: u64) -> SimScenario {
        let mut rng = SimRng::new(seed);

        let dataset = if rng.chance(700) {
            Dataset::Genealogy {
                generations: rng.range(2, 3) as u32,
                branching: 2,
                seed: rng.next_u64() % 10_000,
            }
        } else {
            Dataset::Suppliers {
                parts: rng.range(10, 18) as u32,
                fanout: 3,
                suppliers: rng.range(3, 6) as u32,
                cities: 4,
                seed: rng.next_u64() % 10_000,
            }
        };

        let strategy = match rng.below(6) {
            0 => Strategy::Interpreted,
            1 | 2 => Strategy::FullyCompiled,
            _ => Strategy::ConjunctionCompiled,
        };

        let (view_list, domains) = views(&dataset);
        let session_count = rng.range(1, 4) as usize;
        let sessions: Vec<Vec<String>> = (0..session_count)
            .map(|_| {
                (0..rng.range(2, 6))
                    .map(|_| gen_query(&mut rng, &view_list, &domains))
                    .collect()
            })
            .collect();

        // Interleave: repeatedly dispatch a random session that still has
        // pending queries. This fixes the step order for exact replay.
        let mut remaining: Vec<usize> = sessions.iter().map(Vec::len).collect();
        let mut schedule = Vec::with_capacity(remaining.iter().sum());
        while remaining.iter().any(|&r| r > 0) {
            let live: Vec<usize> = (0..remaining.len()).filter(|&s| remaining[s] > 0).collect();
            let s = *rng.pick(&live);
            remaining[s] -= 1;
            schedule.push(s);
        }

        let capacity_bytes = if rng.chance(300) {
            Some(rng.range(2_000, 24_000))
        } else {
            None
        };

        let faults = if rng.chance(400) {
            let mut spec = FaultSpec {
                seed: rng.next_u64(),
                transient_permille: if rng.chance(700) {
                    rng.range(5, 80) as u32
                } else {
                    0
                },
                timeout_permille: if rng.chance(300) {
                    rng.range(5, 40) as u32
                } else {
                    0
                },
                latency_spike_permille: if rng.chance(400) {
                    rng.range(10, 100) as u32
                } else {
                    0
                },
                latency_spike_units: 50,
                disconnect_permille: if rng.chance(300) {
                    rng.range(5, 40) as u32
                } else {
                    0
                },
                disconnect_after_tuples: rng.range(0, 6),
                outages: Vec::new(),
            };
            if rng.chance(300) {
                let start = rng.range(0, 20);
                spec.outages.push((start, start + rng.range(5, 30)));
            }
            Some(spec)
        } else {
            None
        };

        SimScenario {
            seed,
            dataset,
            strategy,
            sessions,
            schedule,
            capacity_bytes,
            shards: rng.range(1, 4) as u32,
            batch_size: *rng.pick(&[1u32, 7, 32, 256]),
            lazy: rng.chance(800),
            prefetch: rng.chance(800),
            generalization: rng.chance(800),
            subsumption: rng.chance(900),
            // Drawn last so older regression seeds keep their prefix of
            // draws (the seed-stability guard pins the mapping).
            columnar: rng.chance(500),
            faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = SimScenario::generate(seed);
            let b = SimScenario::generate(seed);
            assert_eq!(a, b);
            assert_eq!(a.to_json(), b.to_json());
        }
    }

    #[test]
    fn generated_scenarios_validate_and_round_trip() {
        for seed in 0..200u64 {
            let sc = SimScenario::generate(seed);
            sc.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(sc.query_count() >= 2);
            let back = SimScenario::from_json(&sc.to_json())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(back, sc, "seed {seed} must survive the JSON round trip");
        }
    }

    #[test]
    fn seeds_diversify_the_space() {
        let mut with_faults = 0;
        let mut suppliers = 0;
        let mut capped = 0;
        let mut multi = 0;
        let mut columnar = 0;
        for seed in 0..100u64 {
            let sc = SimScenario::generate(seed);
            with_faults += usize::from(sc.faults_active());
            suppliers += usize::from(matches!(sc.dataset, Dataset::Suppliers { .. }));
            capped += usize::from(sc.capacity_bytes.is_some());
            multi += usize::from(sc.sessions.len() > 1);
            columnar += usize::from(sc.columnar);
        }
        assert!(with_faults > 10, "faults under-represented: {with_faults}");
        assert!(suppliers > 5, "suppliers under-represented: {suppliers}");
        assert!(capped > 5, "capacity pressure under-represented: {capped}");
        assert!(multi > 30, "multi-session under-represented: {multi}");
        assert!(
            (20..=80).contains(&columnar),
            "columnar should split the space roughly in half: {columnar}"
        );
    }
}
