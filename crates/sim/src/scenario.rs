//! The scenario DSL: everything a simulation run needs, as plain data.
//!
//! A [`SimScenario`] is fully self-describing — dataset parameters (the
//! ground-truth database is rebuilt from them, never shipped), per-session
//! query streams, the step schedule that fixes the interleaving, cache /
//! executor knobs and an optional fault specification. Serialization is a
//! small hand-rolled JSON dialect (see [`crate::json`]) so failing
//! scenarios can be replayed byte-for-byte from a pasted string.

use crate::json::Json;
use braid::Strategy;
use braid::{Catalog, KnowledgeBase};
use braid_remote::FaultPlan;
use braid_workload::{genealogy, suppliers};

/// Which ground-truth database a scenario runs over. Parameters, not
/// data: both the system under test and the reference model rebuild the
/// catalog deterministically from them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dataset {
    /// The family-tree workload (`braid_workload::genealogy`).
    Genealogy {
        /// Tree depth.
        generations: u32,
        /// Children per person.
        branching: u32,
        /// Data seed (sex/age assignment).
        seed: u64,
    },
    /// The parts/suppliers workload (`braid_workload::suppliers`).
    Suppliers {
        /// Number of parts.
        parts: u32,
        /// Sub-part fanout.
        fanout: u32,
        /// Number of suppliers.
        suppliers: u32,
        /// Number of cities.
        cities: u32,
        /// Data seed.
        seed: u64,
    },
}

impl Dataset {
    /// Build the catalog (deterministic in the parameters).
    pub fn catalog(&self) -> Catalog {
        match *self {
            Dataset::Genealogy {
                generations,
                branching,
                seed,
            } => genealogy::catalog(generations, branching, seed),
            Dataset::Suppliers {
                parts,
                fanout,
                suppliers: sup,
                cities,
                seed,
            } => suppliers::catalog(
                parts as usize,
                fanout as usize,
                sup as usize,
                cities as usize,
                seed,
            ),
        }
    }

    /// The matching rule set.
    pub fn knowledge_base(&self) -> KnowledgeBase {
        match self {
            Dataset::Genealogy { .. } => genealogy::knowledge_base(),
            Dataset::Suppliers { .. } => suppliers::knowledge_base(),
        }
    }

    /// Serialize as a JSON value (used by [`SimScenario::to_json`] and
    /// by the load harness's worker specs).
    pub fn to_json(&self) -> Json {
        match *self {
            Dataset::Genealogy {
                generations,
                branching,
                seed,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("genealogy".into())),
                ("generations".into(), Json::UInt(generations.into())),
                ("branching".into(), Json::UInt(branching.into())),
                ("seed".into(), Json::UInt(seed)),
            ]),
            Dataset::Suppliers {
                parts,
                fanout,
                suppliers: sup,
                cities,
                seed,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("suppliers".into())),
                ("parts".into(), Json::UInt(parts.into())),
                ("fanout".into(), Json::UInt(fanout.into())),
                ("suppliers".into(), Json::UInt(sup.into())),
                ("cities".into(), Json::UInt(cities.into())),
                ("seed".into(), Json::UInt(seed)),
            ]),
        }
    }

    /// Parse a dataset serialized by [`Dataset::to_json`].
    ///
    /// # Errors
    /// Missing fields, wrong types, or an unknown dataset kind.
    pub fn from_json(v: &Json) -> Result<Dataset, String> {
        let kind = v
            .req("kind")?
            .as_str()
            .ok_or("dataset kind must be a string")?;
        let u32_field = |key: &str| -> Result<u32, String> {
            v.req(key)?
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("dataset field `{key}` must be a u32"))
        };
        let seed = v
            .req("seed")?
            .as_u64()
            .ok_or("dataset seed must be a u64")?;
        match kind {
            "genealogy" => Ok(Dataset::Genealogy {
                generations: u32_field("generations")?,
                branching: u32_field("branching")?,
                seed,
            }),
            "suppliers" => Ok(Dataset::Suppliers {
                parts: u32_field("parts")?,
                fanout: u32_field("fanout")?,
                suppliers: u32_field("suppliers")?,
                cities: u32_field("cities")?,
                seed,
            }),
            other => Err(format!("unknown dataset kind `{other}`")),
        }
    }
}

/// Deterministic fault injection, as integers (per-mille probabilities
/// and unit counts) so the JSON round-trip is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Fault-plan seed (independent of the scenario seed).
    pub seed: u64,
    /// Transient `Unavailable` probability, in ‰ per request.
    pub transient_permille: u32,
    /// Timeout probability, in ‰ per request.
    pub timeout_permille: u32,
    /// Latency-spike probability, in ‰ per request.
    pub latency_spike_permille: u32,
    /// Extra latency units added by a spike.
    pub latency_spike_units: u64,
    /// Mid-stream disconnect probability, in ‰ per request.
    pub disconnect_permille: u32,
    /// Tuples delivered before a disconnect fires.
    pub disconnect_after_tuples: u64,
    /// Hard outage windows `[start, end)` on the request clock.
    pub outages: Vec<(u64, u64)>,
}

impl FaultSpec {
    /// Lower to the remote layer's [`FaultPlan`].
    pub fn plan(&self) -> FaultPlan {
        let mut p = FaultPlan::seeded(self.seed)
            .with_transient_failures(self.transient_permille as f64 / 1000.0)
            .with_timeouts(self.timeout_permille as f64 / 1000.0)
            .with_latency_spikes(
                self.latency_spike_permille as f64 / 1000.0,
                self.latency_spike_units,
            )
            .with_disconnects(
                self.disconnect_permille as f64 / 1000.0,
                self.disconnect_after_tuples,
            );
        for &(start, end) in &self.outages {
            p = p.with_outage(start, end);
        }
        p
    }

    /// Does this spec inject anything at all?
    pub fn is_active(&self) -> bool {
        self.transient_permille > 0
            || self.timeout_permille > 0
            || self.latency_spike_permille > 0
            || self.disconnect_permille > 0
            || !self.outages.is_empty()
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::UInt(self.seed)),
            (
                "transient_permille".into(),
                Json::UInt(self.transient_permille.into()),
            ),
            (
                "timeout_permille".into(),
                Json::UInt(self.timeout_permille.into()),
            ),
            (
                "latency_spike_permille".into(),
                Json::UInt(self.latency_spike_permille.into()),
            ),
            (
                "latency_spike_units".into(),
                Json::UInt(self.latency_spike_units),
            ),
            (
                "disconnect_permille".into(),
                Json::UInt(self.disconnect_permille.into()),
            ),
            (
                "disconnect_after_tuples".into(),
                Json::UInt(self.disconnect_after_tuples),
            ),
            (
                "outages".into(),
                Json::Arr(
                    self.outages
                        .iter()
                        .map(|&(s, e)| Json::Arr(vec![Json::UInt(s), Json::UInt(e)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<FaultSpec, String> {
        let u64_field = |key: &str| -> Result<u64, String> {
            v.req(key)?
                .as_u64()
                .ok_or_else(|| format!("fault field `{key}` must be a u64"))
        };
        let permille = |key: &str| -> Result<u32, String> {
            u64_field(key)?
                .try_into()
                .map_err(|_| format!("fault field `{key}` out of range"))
        };
        let mut outages = Vec::new();
        for w in v
            .req("outages")?
            .as_arr()
            .ok_or("outages must be an array")?
        {
            let pair = w
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or("outage must be a pair")?;
            let s = pair[0].as_u64().ok_or("outage start must be a u64")?;
            let e = pair[1].as_u64().ok_or("outage end must be a u64")?;
            outages.push((s, e));
        }
        Ok(FaultSpec {
            seed: u64_field("seed")?,
            transient_permille: permille("transient_permille")?,
            timeout_permille: permille("timeout_permille")?,
            latency_spike_permille: permille("latency_spike_permille")?,
            latency_spike_units: u64_field("latency_spike_units")?,
            disconnect_permille: permille("disconnect_permille")?,
            disconnect_after_tuples: u64_field("disconnect_after_tuples")?,
            outages,
        })
    }
}

/// One simulated run: data, queries, interleaving, knobs, faults.
#[derive(Debug, Clone, PartialEq)]
pub struct SimScenario {
    /// The seed this scenario was generated from (provenance only; the
    /// scenario is self-describing and replays without it).
    pub seed: u64,
    /// Ground-truth database parameters.
    pub dataset: Dataset,
    /// Inference strategy every session uses.
    pub strategy: Strategy,
    /// Query stream per session.
    pub sessions: Vec<Vec<String>>,
    /// Step schedule: `schedule[i]` is the session index that solves its
    /// next pending query at step `i`. Occurrence counts match session
    /// lengths, so interleavings replay exactly.
    pub schedule: Vec<usize>,
    /// Cache capacity in bytes (`None` ⇒ unbounded).
    pub capacity_bytes: Option<u64>,
    /// Shared-cache shard count.
    pub shards: u32,
    /// Executor batch size.
    pub batch_size: u32,
    /// Lazy cache-only answers.
    pub lazy: bool,
    /// Path-expression prefetching.
    pub prefetch: bool,
    /// Advice-driven generalization.
    pub generalization: bool,
    /// Subsumption reuse.
    pub subsumption: bool,
    /// Column-major representation for producer-style cache elements
    /// (served by the vectorized kernels; answer-invariant by design —
    /// the oracle checks exactly that).
    pub columnar: bool,
    /// Deterministic fault injection, if any.
    pub faults: Option<FaultSpec>,
}

impl SimScenario {
    /// Total number of queries across every session.
    pub fn query_count(&self) -> usize {
        self.sessions.iter().map(Vec::len).sum()
    }

    /// Are any faults actually injected?
    pub fn faults_active(&self) -> bool {
        self.faults.as_ref().is_some_and(FaultSpec::is_active)
    }

    /// Validate internal consistency: the schedule must dispatch each
    /// session exactly as many times as it has queries.
    ///
    /// # Errors
    /// A message naming the inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let mut counts = vec![0usize; self.sessions.len()];
        for &s in &self.schedule {
            *counts.get_mut(s).ok_or_else(|| {
                format!("schedule names session {s} of {}", self.sessions.len())
            })? += 1;
        }
        for (i, (have, want)) in counts
            .iter()
            .zip(self.sessions.iter().map(Vec::len))
            .enumerate()
        {
            if *have != want {
                return Err(format!(
                    "session {i}: schedule dispatches it {have} times but it has {want} queries"
                ));
            }
        }
        if self.shards == 0 || self.batch_size == 0 {
            return Err("shards and batch_size must be ≥ 1".into());
        }
        Ok(())
    }

    /// Serialize to compact JSON (exact round-trip via
    /// [`SimScenario::from_json`]).
    pub fn to_json(&self) -> String {
        let strategy = match self.strategy {
            Strategy::Interpreted => "interpreted",
            Strategy::ConjunctionCompiled => "conjunction_compiled",
            Strategy::FullyCompiled => "fully_compiled",
        };
        Json::Obj(vec![
            ("seed".into(), Json::UInt(self.seed)),
            ("dataset".into(), self.dataset.to_json()),
            ("strategy".into(), Json::Str(strategy.into())),
            (
                "sessions".into(),
                Json::Arr(
                    self.sessions
                        .iter()
                        .map(|qs| Json::Arr(qs.iter().map(|q| Json::Str(q.clone())).collect()))
                        .collect(),
                ),
            ),
            (
                "schedule".into(),
                Json::Arr(
                    self.schedule
                        .iter()
                        .map(|&s| Json::UInt(s as u64))
                        .collect(),
                ),
            ),
            (
                "capacity_bytes".into(),
                self.capacity_bytes.map_or(Json::Null, Json::UInt),
            ),
            ("shards".into(), Json::UInt(self.shards.into())),
            ("batch_size".into(), Json::UInt(self.batch_size.into())),
            ("lazy".into(), Json::Bool(self.lazy)),
            ("prefetch".into(), Json::Bool(self.prefetch)),
            ("generalization".into(), Json::Bool(self.generalization)),
            ("subsumption".into(), Json::Bool(self.subsumption)),
            ("columnar".into(), Json::Bool(self.columnar)),
            (
                "faults".into(),
                self.faults.as_ref().map_or(Json::Null, FaultSpec::to_json),
            ),
        ])
        .render()
    }

    /// Parse a scenario serialized by [`SimScenario::to_json`].
    ///
    /// # Errors
    /// JSON syntax errors, missing fields, or an inconsistent schedule.
    pub fn from_json(src: &str) -> Result<SimScenario, String> {
        let v = Json::parse(src)?;
        let strategy = match v
            .req("strategy")?
            .as_str()
            .ok_or("strategy must be a string")?
        {
            "interpreted" => Strategy::Interpreted,
            "conjunction_compiled" => Strategy::ConjunctionCompiled,
            "fully_compiled" => Strategy::FullyCompiled,
            other => return Err(format!("unknown strategy `{other}`")),
        };
        let mut sessions = Vec::new();
        for s in v
            .req("sessions")?
            .as_arr()
            .ok_or("sessions must be an array")?
        {
            let mut queries = Vec::new();
            for q in s.as_arr().ok_or("each session must be an array")? {
                queries.push(q.as_str().ok_or("queries must be strings")?.to_string());
            }
            sessions.push(queries);
        }
        let mut schedule = Vec::new();
        for s in v
            .req("schedule")?
            .as_arr()
            .ok_or("schedule must be an array")?
        {
            schedule.push(
                s.as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or("schedule entries must be indices")?,
            );
        }
        let capacity_bytes = match v.req("capacity_bytes")? {
            Json::Null => None,
            other => Some(
                other
                    .as_u64()
                    .ok_or("capacity_bytes must be a u64 or null")?,
            ),
        };
        let faults = match v.req("faults")? {
            Json::Null => None,
            other => Some(FaultSpec::from_json(other)?),
        };
        let u32_field = |key: &str| -> Result<u32, String> {
            v.req(key)?
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("field `{key}` must be a u32"))
        };
        let bool_field = |key: &str| -> Result<bool, String> {
            v.req(key)?
                .as_bool()
                .ok_or_else(|| format!("field `{key}` must be a bool"))
        };
        let sc = SimScenario {
            seed: v.req("seed")?.as_u64().ok_or("seed must be a u64")?,
            dataset: Dataset::from_json(v.req("dataset")?)?,
            strategy,
            sessions,
            schedule,
            capacity_bytes,
            shards: u32_field("shards")?,
            batch_size: u32_field("batch_size")?,
            lazy: bool_field("lazy")?,
            prefetch: bool_field("prefetch")?,
            generalization: bool_field("generalization")?,
            subsumption: bool_field("subsumption")?,
            columnar: bool_field("columnar")?,
            faults,
        };
        sc.validate()?;
        Ok(sc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimScenario {
        SimScenario {
            seed: 7,
            dataset: Dataset::Genealogy {
                generations: 3,
                branching: 2,
                seed: 42,
            },
            strategy: Strategy::ConjunctionCompiled,
            sessions: vec![
                vec!["?- ancestor(p0, Y).".into(), "?- sibling(p3, Y).".into()],
                vec!["?- grandparent(X, Y).".into()],
            ],
            schedule: vec![0, 1, 0],
            capacity_bytes: Some(4096),
            shards: 2,
            batch_size: 7,
            lazy: true,
            prefetch: false,
            generalization: true,
            subsumption: true,
            columnar: true,
            faults: Some(FaultSpec {
                seed: 99,
                transient_permille: 50,
                timeout_permille: 0,
                latency_spike_permille: 10,
                latency_spike_units: 40,
                disconnect_permille: 5,
                disconnect_after_tuples: 3,
                outages: vec![(4, 9)],
            }),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let sc = sample();
        let text = sc.to_json();
        let back = SimScenario::from_json(&text).expect("round trip parses");
        assert_eq!(back, sc);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn validate_rejects_bad_schedules() {
        let mut sc = sample();
        sc.schedule = vec![0, 0, 0];
        assert!(sc.validate().is_err());
        sc.schedule = vec![0, 1, 5];
        assert!(sc.validate().is_err());
    }

    #[test]
    fn dataset_rebuilds_deterministically() {
        let d = Dataset::Genealogy {
            generations: 2,
            branching: 2,
            seed: 5,
        };
        let a = d.catalog();
        let b = d.catalog();
        assert_eq!(
            a.relation("parent").unwrap().sorted_tuples(),
            b.relation("parent").unwrap().sorted_tuples()
        );
    }
}
