//! Scenario shrinking: minimize a failing scenario while preserving the
//! failure, in the order that keeps repros readable — drop queries
//! first, then faults, then whole sessions, and only then touch cache
//! capacity. Every candidate is re-run through the deterministic
//! scheduler, so the result is exactly as reproducible as the original.

use crate::run::{run_scenario, SimOptions, SimReport};
use crate::scenario::SimScenario;

/// Outcome of a shrink.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized scenario (still failing).
    pub scenario: SimScenario,
    /// Scenario executions spent shrinking.
    pub runs: usize,
    /// The report of the final failing run.
    pub report: Option<SimReport>,
}

/// Does this scenario still fail? A harness-level error counts as a
/// failure too (a scenario that breaks the runner is worth keeping).
fn fails(sc: &SimScenario, opts: &SimOptions) -> (bool, Option<SimReport>) {
    match run_scenario(sc, opts) {
        Ok(r) => (!r.passed(), Some(r)),
        Err(_) => (true, None),
    }
}

/// Remove query `i` of session `s`, and the matching dispatch (the
/// `i+1`-th occurrence of `s`) from the schedule.
fn remove_query(sc: &SimScenario, s: usize, i: usize) -> SimScenario {
    let mut out = sc.clone();
    out.sessions[s].remove(i);
    let mut seen = 0usize;
    if let Some(pos) = out.schedule.iter().position(|&x| {
        if x == s {
            seen += 1;
            seen == i + 1
        } else {
            false
        }
    }) {
        out.schedule.remove(pos);
    }
    out
}

/// Remove session `s` entirely (its queries, its dispatches, and shift
/// higher session indices down).
fn remove_session(sc: &SimScenario, s: usize) -> SimScenario {
    let mut out = sc.clone();
    out.sessions.remove(s);
    out.schedule.retain(|&x| x != s);
    for x in &mut out.schedule {
        if *x > s {
            *x -= 1;
        }
    }
    out
}

/// Minimize `sc`, which must fail under `opts`. Deterministic: the same
/// failing scenario always shrinks to the same minimum.
pub fn shrink(sc: &SimScenario, opts: &SimOptions) -> ShrinkOutcome {
    let mut cur = sc.clone();
    let mut runs = 0usize;
    let mut last_report = None;
    let try_keep = |cur: &mut SimScenario,
                    cand: SimScenario,
                    runs: &mut usize,
                    last: &mut Option<SimReport>|
     -> bool {
        *runs += 1;
        let (still_fails, report) = fails(&cand, opts);
        if still_fails {
            *cur = cand;
            *last = report;
            true
        } else {
            false
        }
    };

    loop {
        let mut improved = false;

        // Pass 1: drop queries, one at a time, until none can go.
        'queries: loop {
            for s in 0..cur.sessions.len() {
                for i in (0..cur.sessions[s].len()).rev() {
                    let cand = remove_query(&cur, s, i);
                    if try_keep(&mut cur, cand, &mut runs, &mut last_report) {
                        improved = true;
                        continue 'queries;
                    }
                }
            }
            break;
        }

        // Pass 2: drop or simplify faults.
        if cur.faults.is_some() {
            let mut cand = cur.clone();
            cand.faults = None;
            if try_keep(&mut cur, cand, &mut runs, &mut last_report) {
                improved = true;
            } else {
                let zeroings: Vec<fn(&mut crate::scenario::FaultSpec)> = vec![
                    |f| f.transient_permille = 0,
                    |f| f.timeout_permille = 0,
                    |f| f.latency_spike_permille = 0,
                    |f| f.disconnect_permille = 0,
                    |f| f.outages.clear(),
                ];
                for zero in zeroings {
                    let mut cand = cur.clone();
                    let spec = cand.faults.as_mut().expect("checked above");
                    zero(spec);
                    if cand != cur && try_keep(&mut cur, cand, &mut runs, &mut last_report) {
                        improved = true;
                    }
                }
            }
        }

        // Pass 3: drop whole sessions (emptied ones go for free).
        'sessions: loop {
            if cur.sessions.len() <= 1 {
                break;
            }
            for s in (0..cur.sessions.len()).rev() {
                if cur.sessions[s].is_empty() {
                    cur = remove_session(&cur, s);
                    improved = true;
                    continue 'sessions;
                }
                let cand = remove_session(&cur, s);
                if try_keep(&mut cur, cand, &mut runs, &mut last_report) {
                    improved = true;
                    continue 'sessions;
                }
            }
            break;
        }
        // A lone empty session can remain if the failure is end-of-run
        // only; keep it, the scenario must stay valid.

        // Pass 4: capacity. Prefer removing the pressure knob entirely;
        // if the failure needs it, leave it untouched.
        if cur.capacity_bytes.is_some() {
            let mut cand = cur.clone();
            cand.capacity_bytes = None;
            if try_keep(&mut cur, cand, &mut runs, &mut last_report) {
                improved = true;
            }
        }

        // Pass 5 (last): representation knob. A repro that fails either
        // way reads simpler row-mode; one that *needs* columnar keeps it
        // — which itself localizes the bug to the columnar path.
        if cur.columnar {
            let mut cand = cur.clone();
            cand.columnar = false;
            if try_keep(&mut cur, cand, &mut runs, &mut last_report) {
                improved = true;
            }
        }

        if !improved {
            break;
        }
    }

    if last_report.is_none() {
        let (_, report) = fails(&cur, opts);
        runs += 1;
        last_report = report;
    }
    ShrinkOutcome {
        scenario: cur,
        runs,
        report: last_report,
    }
}

/// Render a ready-to-paste regression test for a (shrunk) scenario.
pub fn regression_test(name: &str, sc: &SimScenario) -> String {
    let json = sc.to_json();
    format!(
        "#[test]\n\
         fn {name}() {{\n\
         \x20   // Shrunk from seed {seed}; replays deterministically.\n\
         \x20   let sc = braid_sim::SimScenario::from_json(r##\"{json}\"##).expect(\"scenario parses\");\n\
         \x20   let report = braid_sim::run_scenario(&sc, &braid_sim::SimOptions::default())\n\
         \x20       .expect(\"harness runs\");\n\
         \x20   assert!(report.passed(), \"{{:#?}}\", report.violations);\n\
         }}\n",
        seed = sc.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::SimBug;

    #[test]
    fn schedule_stays_consistent_under_mutations() {
        for seed in 0..50u64 {
            let sc = SimScenario::generate(seed);
            for s in 0..sc.sessions.len() {
                for i in 0..sc.sessions[s].len() {
                    remove_query(&sc, s, i).validate().expect("query removal");
                }
                if sc.sessions.len() > 1 {
                    remove_session(&sc, s).validate().expect("session removal");
                }
            }
        }
    }

    #[test]
    fn shrinks_an_injected_bug_to_a_tiny_repro() {
        // DropLastTuple{every:1} fails on the first non-empty answer, so
        // the minimum is one query (plus whatever the oracle needs).
        let sc = (0..100u64)
            .map(SimScenario::generate)
            .find(|s| !s.faults_active() && s.query_count() >= 6)
            .expect("fault-free scenario");
        let opts = SimOptions {
            bug: SimBug::DropLastTuple { every: 1 },
            ..SimOptions::default()
        };
        let (failing, _) = fails(&sc, &opts);
        assert!(failing, "bug must make the scenario fail");
        let out = shrink(&sc, &opts);
        assert!(
            out.scenario.query_count() <= 3,
            "repro must be ≤3 queries, got {}",
            out.scenario.query_count()
        );
        assert_eq!(out.scenario.sessions.len(), 1);
        // Determinism: shrinking again lands on the identical scenario.
        let again = shrink(&sc, &opts);
        assert_eq!(again.scenario, out.scenario);
        assert_eq!(again.runs, out.runs);
    }

    #[test]
    fn regression_test_embeds_a_replayable_scenario() {
        let sc = SimScenario::generate(11);
        let src = regression_test("repro_seed_11", &sc);
        assert!(src.contains("braid_sim::SimScenario::from_json"));
        // The embedded JSON must survive extraction.
        let start = src.find("r##\"").unwrap() + 4;
        let end = src.find("\"##").unwrap();
        let back = SimScenario::from_json(&src[start..end]).expect("embedded JSON parses");
        assert_eq!(back, sc);
    }
}
