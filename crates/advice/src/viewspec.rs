//! View specifications: relation definitions with binding annotations.
//!
//! §4.2.1: "The general form of a view specification is
//! `dᵢ(...) =def cⱼ(...) & ... & cₙ(...) (Rj,...,Rk)`" where the `c`s are
//! cache elements and the rule identifiers record provenance "for human
//! consumption". "Since every occurrence of a dᵢ is unique, it is possible
//! to augment the relation definitions with consumer and producer
//! annotations" — `X^` marks a free (producer) variable, `Y?` a bound
//! (consumer) one.

use braid_caql::{Atom, Binding, ConjunctiveQuery, Literal, Term};
use std::collections::BTreeMap;
use std::fmt;

/// A head-argument annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Annotation {
    /// Producer (`^`): the query will produce bindings for this argument.
    Producer,
    /// Consumer (`?`): the query will carry a constant here.
    Consumer,
    /// Unannotated (e.g. antecedent-only variables, which "are not
    /// annotated since the CMS will be responsible for ordering").
    None,
}

impl Annotation {
    /// The paper's symbol, or empty for `None`.
    pub fn symbol(self) -> &'static str {
        match self {
            Annotation::Producer => "^",
            Annotation::Consumer => "?",
            Annotation::None => "",
        }
    }

    /// Convert to a [`Binding`] (producer = free, consumer = bound).
    pub fn binding(self) -> Option<Binding> {
        match self {
            Annotation::Producer => Some(Binding::Free),
            Annotation::Consumer => Some(Binding::Bound),
            Annotation::None => None,
        }
    }
}

/// A view specification: `d(params) =def body (rule ids)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewSpec {
    /// The defined relation name (`d1`, `d2`, ...).
    pub name: String,
    /// Head parameters with annotations, in order.
    pub params: Vec<(Term, Annotation)>,
    /// Body literals (cache elements: base relations, views, evaluable
    /// functions).
    pub body: Vec<Literal>,
    /// Source rule identifiers — "added here for human consumption".
    pub rule_ids: Vec<String>,
}

impl ViewSpec {
    /// Build a view spec.
    pub fn new(
        name: impl Into<String>,
        params: Vec<(Term, Annotation)>,
        body: Vec<Literal>,
        rule_ids: Vec<String>,
    ) -> ViewSpec {
        ViewSpec {
            name: name.into(),
            params,
            body,
            rule_ids,
        }
    }

    /// Arity of the defined relation.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// The head as a plain atom (annotations stripped).
    pub fn head(&self) -> Atom {
        Atom::new(
            self.name.clone(),
            self.params.iter().map(|(t, _)| t.clone()).collect(),
        )
    }

    /// The definition as a conjunctive query (annotations stripped) —
    /// "there is a direct mapping between view specifications and CAQL
    /// queries produced by the IE" (§4.2.1).
    pub fn to_query(&self) -> ConjunctiveQuery {
        ConjunctiveQuery::new(self.head(), self.body.clone())
    }

    /// Annotation of each parameter position.
    pub fn annotations(&self) -> Vec<Annotation> {
        self.params.iter().map(|(_, a)| *a).collect()
    }

    /// Parameter positions annotated as consumers — "a prime candidate for
    /// indexing" (§4.2.1).
    pub fn consumer_positions(&self) -> Vec<usize> {
        self.params
            .iter()
            .enumerate()
            .filter(|(_, (_, a))| *a == Annotation::Consumer)
            .map(|(i, _)| i)
            .collect()
    }

    /// True when no parameter is a consumer — "strictly a producer
    /// relation", best produced lazily and unindexed (§4.2.1).
    pub fn strictly_producer(&self) -> bool {
        self.params.iter().all(|(_, a)| *a != Annotation::Consumer)
    }

    /// Map from annotated head variable name to its annotation.
    pub fn var_annotations(&self) -> BTreeMap<&str, Annotation> {
        self.params
            .iter()
            .filter_map(|(t, a)| t.as_var().map(|v| (v, *a)))
            .collect()
    }

    /// The base relations referenced in the body — the "simplest kind of
    /// advice ... an unordered list b1, b2, b3, ... of all the base
    /// relations referenced" (§4.2) is derived from these.
    pub fn base_relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for l in &self.body {
            if let Literal::Atom(a) = l {
                if !out.contains(&a.pred.as_str()) {
                    out.push(a.pred.as_str());
                }
            }
        }
        out
    }
}

impl fmt::Display for ViewSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ann = self.var_annotations();
        let fmt_term = |t: &Term| -> String {
            match t {
                Term::Var(v) => format!(
                    "{v}{}",
                    ann.get(v.as_str())
                        .copied()
                        .unwrap_or(Annotation::None)
                        .symbol()
                ),
                c => c.to_string(),
            }
        };
        write!(f, "{}(", self.name)?;
        for (i, (t, a)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match t {
                Term::Var(v) => write!(f, "{v}{}", a.symbol())?,
                c => write!(f, "{c}")?,
            }
        }
        write!(f, ") =def ")?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            match l {
                Literal::Atom(a) => {
                    write!(f, "{}(", a.pred)?;
                    for (j, t) in a.args.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{}", fmt_term(t))?;
                    }
                    write!(f, ")")?;
                }
                other => write!(f, "{other}")?,
            }
        }
        if !self.rule_ids.is_empty() {
            write!(f, " ({})", self.rule_ids.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid_caql::parse_rule;

    /// The paper's d2 from Example 1:
    /// `d2(X^, Y?) =def b2(X^, Z) & b3(Z, c2, Y?) (R2)`.
    fn d2() -> ViewSpec {
        let q = parse_rule("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y).").unwrap();
        ViewSpec::new(
            "d2",
            vec![
                (Term::var("X"), Annotation::Producer),
                (Term::var("Y"), Annotation::Consumer),
            ],
            q.body,
            vec!["R2".into()],
        )
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            d2().to_string(),
            "d2(X^, Y?) =def b2(X^, Z) & b3(Z, c2, Y?) (R2)"
        );
    }

    #[test]
    fn consumer_positions_and_producer_check() {
        let v = d2();
        assert_eq!(v.consumer_positions(), vec![1]);
        assert!(!v.strictly_producer());
    }

    #[test]
    fn to_query_strips_annotations() {
        let q = d2().to_query();
        assert_eq!(q.to_string(), "d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)");
        assert!(q.is_safe());
    }

    #[test]
    fn base_relations_deduplicated() {
        let v = d2();
        assert_eq!(v.base_relations(), vec!["b2", "b3"]);
    }

    #[test]
    fn strictly_producer_spec() {
        let q = parse_rule("d1(Y) :- b1(c1, Y).").unwrap();
        let v = ViewSpec::new(
            "d1",
            vec![(Term::var("Y"), Annotation::Producer)],
            q.body,
            vec!["R1".into()],
        );
        assert!(v.strictly_producer());
        assert_eq!(v.to_string(), "d1(Y^) =def b1(c1, Y^) (R1)");
    }
}
