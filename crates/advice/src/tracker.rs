//! Path expression tracking.
//!
//! "Path expression tracking deals with the problem of establishing an
//! association between a given CAQL query and a path expression. ... the
//! CMS must be able to keep track of the path expression element to which
//! a given CAQL query corresponds. Path expression tracking is crucial if
//! path expressions are to be of any use to the CMS" (§4.2.2).
//!
//! The tracker compiles a [`PathExpr`] into a small nondeterministic
//! automaton over query patterns. Observed IE-queries advance the
//! automaton; [`PathTracker::predict_next`] returns the views that may be
//! requested next, and [`PathTracker::distance_to`] answers the paper's
//! replacement question ("d₁ will be required for one of the next two
//! queries. If the CMS needs to replace some cache element it is clear
//! that d₁ is not the best candidate").
//!
//! Approximations (advisory only — tracking never affects correctness):
//! repetition bounds are tracked as `may_skip` / `may_repeat` (the counts
//! themselves carry cardinality hints for prefetch sizing, not hard
//! limits), and an alternation with selection term `s > 1` (or none) may
//! emit several members per occurrence in any order.

use crate::pathexpr::{PathExpr, PatternArg, QueryPattern};
use braid_caql::{Atom, Term, Value};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

#[derive(Debug, Clone)]
enum Transition {
    Eps(usize),
    Pat(usize, usize), // (pattern index, target state)
}

/// The path-expression tracking automaton.
///
/// ```
/// use braid_advice::{parse_path_expr, PathTracker};
/// use braid_caql::parse_atom;
///
/// // The paper's Example 1 expression.
/// let expr = parse_path_expr("(d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>").unwrap();
/// let mut t = PathTracker::new(&expr);
/// assert!(t.advance(&parse_atom("d1(Y)").unwrap()));
/// assert!(t.advance(&parse_atom("d2(X, c6)").unwrap()));
/// // The predicted next query carries the observed constant — the unit
/// // of prefetching (§5.3.1).
/// let next = t.predict_next_queries();
/// assert!(next.iter().any(|p| p.to_string() == "d3(X^, c6)"));
/// ```
#[derive(Debug, Clone)]
pub struct PathTracker {
    patterns: Vec<QueryPattern>,
    states: Vec<Vec<Transition>>,
    accept: usize,
    current: BTreeSet<usize>,
    lost: bool,
    observed: usize,
    // Constants observed for named Bound/Free pattern variables, used to
    // instantiate upcoming patterns for prefetching (§5.3.1).
    bindings: BTreeMap<String, Value>,
}

impl PathTracker {
    /// Compile a tracker for a path expression.
    pub fn new(expr: &PathExpr) -> PathTracker {
        let mut t = PathTracker {
            patterns: Vec::new(),
            states: Vec::new(),
            accept: 0,
            current: BTreeSet::new(),
            lost: false,
            observed: 0,
            bindings: BTreeMap::new(),
        };
        let (start, end) = t.compile(expr);
        t.accept = end;
        t.current = t.closure([start].into_iter().collect());
        t
    }

    fn new_state(&mut self) -> usize {
        self.states.push(Vec::new());
        self.states.len() - 1
    }

    fn eps(&mut self, from: usize, to: usize) {
        self.states[from].push(Transition::Eps(to));
    }

    fn compile(&mut self, e: &PathExpr) -> (usize, usize) {
        match e {
            PathExpr::Pattern(p) => {
                let s = self.new_state();
                let t = self.new_state();
                let idx = self.patterns.len();
                self.patterns.push(p.clone());
                self.states[s].push(Transition::Pat(idx, t));
                (s, t)
            }
            PathExpr::Seq { items, rep } => {
                let s = self.new_state();
                let t = self.new_state();
                // Concatenate members, remembering the junction after each.
                let mut junctions = Vec::with_capacity(items.len());
                let mut prev = s;
                for item in items {
                    let (is, it) = self.compile(item);
                    self.eps(prev, is);
                    prev = it;
                    junctions.push(it);
                }
                let j = prev; // junction after the last member
                self.eps(j, t);
                if rep.may_skip() {
                    self.eps(s, t);
                }
                if rep.may_repeat() {
                    self.eps(j, s);
                }
                // Mid-sequence abandonment: the IE may stop pursuing the
                // remaining *pattern* members of a sequence occurrence
                // (backtracking found enough answers, or a goal failed) —
                // this is why the paper reads Example 1 as "d2(X,c)
                // *possibly* followed by d3(X,c)" and why, mid-sequence,
                // the tracked prediction includes the enclosing loop's
                // restart. Grouping members are never dropped this way: an
                // alternation, once reached, emits "one or more" of its
                // members (§4.2.2), and a nested sequence declares its own
                // skippability through its repetition's lower bound.
                for (i, &ji) in junctions
                    .iter()
                    .enumerate()
                    .take(junctions.len().saturating_sub(1))
                {
                    let rest_droppable = items[i + 1..].iter().all(|m| match m {
                        PathExpr::Pattern(_) => true,
                        PathExpr::Seq { rep, .. } => rep.may_skip(),
                        PathExpr::Alt { .. } => false,
                    });
                    if rest_droppable {
                        self.eps(ji, j);
                    }
                }
                (s, t)
            }
            PathExpr::Alt { items, select } => {
                let s = self.new_state();
                let t = self.new_state();
                for item in items {
                    let (is, it) = self.compile(item);
                    self.eps(s, is);
                    self.eps(it, t);
                }
                // Selection term > 1 (or unspecified): several members may
                // be emitted per occurrence, in any order.
                if select.map(|k| k > 1).unwrap_or(true) {
                    self.eps(t, s);
                }
                (s, t)
            }
        }
    }

    fn closure(&self, mut set: BTreeSet<usize>) -> BTreeSet<usize> {
        let mut queue: VecDeque<usize> = set.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            for tr in &self.states[s] {
                if let Transition::Eps(t) = tr {
                    if set.insert(*t) {
                        queue.push_back(*t);
                    }
                }
            }
        }
        set
    }

    /// Observe an IE-query head. Returns `true` when the query matched the
    /// expression at the current position; `false` means tracking was lost
    /// (the tracker stays lost until [`PathTracker::reset`]).
    pub fn advance(&mut self, query_head: &Atom) -> bool {
        if self.lost {
            return false;
        }
        let mut next = BTreeSet::new();
        let mut matched_patterns: Vec<usize> = Vec::new();
        for &s in &self.current {
            for tr in &self.states[s] {
                if let Transition::Pat(p, t) = tr {
                    if self.patterns[*p].matches(query_head) {
                        next.insert(*t);
                        matched_patterns.push(*p);
                    }
                }
            }
        }
        if next.is_empty() {
            self.lost = true;
            return false;
        }
        // Record observed constants for named pattern variables.
        for p in matched_patterns {
            let pattern = self.patterns[p].clone();
            for (arg, term) in pattern.args.iter().zip(&query_head.args) {
                if let (PatternArg::Bound(name), Term::Const(v)) = (arg, term) {
                    self.bindings.insert(name.clone(), v.clone());
                }
            }
        }
        self.current = self.closure(next);
        self.observed += 1;
        true
    }

    /// Views that may be requested by the very next IE-query.
    pub fn predict_next(&self) -> BTreeSet<&str> {
        if self.lost {
            return BTreeSet::new();
        }
        let mut out = BTreeSet::new();
        for &s in &self.current {
            for tr in &self.states[s] {
                if let Transition::Pat(p, _) = tr {
                    out.insert(self.patterns[*p].view.as_str());
                }
            }
        }
        out
    }

    /// The next possible query *patterns*, with any named bound variables
    /// instantiated to their last observed constants — the unit of
    /// prefetching ("the CMS may decide processing d3(X,c) soon after it
    /// processes d2(X,c) and before it actually receives d3(X,c) from the
    /// IE", §5.3.1).
    pub fn predict_next_queries(&self) -> Vec<QueryPattern> {
        if self.lost {
            return Vec::new();
        }
        let mut out: Vec<QueryPattern> = Vec::new();
        for &s in &self.current {
            for tr in &self.states[s] {
                if let Transition::Pat(p, _) = tr {
                    let mut pat = self.patterns[*p].clone();
                    for a in &mut pat.args {
                        if let PatternArg::Bound(name) = a {
                            if let Some(v) = self.bindings.get(name) {
                                *a = PatternArg::Const(v.clone());
                            }
                        }
                    }
                    if !out.contains(&pat) {
                        out.push(pat);
                    }
                }
            }
        }
        out
    }

    /// Minimum number of further queries until `view` may be needed:
    /// `Some(1)` means it may be the very next query. `None` means the
    /// view cannot appear again — the perfect replacement victim.
    pub fn distance_to(&self, view: &str) -> Option<usize> {
        if self.lost {
            return None;
        }
        // BFS over pattern transitions, counting pattern hops.
        let mut depth_of: BTreeMap<usize, usize> = BTreeMap::new();
        let mut frontier: BTreeSet<usize> = self.current.clone();
        let mut depth = 1;
        let mut visited: BTreeSet<usize> = frontier.clone();
        while !frontier.is_empty() && depth <= self.states.len() + 1 {
            let mut next = BTreeSet::new();
            for &s in &frontier {
                for tr in &self.states[s] {
                    if let Transition::Pat(p, t) = tr {
                        if self.patterns[*p].view == view {
                            return Some(depth);
                        }
                        depth_of.entry(*t).or_insert(depth);
                        for c in self.closure([*t].into_iter().collect()) {
                            if visited.insert(c) {
                                next.insert(c);
                            }
                        }
                    }
                }
            }
            frontier = next;
            depth += 1;
        }
        None
    }

    /// Has tracking been lost (an unpredicted query arrived)?
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    /// Number of queries successfully tracked.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Constants observed so far for named pattern variables.
    pub fn bindings(&self) -> &BTreeMap<String, Value> {
        &self.bindings
    }

    /// Restart tracking from the beginning of the expression (a new
    /// session over the same advice).
    pub fn reset(&mut self) {
        self.lost = false;
        self.observed = 0;
        self.bindings.clear();
        self.current = self.closure([0].into_iter().collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathexpr::{PathExpr, Repetition};

    fn pat(view: &str, args: Vec<PatternArg>) -> PathExpr {
        PathExpr::pattern(QueryPattern::new(view, args))
    }

    fn free(v: &str) -> PatternArg {
        PatternArg::Free(v.into())
    }

    fn bound(v: &str) -> PatternArg {
        PatternArg::Bound(v.into())
    }

    fn head(src: &str) -> Atom {
        braid_caql::parse_atom(src).unwrap()
    }

    /// Example 1: (d1(Y^), (d2(X^,Y?), d3(X^,Y?))<0,|Y|>)<1,1>
    fn example1() -> PathExpr {
        PathExpr::seq(
            vec![
                pat("d1", vec![free("Y")]),
                PathExpr::seq(
                    vec![
                        pat("d2", vec![free("X"), bound("Y")]),
                        pat("d3", vec![free("X"), bound("Y")]),
                    ],
                    Repetition::per_binding("Y"),
                ),
            ],
            Repetition::once(),
        )
    }

    /// §4.2.2 tracking excerpt:
    /// (d1(X?,Y^), [(d2(Z^,Y?), d3(Z?)), (d4(U^,Y?), d5(U?))]^1)<0,|X|>
    fn excerpt() -> PathExpr {
        PathExpr::seq(
            vec![
                pat("d1", vec![bound("X"), free("Y")]),
                PathExpr::alt(
                    vec![
                        PathExpr::seq(
                            vec![
                                pat("d2", vec![free("Z"), bound("Y")]),
                                pat("d3", vec![bound("Z")]),
                            ],
                            Repetition::once(),
                        ),
                        PathExpr::seq(
                            vec![
                                pat("d4", vec![free("U"), bound("Y")]),
                                pat("d5", vec![bound("U")]),
                            ],
                            Repetition::once(),
                        ),
                    ],
                    Some(1),
                ),
            ],
            Repetition {
                lo: crate::pathexpr::RepBound::Count(0),
                hi: crate::pathexpr::RepBound::Card("X".into()),
            },
        )
    }

    #[test]
    fn example1_tracks_full_session() {
        let mut t = PathTracker::new(&example1());
        assert!(t.advance(&head("d1(Y)")));
        assert!(t.advance(&head("d2(X, c6)")));
        assert!(t.advance(&head("d3(X, c6)")));
        assert!(t.advance(&head("d2(X, c7)")));
        assert!(!t.is_lost());
        assert_eq!(t.observed(), 4);
    }

    #[test]
    fn example1_initial_prediction_is_d1() {
        let t = PathTracker::new(&example1());
        let p: Vec<_> = t.predict_next().into_iter().collect();
        assert_eq!(p, vec!["d1"]);
    }

    #[test]
    fn example1_no_second_d1() {
        // "No additional d1(Y) queries will occur since the repetition
        // term is <1,1>."
        let mut t = PathTracker::new(&example1());
        t.advance(&head("d1(Y)"));
        assert!(!t.predict_next().contains("d1"));
        assert_eq!(t.distance_to("d1"), None);
        assert!(!t.advance(&head("d1(Y)")));
        assert!(t.is_lost());
    }

    #[test]
    fn example1_inner_sequence_may_skip_d3() {
        // After d2, the next may be d3 (continue) or d2 (loop).
        let mut t = PathTracker::new(&example1());
        t.advance(&head("d1(Y)"));
        t.advance(&head("d2(X, c6)"));
        let p: Vec<_> = t.predict_next().into_iter().collect();
        assert_eq!(p, vec!["d2", "d3"]);
    }

    #[test]
    fn excerpt_valid_sequences_accepted() {
        // Paper: "d1, d2, d3" and "d1, d4, d1, d2, d3, d1" and
        // "d1, d2, d3, d1, d4, d5" are valid.
        for seq in [
            vec!["d1(c, Y)", "d2(Z, c9)", "d3(c)"],
            vec![
                "d1(c, Y)",
                "d4(U, c9)",
                "d1(c, Y)",
                "d2(Z, c9)",
                "d3(c)",
                "d1(c, Y)",
            ],
            vec![
                "d1(c, Y)",
                "d2(Z, c9)",
                "d3(c)",
                "d1(c, Y)",
                "d4(U, c9)",
                "d5(c)",
            ],
        ] {
            let mut t = PathTracker::new(&excerpt());
            for q in &seq {
                assert!(t.advance(&head(q)), "sequence {seq:?} failed at {q}");
            }
        }
    }

    #[test]
    fn excerpt_predictions_follow_paper() {
        // "After the CMS receives the CAQL query d1 it can predict that
        // the next query (if any) will involve either d2 or d4."
        let mut t = PathTracker::new(&excerpt());
        t.advance(&head("d1(c, Y)"));
        let p: Vec<_> = t.predict_next().into_iter().collect();
        assert_eq!(p, vec!["d2", "d4"]);
        // "Assume that the next query involves d2. Now the CMS can predict
        // that the next query will involve d3 or d1."
        t.advance(&head("d2(Z, c9)"));
        let p: Vec<_> = t.predict_next().into_iter().collect();
        assert_eq!(p, vec!["d1", "d3"]);
        // "if the next query involves d3 then the query after that (if
        // any) will involve d1. Thus, d1 will be required for one of the
        // next two queries."
        assert_eq!(t.distance_to("d1"), Some(1));
        t.advance(&head("d3(c)"));
        let p: Vec<_> = t.predict_next().into_iter().collect();
        assert_eq!(p, vec!["d1"]);
        assert_eq!(t.distance_to("d4"), Some(2));
    }

    #[test]
    fn mutual_exclusion_selection_term() {
        // With select=1, after finishing (d2, d3) the alternation cannot
        // emit (d4, d5) in the same occurrence: d4 only reachable through
        // a new d1.
        let mut t = PathTracker::new(&excerpt());
        t.advance(&head("d1(c, Y)"));
        t.advance(&head("d2(Z, c9)"));
        t.advance(&head("d3(c)"));
        assert!(!t.predict_next().contains("d4"));
        assert!(!t.advance(&head("d4(U, c9)")));
    }

    #[test]
    fn bound_constants_flow_into_predictions() {
        // After d2(X, c6), the predicted d3 carries the constant c6 — the
        // prefetchable query of §5.3.1.
        let mut t = PathTracker::new(&example1());
        t.advance(&head("d1(Y)"));
        t.advance(&head("d2(X, c6)"));
        let preds = t.predict_next_queries();
        let d3 = preds.iter().find(|p| p.view == "d3").unwrap();
        assert_eq!(d3.to_string(), "d3(X^, c6)");
        assert_eq!(t.bindings().get("Y"), Some(&Value::str("c6")));
    }

    #[test]
    fn lost_tracking_reports_and_resets() {
        let mut t = PathTracker::new(&example1());
        assert!(!t.advance(&head("zz(A)")));
        assert!(t.is_lost());
        assert!(t.predict_next().is_empty());
        assert!(t.predict_next_queries().is_empty());
        assert_eq!(t.distance_to("d1"), None);
        t.reset();
        assert!(!t.is_lost());
        assert!(t.advance(&head("d1(Y)")));
    }

    #[test]
    fn empty_sequence_compiles_without_panicking() {
        // An IE goal with no DB access emits an empty sequence.
        let e = PathExpr::seq(vec![], Repetition::once());
        let mut t = PathTracker::new(&e);
        assert!(t.predict_next().is_empty());
        assert!(!t.advance(&head("d1(Y)")));
    }

    #[test]
    fn alternation_without_selection_allows_multiple_members() {
        let e = PathExpr::alt(vec![pat("a", vec![]), pat("b", vec![])], None);
        let mut t = PathTracker::new(&e);
        assert!(t.advance(&head("a()")));
        assert!(t.advance(&head("b()")));
        assert!(t.advance(&head("a()")));
    }
}
