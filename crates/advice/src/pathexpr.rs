//! Path expressions: predictions of relation accessing order, repetition
//! and binding patterns (§4.2.2).

use braid_caql::{Atom, Term, Value};
use std::collections::BTreeSet;
use std::fmt;

/// One argument position of a query pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternArg {
    /// `X^` — the query will have a free variable here.
    Free(String),
    /// `Y?` — the query will have some constant here (value unknown at
    /// advice time).
    Bound(String),
    /// A specific constant known at advice time.
    Const(Value),
}

impl fmt::Display for PatternArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternArg::Free(v) => write!(f, "{v}^"),
            PatternArg::Bound(v) => write!(f, "{v}?"),
            PatternArg::Const(c) => write!(f, "{c}"),
        }
    }
}

/// "A query pattern has the general form dᵢ(T1,...,Tn) where dᵢ is the
/// identifier of a view specification" (§4.2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPattern {
    /// The view specification name.
    pub view: String,
    /// Argument abstractions.
    pub args: Vec<PatternArg>,
}

impl QueryPattern {
    /// Build a pattern.
    pub fn new(view: impl Into<String>, args: Vec<PatternArg>) -> QueryPattern {
        QueryPattern {
            view: view.into(),
            args,
        }
    }

    /// Does a concrete IE-query head match this pattern? The view name and
    /// arity must agree; `Bound` matches a constant, `Const(c)` matches
    /// exactly `c`, and `Free` matches anything — patterns are
    /// "abstraction\[s\] of an individual query" (§4.2.2), and an argument
    /// predicted free may still arrive instantiated when an IE-internal
    /// goal bound it first (the paper's Example 2 keeps `d2(X^, Y?)` even
    /// though the guard k3(X) binds X before the query is emitted).
    pub fn matches(&self, query_head: &Atom) -> bool {
        if query_head.pred != self.view || query_head.arity() != self.args.len() {
            return false;
        }
        self.args
            .iter()
            .zip(&query_head.args)
            .all(|(p, t)| match (p, t) {
                (PatternArg::Free(_), _) => true,
                (PatternArg::Bound(_), Term::Const(_)) => true,
                (PatternArg::Const(c), Term::Const(v)) => c == v,
                _ => false,
            })
    }
}

impl fmt::Display for QueryPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.view)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A bound of a repetition count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepBound {
    /// A known constant.
    Count(u64),
    /// The cardinality of a variable's binding set, written `|Y|` — known
    /// only once the producing query has run.
    Card(String),
    /// No upper bound.
    Unbounded,
}

impl fmt::Display for RepBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepBound::Count(n) => write!(f, "{n}"),
            RepBound::Card(v) => write!(f, "|{v}|"),
            RepBound::Unbounded => write!(f, "*"),
        }
    }
}

/// "Associated with each sequence is a repetition count which provides a
/// lower and upper bound on the number of times the sequence will be
/// repeated" (§4.2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repetition {
    /// Lower bound.
    pub lo: RepBound,
    /// Upper bound.
    pub hi: RepBound,
}

impl Repetition {
    /// `<1,1>` — exactly once.
    pub fn once() -> Repetition {
        Repetition {
            lo: RepBound::Count(1),
            hi: RepBound::Count(1),
        }
    }

    /// `<lo,hi>` with constant bounds.
    pub fn counts(lo: u64, hi: u64) -> Repetition {
        Repetition {
            lo: RepBound::Count(lo),
            hi: RepBound::Count(hi),
        }
    }

    /// `<0,|var|>` — the common "once per binding" shape.
    pub fn per_binding(var: impl Into<String>) -> Repetition {
        Repetition {
            lo: RepBound::Count(0),
            hi: RepBound::Card(var.into()),
        }
    }

    /// May the sequence be skipped entirely?
    pub fn may_skip(&self) -> bool {
        matches!(self.lo, RepBound::Count(0))
    }

    /// May the sequence repeat more than once?
    pub fn may_repeat(&self) -> bool {
        match &self.hi {
            RepBound::Count(n) => *n > 1,
            RepBound::Card(_) | RepBound::Unbounded => true,
        }
    }
}

impl fmt::Display for Repetition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", self.lo, self.hi)
    }
}

/// A path expression: "the primary component of a path expression is the
/// path expression element which may be either a single query pattern or a
/// grouping" — a sequence `( ... )<lo,hi>` or an alternation `[ ... ]^s`
/// (§4.2.2).
#[derive(Debug, Clone, PartialEq)]
pub enum PathExpr {
    /// A single query pattern.
    Pattern(QueryPattern),
    /// An ordered sequence with a repetition count.
    Seq {
        /// Member expressions, in emission order.
        items: Vec<PathExpr>,
        /// How many times the whole sequence repeats.
        rep: Repetition,
    },
    /// An unordered alternation; "of the members of the alternation, one
    /// or more may be emitted ... and some members may never appear".
    Alt {
        /// Member expressions.
        items: Vec<PathExpr>,
        /// Optional selection term: "the maximum number of elements that
        /// may be selected during any occurrence" (1 ⇒ mutually
        /// exclusive).
        select: Option<usize>,
    },
}

impl PathExpr {
    /// Wrap a pattern.
    pub fn pattern(p: QueryPattern) -> PathExpr {
        PathExpr::Pattern(p)
    }

    /// A sequence with the given repetition.
    pub fn seq(items: Vec<PathExpr>, rep: Repetition) -> PathExpr {
        PathExpr::Seq { items, rep }
    }

    /// An alternation.
    pub fn alt(items: Vec<PathExpr>, select: Option<usize>) -> PathExpr {
        PathExpr::Alt { items, select }
    }

    /// All view names mentioned anywhere in the expression.
    pub fn views(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_views(&mut out);
        out
    }

    fn collect_views<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            PathExpr::Pattern(p) => {
                out.insert(p.view.as_str());
            }
            PathExpr::Seq { items, .. } | PathExpr::Alt { items, .. } => {
                for i in items {
                    i.collect_views(out);
                }
            }
        }
    }

    /// Number of query patterns in the expression.
    pub fn pattern_count(&self) -> usize {
        match self {
            PathExpr::Pattern(_) => 1,
            PathExpr::Seq { items, .. } | PathExpr::Alt { items, .. } => {
                items.iter().map(PathExpr::pattern_count).sum()
            }
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathExpr::Pattern(p) => write!(f, "{p}"),
            PathExpr::Seq { items, rep } => {
                write!(f, "(")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "){rep}")
            }
            PathExpr::Alt { items, select } => {
                write!(f, "[")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")?;
                if let Some(s) = select {
                    write!(f, "^{s}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 1 path expression:
    /// `(d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>`.
    pub(crate) fn example1() -> PathExpr {
        PathExpr::seq(
            vec![
                PathExpr::pattern(QueryPattern::new("d1", vec![PatternArg::Free("Y".into())])),
                PathExpr::seq(
                    vec![
                        PathExpr::pattern(QueryPattern::new(
                            "d2",
                            vec![PatternArg::Free("X".into()), PatternArg::Bound("Y".into())],
                        )),
                        PathExpr::pattern(QueryPattern::new(
                            "d3",
                            vec![PatternArg::Free("X".into()), PatternArg::Bound("Y".into())],
                        )),
                    ],
                    Repetition::per_binding("Y"),
                ),
            ],
            Repetition::once(),
        )
    }

    #[test]
    fn display_matches_paper_example1() {
        assert_eq!(
            example1().to_string(),
            "(d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>"
        );
    }

    #[test]
    fn display_matches_paper_example2_alternation() {
        // `(d1(Y^), ([d2(X^, Y?), d3(X^, Y?)])<0,|Y|>)<1,1>`
        let e = PathExpr::seq(
            vec![
                PathExpr::pattern(QueryPattern::new("d1", vec![PatternArg::Free("Y".into())])),
                PathExpr::seq(
                    vec![PathExpr::alt(
                        vec![
                            PathExpr::pattern(QueryPattern::new(
                                "d2",
                                vec![PatternArg::Free("X".into()), PatternArg::Bound("Y".into())],
                            )),
                            PathExpr::pattern(QueryPattern::new(
                                "d3",
                                vec![PatternArg::Free("X".into()), PatternArg::Bound("Y".into())],
                            )),
                        ],
                        None,
                    )],
                    Repetition::per_binding("Y"),
                ),
            ],
            Repetition::once(),
        );
        assert_eq!(
            e.to_string(),
            "(d1(Y^), ([d2(X^, Y?), d3(X^, Y?)])<0,|Y|>)<1,1>"
        );
    }

    #[test]
    fn pattern_matching_on_query_heads() {
        let p = QueryPattern::new(
            "d2",
            vec![PatternArg::Free("X".into()), PatternArg::Bound("Y".into())],
        );
        let ok = Atom::new("d2", vec![Term::var("A"), Term::val("c6")]);
        // A free slot accepts a constant (guards may pre-bind it).
        let pre_bound = Atom::new("d2", vec![Term::val("c1"), Term::val("c6")]);
        // A bound slot must carry a constant.
        let unbound_consumer = Atom::new("d2", vec![Term::var("A"), Term::var("B")]);
        let wrong_view = Atom::new("d3", vec![Term::var("A"), Term::val("c6")]);
        assert!(p.matches(&ok));
        assert!(p.matches(&pre_bound));
        assert!(!p.matches(&unbound_consumer));
        assert!(!p.matches(&wrong_view));
    }

    #[test]
    fn const_pattern_arg_matches_exactly() {
        let p = QueryPattern::new("d", vec![PatternArg::Const(Value::str("c1"))]);
        assert!(p.matches(&Atom::new("d", vec![Term::val("c1")])));
        assert!(!p.matches(&Atom::new("d", vec![Term::val("c2")])));
    }

    #[test]
    fn views_and_counts() {
        let e = example1();
        let vs: Vec<_> = e.views().into_iter().collect();
        assert_eq!(vs, vec!["d1", "d2", "d3"]);
        assert_eq!(e.pattern_count(), 3);
    }

    #[test]
    fn repetition_helpers() {
        assert!(Repetition::per_binding("Y").may_skip());
        assert!(Repetition::per_binding("Y").may_repeat());
        assert!(!Repetition::once().may_skip());
        assert!(!Repetition::once().may_repeat());
        assert!(Repetition::counts(2, 5).may_repeat());
        assert!(!Repetition::counts(2, 5).may_skip());
    }
}
