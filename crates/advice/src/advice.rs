//! The advice bundle submitted at the start of an IE–CMS session.

use crate::pathexpr::PathExpr;
use crate::viewspec::ViewSpec;
use std::collections::BTreeSet;
use std::fmt;

/// Everything the IE tells the CMS before issuing queries: "the typical
/// mode of IE – CMS interaction consists of a set of sessions. At the
/// beginning of each session, the IE submits a set of advice. This is
/// followed by a sequence of CAQL queries" (§3).
///
/// Advice is strictly optional for the CMS ("the CMS only receives advice
/// and does not actively request it, nor is advice necessary for the CMS
/// to function", §3) — an empty [`Advice::none`] bundle is always valid.
#[derive(Debug, Clone, Default)]
pub struct Advice {
    /// The simplest form of advice: "an unordered list b1, b2, b3, ..., of
    /// all the base relations referenced in the problem graph" (§4.2).
    pub base_relations: Vec<String>,
    /// View specifications with binding annotations (§4.2.1).
    pub view_specs: Vec<ViewSpec>,
    /// The session's path expression (§4.2.2).
    pub path: Option<PathExpr>,
}

impl Advice {
    /// The empty bundle (no advice — the CMS still functions).
    pub fn none() -> Advice {
        Advice::default()
    }

    /// Advice consisting only of the base-relation list.
    pub fn base_relations(names: impl IntoIterator<Item = String>) -> Advice {
        Advice {
            base_relations: names.into_iter().collect(),
            ..Advice::default()
        }
    }

    /// Look up a view specification by name.
    pub fn view_spec(&self, name: &str) -> Option<&ViewSpec> {
        self.view_specs.iter().find(|v| v.name == name)
    }

    /// Every base relation mentioned anywhere (explicit list plus view
    /// spec bodies), deduplicated.
    pub fn all_base_relations(&self) -> BTreeSet<&str> {
        let mut out: BTreeSet<&str> = self.base_relations.iter().map(String::as_str).collect();
        for v in &self.view_specs {
            out.extend(v.base_relations());
        }
        out
    }

    /// True when the bundle carries nothing.
    pub fn is_empty(&self) -> bool {
        self.base_relations.is_empty() && self.view_specs.is_empty() && self.path.is_none()
    }
}

impl fmt::Display for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.base_relations.is_empty() {
            writeln!(f, "base: {}", self.base_relations.join(", "))?;
        }
        for v in &self.view_specs {
            writeln!(f, "{v}")?;
        }
        if let Some(p) = &self.path {
            writeln!(f, "path: {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_path_expr, parse_view_spec};

    #[test]
    fn empty_advice_is_valid() {
        let a = Advice::none();
        assert!(a.is_empty());
        assert!(a.all_base_relations().is_empty());
    }

    #[test]
    fn base_relations_union_view_spec_bodies() {
        let mut a = Advice::base_relations(vec!["b9".to_string()]);
        a.view_specs
            .push(parse_view_spec("d1(Y^) =def b1(c1, Y^) (R1)").unwrap());
        let all: Vec<_> = a.all_base_relations().into_iter().collect();
        assert_eq!(all, vec!["b1", "b9"]);
        assert!(a.view_spec("d1").is_some());
        assert!(a.view_spec("d2").is_none());
    }

    #[test]
    fn display_round_trips_components() {
        let mut a = Advice::none();
        a.view_specs
            .push(parse_view_spec("d1(Y^) =def b1(c1, Y^) (R1)").unwrap());
        a.path = Some(parse_path_expr("(d1(Y^))<1,1>").unwrap());
        let s = a.to_string();
        assert!(s.contains("d1(Y^) =def b1(c1, Y^) (R1)"));
        assert!(s.contains("path: (d1(Y^))<1,1>"));
    }
}
