//! Parsers for the paper's concrete advice notation.
//!
//! View specifications: `d2(X^, Y?) =def b2(X^, Z) & b3(Z, c2, Y?) (R2)`.
//! Path expressions: `(d1(Y^), (d2(X^,Y?), d3(X^,Y?))<0,|Y|>)<1,1>` and
//! alternations `[d2(X^,Y?), d3(X^,Y?)]^1`.

use crate::pathexpr::{PathExpr, PatternArg, QueryPattern, RepBound, Repetition};
use crate::viewspec::{Annotation, ViewSpec};
use braid_caql::{parse_rule, Term, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A failure to parse advice notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdviceParseError {
    /// Description of the problem.
    pub message: String,
}

impl AdviceParseError {
    fn new(m: impl Into<String>) -> Self {
        AdviceParseError { message: m.into() }
    }
}

impl fmt::Display for AdviceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "advice parse error: {}", self.message)
    }
}

impl std::error::Error for AdviceParseError {}

/// Parse a view specification in the paper's notation.
///
/// Annotations (`^` producer, `?` consumer) may appear on any occurrence
/// of a variable; they must be consistent. A trailing parenthesized
/// identifier list is read as the rule-id provenance.
///
/// # Errors
/// Returns an error for malformed syntax or inconsistent annotations.
pub fn parse_view_spec(src: &str) -> Result<ViewSpec, AdviceParseError> {
    let src = src.trim();
    // Split off a trailing rule-id list: " (R1,R2)".
    let (main, rule_ids) = match src.rfind('(') {
        Some(i) if src.ends_with(')') && i > 0 && src[..i].ends_with(' ') => {
            let ids: Vec<String> = src[i + 1..src.len() - 1]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            // Heuristic: rule ids are bare identifiers (no annotations or
            // nested parens).
            if !ids.is_empty()
                && ids
                    .iter()
                    .all(|s| s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'))
            {
                (src[..i].trim_end(), ids)
            } else {
                (src, Vec::new())
            }
        }
        _ => (src, Vec::new()),
    };

    // Collect annotations and strip them.
    let mut annotations: BTreeMap<String, Annotation> = BTreeMap::new();
    let mut stripped = String::with_capacity(main.len());
    let chars: Vec<char> = main.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_ascii_uppercase() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let var: String = chars[start..i].iter().collect();
            let ann = match chars.get(i) {
                Some('^') => {
                    i += 1;
                    Annotation::Producer
                }
                Some('?') => {
                    i += 1;
                    Annotation::Consumer
                }
                _ => Annotation::None,
            };
            if ann != Annotation::None {
                match annotations.get(&var) {
                    Some(prev) if *prev != ann => {
                        return Err(AdviceParseError::new(format!(
                            "variable {var} annotated both {} and {}",
                            prev.symbol(),
                            ann.symbol()
                        )))
                    }
                    _ => {
                        annotations.insert(var.clone(), ann);
                    }
                }
            }
            stripped.push_str(&var);
        } else {
            stripped.push(c);
            i += 1;
        }
    }

    // Normalize `=def` to `:-` and `&` to `,`, then reuse the CAQL parser.
    let normalized = stripped.replacen("=def", ":-", 1).replace('&', ",");
    let rule =
        parse_rule(&format!("{normalized}.")).map_err(|e| AdviceParseError::new(e.to_string()))?;

    let params: Vec<(Term, Annotation)> = rule
        .head
        .args
        .iter()
        .map(|t| {
            let a = t
                .as_var()
                .and_then(|v| annotations.get(v))
                .copied()
                .unwrap_or(Annotation::None);
            (t.clone(), a)
        })
        .collect();

    Ok(ViewSpec::new(
        rule.head.pred.clone(),
        params,
        rule.body,
        rule_ids,
    ))
}

/// Parse a path expression in the paper's notation.
///
/// # Errors
/// Returns an error for malformed syntax.
pub fn parse_path_expr(src: &str) -> Result<PathExpr, AdviceParseError> {
    let mut p = PathParser {
        chars: src.chars().collect(),
        i: 0,
    };
    let e = p.expr()?;
    p.skip_ws();
    if p.i < p.chars.len() {
        return Err(AdviceParseError::new(format!(
            "trailing input at position {}",
            p.i
        )));
    }
    Ok(e)
}

struct PathParser {
    chars: Vec<char>,
    i: usize,
}

impl PathParser {
    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.i)
            .map(|c| c.is_whitespace())
            .unwrap_or(false)
        {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.i).copied()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), AdviceParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(AdviceParseError::new(format!(
                "expected `{c}` at position {}",
                self.i
            )))
        }
    }

    fn ident(&mut self) -> Result<String, AdviceParseError> {
        self.skip_ws();
        let start = self.i;
        while self
            .chars
            .get(self.i)
            .map(|c| c.is_ascii_alphanumeric() || *c == '_')
            .unwrap_or(false)
        {
            self.i += 1;
        }
        if self.i == start {
            return Err(AdviceParseError::new(format!(
                "expected identifier at position {}",
                self.i
            )));
        }
        Ok(self.chars[start..self.i].iter().collect())
    }

    fn number(&mut self) -> Result<u64, AdviceParseError> {
        self.skip_ws();
        let start = self.i;
        while self
            .chars
            .get(self.i)
            .map(|c| c.is_ascii_digit())
            .unwrap_or(false)
        {
            self.i += 1;
        }
        if self.i == start {
            return Err(AdviceParseError::new(format!(
                "expected number at position {}",
                self.i
            )));
        }
        let s: String = self.chars[start..self.i].iter().collect();
        s.parse()
            .map_err(|_| AdviceParseError::new(format!("bad number `{s}`")))
    }

    fn expr(&mut self) -> Result<PathExpr, AdviceParseError> {
        match self.peek() {
            Some('(') => {
                self.expect('(')?;
                let mut items = vec![self.expr()?];
                while self.eat(',') {
                    items.push(self.expr()?);
                }
                self.expect(')')?;
                let rep = self.repetition()?;
                Ok(PathExpr::Seq { items, rep })
            }
            Some('[') => {
                self.expect('[')?;
                let mut items = vec![self.expr()?];
                while self.eat(',') {
                    items.push(self.expr()?);
                }
                self.expect(']')?;
                let select = if self.eat('^') {
                    Some(self.number()? as usize)
                } else {
                    None
                };
                Ok(PathExpr::Alt { items, select })
            }
            _ => Ok(PathExpr::Pattern(self.pattern()?)),
        }
    }

    fn repetition(&mut self) -> Result<Repetition, AdviceParseError> {
        self.expect('<')?;
        let lo = self.bound()?;
        self.expect(',')?;
        let hi = self.bound()?;
        self.expect('>')?;
        Ok(Repetition { lo, hi })
    }

    fn bound(&mut self) -> Result<RepBound, AdviceParseError> {
        match self.peek() {
            Some('|') => {
                self.expect('|')?;
                let v = self.ident()?;
                self.expect('|')?;
                Ok(RepBound::Card(v))
            }
            Some('*') => {
                self.expect('*')?;
                Ok(RepBound::Unbounded)
            }
            _ => Ok(RepBound::Count(self.number()?)),
        }
    }

    fn pattern(&mut self) -> Result<QueryPattern, AdviceParseError> {
        let view = self.ident()?;
        self.expect('(')?;
        let mut args = Vec::new();
        if !self.eat(')') {
            loop {
                args.push(self.pattern_arg()?);
                if self.eat(')') {
                    break;
                }
                self.expect(',')?;
            }
        }
        Ok(QueryPattern::new(view, args))
    }

    fn pattern_arg(&mut self) -> Result<PatternArg, AdviceParseError> {
        self.skip_ws();
        let c = self
            .peek()
            .ok_or_else(|| AdviceParseError::new("unexpected end of pattern"))?;
        if c.is_ascii_digit() {
            let n = self.number()?;
            return Ok(PatternArg::Const(Value::Int(n as i64)));
        }
        let word = self.ident()?;
        let first = word.chars().next().unwrap_or('a');
        if first.is_ascii_uppercase() || first == '_' {
            match self.chars.get(self.i) {
                Some('^') => {
                    self.i += 1;
                    Ok(PatternArg::Free(word))
                }
                Some('?') => {
                    self.i += 1;
                    Ok(PatternArg::Bound(word))
                }
                _ => Err(AdviceParseError::new(format!(
                    "pattern variable `{word}` must carry `^` or `?`"
                ))),
            }
        } else {
            Ok(PatternArg::Const(Value::str(word)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_spec_round_trip_paper_d2() {
        let v = parse_view_spec("d2(X^, Y?) =def b2(X^, Z) & b3(Z, c2, Y?) (R2)").unwrap();
        assert_eq!(v.name, "d2");
        assert_eq!(v.rule_ids, vec!["R2"]);
        assert_eq!(
            v.to_string(),
            "d2(X^, Y?) =def b2(X^, Z) & b3(Z, c2, Y?) (R2)"
        );
    }

    #[test]
    fn view_spec_without_rule_ids() {
        let v = parse_view_spec("d1(Y^) =def b1(c1, Y^)").unwrap();
        assert!(v.rule_ids.is_empty());
        assert_eq!(v.to_string(), "d1(Y^) =def b1(c1, Y^)");
    }

    #[test]
    fn inconsistent_annotation_rejected() {
        let e = parse_view_spec("d(X^) =def b(X?)").unwrap_err();
        assert!(e.message.contains("annotated both"));
    }

    #[test]
    fn path_expr_round_trip_example1() {
        let src = "(d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>";
        let e = parse_path_expr(src).unwrap();
        assert_eq!(e.to_string(), src);
    }

    #[test]
    fn path_expr_round_trip_example2() {
        let src = "(d1(Y^), ([d2(X^, Y?), d3(X^, Y?)])<0,|Y|>)<1,1>";
        let e = parse_path_expr(src).unwrap();
        assert_eq!(e.to_string(), src);
    }

    #[test]
    fn path_expr_round_trip_excerpt_with_selection() {
        let src = "(d1(X?, Y^), [(d2(Z^, Y?), d3(Z?))<1,1>, (d4(U^, Y?), d5(U?))<1,1>]^1)<0,|X|>";
        let e = parse_path_expr(src).unwrap();
        assert_eq!(e.to_string(), src);
    }

    #[test]
    fn pattern_constants_parse() {
        let e = parse_path_expr("d1(c1, X^)").unwrap();
        match e {
            PathExpr::Pattern(p) => {
                assert_eq!(p.args[0], PatternArg::Const(Value::str("c1")));
            }
            other => panic!("expected pattern, got {other:?}"),
        }
    }

    #[test]
    fn unannotated_pattern_variable_rejected() {
        assert!(parse_path_expr("d1(X)").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_path_expr("(d1(Y^))<1,1> zzz").is_err());
    }

    #[test]
    fn unbounded_repetition() {
        let e = parse_path_expr("(d1(Y^))<0,*>").unwrap();
        match &e {
            PathExpr::Seq { rep, .. } => {
                assert_eq!(rep.hi, RepBound::Unbounded);
                assert!(rep.may_repeat());
            }
            other => panic!("expected seq, got {other:?}"),
        }
        assert_eq!(e.to_string(), "(d1(Y^))<0,*>");
    }
}
