//! Typed errors for the wire codec and framing layer.

use std::fmt;
use std::io;

/// Everything that can go wrong on the wire.
///
/// `io::Error` itself is neither `Clone` nor `Eq`, so OS-level failures
/// are reduced to their [`io::ErrorKind`] — which is exactly the part
/// that drives retry classification upstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// An OS-level socket error, reduced to its kind.
    Io(io::ErrorKind),
    /// The stream or buffer ended in the middle of a frame or field
    /// (a torn write): `needed` bytes were required, `got` were left.
    Truncated { needed: usize, got: usize },
    /// The bytes were all there but did not decode into anything
    /// meaningful (bad tag, bad UTF-8, trailing garbage, …).
    Corrupt(String),
    /// A frame header announced a length above the negotiated cap —
    /// treated as corruption, not as a request to allocate `len` bytes.
    FrameTooLarge { len: u64, max: u64 },
}

impl NetError {
    /// Shorthand for a corruption error.
    pub fn corrupt(msg: impl Into<String>) -> NetError {
        NetError::Corrupt(msg.into())
    }

    /// Reduce an `io::Error` to its kind.
    pub fn from_io(e: &io::Error) -> NetError {
        NetError::Io(e.kind())
    }

    /// The `io::ErrorKind` this error maps to when it crosses into the
    /// `RemoteError`/`CmsError` taxonomy: real socket errors keep their
    /// kind; torn frames read as `UnexpectedEof` (the peer vanished
    /// mid-frame — transient); corruption reads as `InvalidData`
    /// (the bytes are wrong, retrying the same bytes cannot help).
    pub fn io_kind(&self) -> io::ErrorKind {
        match self {
            NetError::Io(kind) => *kind,
            NetError::Truncated { .. } => io::ErrorKind::UnexpectedEof,
            NetError::Corrupt(_) | NetError::FrameTooLarge { .. } => io::ErrorKind::InvalidData,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(kind) => write!(f, "socket error: {kind:?}"),
            NetError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            NetError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(NetError::Io(io::ErrorKind::ConnectionReset)
            .to_string()
            .contains("ConnectionReset"));
        assert!(NetError::Truncated { needed: 8, got: 3 }
            .to_string()
            .contains("needed 8"));
        assert!(NetError::corrupt("bad tag 9")
            .to_string()
            .contains("bad tag 9"));
        assert!(NetError::FrameTooLarge { len: 99, max: 16 }
            .to_string()
            .contains("cap 16"));
    }

    #[test]
    fn io_kind_classification() {
        assert_eq!(
            NetError::Truncated { needed: 4, got: 0 }.io_kind(),
            io::ErrorKind::UnexpectedEof
        );
        assert_eq!(NetError::corrupt("x").io_kind(), io::ErrorKind::InvalidData);
        assert_eq!(
            NetError::Io(io::ErrorKind::TimedOut).io_kind(),
            io::ErrorKind::TimedOut
        );
    }
}
