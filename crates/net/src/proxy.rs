//! A deterministic fault-injecting TCP proxy.
//!
//! [`FaultProxy`] sits between a client and an upstream server and
//! forwards bytes in both directions — except when the seeded
//! [`ProxyPlan`] says otherwise. Faults are decided *per accepted
//! connection* on a logical connection counter, with the same
//! splitmix64 derivation `braid-remote`'s `FaultPlan` uses per request:
//! the same seed and the same connection order always produce the same
//! faults, so chaos tests over real sockets stay reproducible.
//!
//! Fault vocabulary (the network-level analogue of `FaultKind`):
//!
//! | fault            | wire behaviour                                        |
//! |------------------|-------------------------------------------------------|
//! | `Refuse`         | accept, then close before any byte (outage windows)   |
//! | `Reset`          | connect upstream, then cut both ways before any byte  |
//! | `Truncate{n}`    | forward exactly `n` downstream bytes, then cut (torn frame) |
//! | `Delay{ms}`      | sleep before forwarding downstream (latency spike)    |
//! | `Stall`          | swallow downstream bytes forever (black hole — the    |
//! |                  | client's read timeout is its only way out)            |

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::port::bind_ephemeral;

/// How often blocked proxy reads wake up to observe shutdown.
const POLL: Duration = Duration::from_millis(25);

/// One network-level fault applied to a proxied connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProxyFault {
    /// Close the client connection immediately on accept, without ever
    /// contacting the upstream (a full outage as seen from outside).
    Refuse,
    /// Cut the connection before a single downstream byte is forwarded.
    Reset,
    /// Forward exactly `after_bytes` downstream bytes, then cut — the
    /// client observes a torn frame.
    Truncate { after_bytes: u64 },
    /// Sleep `ms` before forwarding downstream bytes (latency spike).
    Delay { ms: u64 },
    /// Forward nothing downstream but keep the connection open — a
    /// black hole the client can only escape via its read timeout.
    Stall,
}

/// A seeded, deterministic fault plan over the proxy's logical
/// connection clock. Mirrors `FaultPlan`'s builder/`decide` shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyPlan {
    seed: u64,
    reset_prob: f64,
    truncate_prob: f64,
    truncate_after: u64,
    delay_prob: f64,
    delay_ms: u64,
    stall_prob: f64,
    /// Half-open `[start, end)` windows of connection indices refused.
    outages: Vec<(u64, u64)>,
    /// Exact per-connection overrides, strongest precedence.
    schedule: Vec<(u64, ProxyFault)>,
}

impl ProxyPlan {
    /// A plan that injects nothing (useful as a pass-through baseline).
    pub fn healthy() -> ProxyPlan {
        ProxyPlan::seeded(0)
    }

    /// An empty plan over `seed`; add faults with the builders.
    pub fn seeded(seed: u64) -> ProxyPlan {
        ProxyPlan {
            seed,
            reset_prob: 0.0,
            truncate_prob: 0.0,
            truncate_after: 0,
            delay_prob: 0.0,
            delay_ms: 0,
            stall_prob: 0.0,
            outages: Vec::new(),
            schedule: Vec::new(),
        }
    }

    /// Reset a connection with probability `p` before any byte flows.
    pub fn with_resets(mut self, p: f64) -> ProxyPlan {
        self.reset_prob = p;
        self
    }

    /// Tear a connection with probability `p` after `after_bytes`
    /// downstream bytes — mid-frame when the value lands inside one.
    pub fn with_truncation(mut self, p: f64, after_bytes: u64) -> ProxyPlan {
        self.truncate_prob = p;
        self.truncate_after = after_bytes;
        self
    }

    /// Delay downstream forwarding by `ms` with probability `p`.
    pub fn with_delays(mut self, p: f64, ms: u64) -> ProxyPlan {
        self.delay_prob = p;
        self.delay_ms = ms;
        self
    }

    /// Black-hole a connection with probability `p`.
    pub fn with_stalls(mut self, p: f64) -> ProxyPlan {
        self.stall_prob = p;
        self
    }

    /// Refuse every connection whose index falls in `[start, end)`.
    pub fn with_outage(mut self, start: u64, end: u64) -> ProxyPlan {
        self.outages.push((start, end));
        self
    }

    /// Force `fault` on exactly connection `conn`.
    pub fn with_scheduled(mut self, conn: u64, fault: ProxyFault) -> ProxyPlan {
        self.schedule.push((conn, fault));
        self
    }

    /// The fault (if any) for connection number `conn`. Pure: depends
    /// only on the plan and `conn`.
    pub fn decide(&self, conn: u64) -> Option<ProxyFault> {
        if let Some((_, fault)) = self.schedule.iter().find(|(c, _)| *c == conn) {
            return Some(*fault);
        }
        if self.outages.iter().any(|(s, e)| conn >= *s && conn < *e) {
            return Some(ProxyFault::Refuse);
        }
        let mut state = self.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut draw = || {
            state = splitmix64(state);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        if draw() < self.reset_prob {
            return Some(ProxyFault::Reset);
        }
        if draw() < self.truncate_prob {
            return Some(ProxyFault::Truncate {
                after_bytes: self.truncate_after,
            });
        }
        if draw() < self.delay_prob {
            return Some(ProxyFault::Delay { ms: self.delay_ms });
        }
        if draw() < self.stall_prob {
            return Some(ProxyFault::Stall);
        }
        None
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Default)]
struct ProxyStats {
    connections: AtomicU64,
    refused: AtomicU64,
    resets: AtomicU64,
    truncated: AtomicU64,
    delayed: AtomicU64,
    stalled: AtomicU64,
    bytes_up: AtomicU64,
    bytes_down: AtomicU64,
}

/// Counters observed so far (faults *applied*, not merely planned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProxyStatsSnapshot {
    /// Connections accepted (including refused ones).
    pub connections: u64,
    /// Connections dropped on accept (outage windows / `Refuse`).
    pub refused: u64,
    /// Connections reset before any downstream byte.
    pub resets: u64,
    /// Connections torn mid-stream by a truncation budget.
    pub truncated: u64,
    /// Connections given a latency spike.
    pub delayed: u64,
    /// Connections black-holed.
    pub stalled: u64,
    /// Client→server bytes forwarded.
    pub bytes_up: u64,
    /// Server→client bytes forwarded.
    pub bytes_down: u64,
}

/// A running fault proxy. Listens on an ephemeral loopback port (see
/// [`addr`](FaultProxy::addr)) and forwards to `upstream` until dropped.
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: Arc<ProxyStats>,
}

impl FaultProxy {
    /// Start proxying `upstream` through `plan` on a fresh ephemeral
    /// port.
    pub fn start(upstream: SocketAddr, plan: ProxyPlan) -> io::Result<FaultProxy> {
        let (listener, addr) = bind_ephemeral()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let stats = Arc::new(ProxyStats::default());

        let accept = {
            let stop = Arc::clone(&stop);
            let workers = Arc::clone(&workers);
            let stats = Arc::clone(&stats);
            thread::Builder::new()
                .name("braid-net-proxy".into())
                .spawn(move || {
                    let mut clock = 0u64;
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let client = match conn {
                            Ok(s) => s,
                            Err(_) => continue,
                        };
                        let idx = clock;
                        clock += 1;
                        stats.connections.fetch_add(1, Ordering::Relaxed);
                        let fault = plan.decide(idx);
                        if matches!(fault, Some(ProxyFault::Refuse)) {
                            stats.refused.fetch_add(1, Ordering::Relaxed);
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        }
                        let stop = Arc::clone(&stop);
                        let stats = Arc::clone(&stats);
                        let handle = thread::Builder::new()
                            .name(format!("braid-net-proxy-conn-{idx}"))
                            .spawn(move || {
                                forward(client, upstream, fault, &stop, &stats);
                            })
                            .expect("spawn proxy worker");
                        workers.lock().expect("proxy workers lock").push(handle);
                    }
                })
                .expect("spawn proxy accept loop")
        };

        Ok(FaultProxy {
            addr,
            stop,
            accept: Some(accept),
            workers,
            stats,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters so far.
    pub fn stats(&self) -> ProxyStatsSnapshot {
        let s = &self.stats;
        ProxyStatsSnapshot {
            connections: s.connections.load(Ordering::Relaxed),
            refused: s.refused.load(Ordering::Relaxed),
            resets: s.resets.load(Ordering::Relaxed),
            truncated: s.truncated.load(Ordering::Relaxed),
            delayed: s.delayed.load(Ordering::Relaxed),
            stalled: s.stalled.load(Ordering::Relaxed),
            bytes_up: s.bytes_up.load(Ordering::Relaxed),
            bytes_down: s.bytes_down.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting, cut every in-flight connection, join all
    /// threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("proxy workers lock")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Handle one proxied connection: connect upstream, apply the fault,
/// pump both directions until either side closes or shutdown.
fn forward(
    client: TcpStream,
    upstream: SocketAddr,
    fault: Option<ProxyFault>,
    stop: &AtomicBool,
    stats: &ProxyStats,
) {
    let server = match TcpStream::connect_timeout(&upstream, Duration::from_secs(2)) {
        Ok(s) => s,
        Err(_) => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    for s in [&client, &server] {
        let _ = s.set_nodelay(true);
        let _ = s.set_read_timeout(Some(POLL));
        let _ = s.set_write_timeout(Some(Duration::from_secs(2)));
    }

    let mut down_budget: Option<u64> = None;
    let mut swallow_down = false;
    match fault {
        Some(ProxyFault::Reset) => {
            stats.resets.fetch_add(1, Ordering::Relaxed);
            let _ = client.shutdown(Shutdown::Both);
            let _ = server.shutdown(Shutdown::Both);
            return;
        }
        Some(ProxyFault::Delay { ms }) => {
            stats.delayed.fetch_add(1, Ordering::Relaxed);
            sleep_unless_stopped(ms, stop);
        }
        Some(ProxyFault::Truncate { after_bytes }) => {
            stats.truncated.fetch_add(1, Ordering::Relaxed);
            down_budget = Some(after_bytes);
        }
        Some(ProxyFault::Stall) => {
            stats.stalled.fetch_add(1, Ordering::Relaxed);
            swallow_down = true;
        }
        Some(ProxyFault::Refuse) | None => {}
    }

    thread::scope(|s| {
        s.spawn(|| pump(&client, &server, None, false, stop, &stats.bytes_up));
        s.spawn(|| {
            pump(
                &server,
                &client,
                down_budget,
                swallow_down,
                stop,
                &stats.bytes_down,
            )
        });
    });
}

/// Copy bytes `from` → `to` until EOF, error, an exhausted truncation
/// budget, or shutdown; then cut both sockets so the opposite pump
/// unblocks too. With `swallow`, bytes are read and discarded (black
/// hole).
fn pump(
    from: &TcpStream,
    to: &TcpStream,
    budget: Option<u64>,
    swallow: bool,
    stop: &AtomicBool,
    counter: &AtomicU64,
) {
    let mut from = from;
    let mut to = to;
    let mut remaining = budget;
    let mut buf = [0u8; 8192];
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if swallow {
                    continue;
                }
                let mut n = n;
                if let Some(rem) = remaining.as_mut() {
                    n = n.min(*rem as usize);
                    *rem -= n as u64;
                }
                if n > 0 && to.write_all(&buf[..n]).is_err() {
                    break;
                }
                counter.fetch_add(n as u64, Ordering::Relaxed);
                if remaining == Some(0) {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

fn sleep_unless_stopped(ms: u64, stop: &AtomicBool) {
    let mut left = ms;
    while left > 0 && !stop.load(Ordering::Relaxed) {
        let step = left.min(25);
        thread::sleep(Duration::from_millis(step));
        left -= step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{read_frame, write_frame, MAX_FRAME_BYTES};
    use crate::NetError;

    /// An upstream that answers every frame `[k, payload]` with a frame
    /// `[k+1, payload]`, until the client closes.
    fn echo_upstream() -> (SocketAddr, JoinHandle<()>) {
        let (listener, addr) = bind_ephemeral().unwrap();
        let h = thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                let _ = (|| -> Result<(), NetError> {
                    while let Some(f) = read_frame(&mut s, MAX_FRAME_BYTES)? {
                        write_frame(&mut s, f.kind.wrapping_add(1), &f.payload)?;
                    }
                    Ok(())
                })();
            }
        });
        (addr, h)
    }

    fn roundtrip_via(addr: SocketAddr) -> Result<(u8, Vec<u8>), NetError> {
        let mut s = TcpStream::connect(addr).map_err(|e| NetError::Io(e.kind()))?;
        s.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        write_frame(&mut s, 7, b"ping")?;
        match read_frame(&mut s, MAX_FRAME_BYTES)? {
            Some(f) => Ok((f.kind, f.payload)),
            None => Err(NetError::Truncated { needed: 5, got: 0 }),
        }
    }

    #[test]
    fn healthy_plan_passes_bytes_through() {
        let (up, _h) = echo_upstream();
        let mut proxy = FaultProxy::start(up, ProxyPlan::healthy()).unwrap();
        let (kind, payload) = roundtrip_via(proxy.addr()).unwrap();
        assert_eq!((kind, payload.as_slice()), (8, b"ping".as_slice()));
        proxy.shutdown();
        let st = proxy.stats();
        assert_eq!(st.connections, 1);
        assert!(st.bytes_down > 0);
    }

    #[test]
    fn outage_window_refuses_then_recovers() {
        let (up, _h) = echo_upstream();
        let plan = ProxyPlan::seeded(3).with_outage(0, 2);
        let mut proxy = FaultProxy::start(up, plan).unwrap();
        // Connections 0 and 1 die before any byte.
        for _ in 0..2 {
            assert!(roundtrip_via(proxy.addr()).is_err());
        }
        // Connection 2 is past the window.
        let (kind, _) = roundtrip_via(proxy.addr()).unwrap();
        assert_eq!(kind, 8);
        proxy.shutdown();
        assert_eq!(proxy.stats().refused, 2);
    }

    #[test]
    fn scheduled_truncation_tears_the_reply_frame() {
        let (up, _h) = echo_upstream();
        // Forward only 3 downstream bytes: the reply frame header alone
        // is 5 bytes, so the client must observe a torn frame.
        let plan = ProxyPlan::seeded(9).with_scheduled(0, ProxyFault::Truncate { after_bytes: 3 });
        let mut proxy = FaultProxy::start(up, plan).unwrap();
        let err = roundtrip_via(proxy.addr()).unwrap_err();
        assert!(
            matches!(err, NetError::Truncated { .. } | NetError::Io(_)),
            "torn frame surfaces as a typed error: {err:?}"
        );
        proxy.shutdown();
        assert_eq!(proxy.stats().truncated, 1);
        assert!(proxy.stats().bytes_down <= 3);
    }

    #[test]
    fn scheduled_reset_cuts_before_any_byte() {
        let (up, _h) = echo_upstream();
        let plan = ProxyPlan::seeded(4).with_scheduled(0, ProxyFault::Reset);
        let mut proxy = FaultProxy::start(up, plan).unwrap();
        assert!(roundtrip_via(proxy.addr()).is_err());
        proxy.shutdown();
        let st = proxy.stats();
        assert_eq!(st.resets, 1);
        assert_eq!(st.bytes_down, 0);
    }

    #[test]
    fn stall_is_escaped_by_the_client_read_timeout() {
        let (up, _h) = echo_upstream();
        let plan = ProxyPlan::seeded(5).with_scheduled(0, ProxyFault::Stall);
        let mut proxy = FaultProxy::start(up, plan).unwrap();
        let err = roundtrip_via(proxy.addr()).unwrap_err();
        assert!(
            matches!(err, NetError::Io(k) if k == io::ErrorKind::WouldBlock || k == io::ErrorKind::TimedOut),
            "black hole surfaces as a timeout: {err:?}"
        );
        proxy.shutdown();
        assert_eq!(proxy.stats().stalled, 1);
    }

    #[test]
    fn decide_is_deterministic_and_seed_sensitive() {
        let plan = ProxyPlan::seeded(11)
            .with_resets(0.3)
            .with_truncation(0.2, 64)
            .with_delays(0.1, 5)
            .with_stalls(0.05);
        let a: Vec<_> = (0..64).map(|c| plan.decide(c)).collect();
        let b: Vec<_> = (0..64).map(|c| plan.decide(c)).collect();
        assert_eq!(a, b, "same plan, same decisions");
        assert!(a.iter().any(Option::is_some), "faults actually fire");
        assert!(a.iter().any(Option::is_none), "not every connection faults");
        let other = ProxyPlan::seeded(12)
            .with_resets(0.3)
            .with_truncation(0.2, 64)
            .with_delays(0.1, 5)
            .with_stalls(0.05);
        let c: Vec<_> = (0..64).map(|i| other.decide(i)).collect();
        assert_ne!(a, c, "different seeds, different decisions");
    }
}
