//! Ephemeral-port allocation for network tests and servers.
//!
//! Binding port 0 lets the OS pick a free port; the bound address is
//! then passed around explicitly. Tests built this way can run in
//! parallel and never flake on a fixed port being taken.

use std::io;
use std::net::{SocketAddr, TcpListener};

/// Bind a listener on `127.0.0.1` with an OS-assigned port and return
/// it together with the address actually bound.
pub fn bind_ephemeral() -> io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    Ok((listener, addr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_binds_get_distinct_ports() {
        let (_l1, a1) = bind_ephemeral().unwrap();
        let (_l2, a2) = bind_ephemeral().unwrap();
        assert_ne!(a1.port(), 0);
        assert_ne!(a2.port(), 0);
        assert_ne!(a1, a2);
    }
}
