//! # braid-net
//!
//! The std-only networking layer under the BrAID remote transport
//! (DESIGN.md §11). No registry dependencies: the wire codec is
//! hand-rolled in the same bounds-checked, typed-error idiom as
//! `braid-sim`'s JSON codec, and everything runs on `std::net`.
//!
//! Four pieces:
//!
//! - [`wire`] — primitive encoders/decoders (`WireWriter`/`WireReader`)
//!   for fixed-width integers, floats, and length-prefixed strings and
//!   byte slices. Every read is bounds-checked; malformed input yields a
//!   typed [`NetError`], never a panic.
//! - [`frame`] — length-prefixed frames `[len: u32 BE][kind: u8][payload]`
//!   over any `Read`/`Write`, with a maximum-frame-size guard so a
//!   corrupt length prefix cannot cause an unbounded allocation.
//! - [`proxy`] — [`FaultProxy`], a real TCP proxy that injects faults
//!   (connection resets, byte-level truncation, latency spikes,
//!   black-hole stalls, outage windows) decided deterministically per
//!   accepted connection by a seeded [`ProxyPlan`], mirroring the
//!   `FaultPlan` idiom from `braid-remote`.
//! - [`port`] — ephemeral-port allocation (`bind 127.0.0.1:0`, pass the
//!   bound address around) so network tests never flake on fixed ports.

pub mod error;
pub mod frame;
pub mod port;
pub mod proxy;
pub mod wire;

pub use error::NetError;
pub use frame::{read_frame, write_frame, Frame, MAX_FRAME_BYTES};
pub use port::bind_ephemeral;
pub use proxy::{FaultProxy, ProxyFault, ProxyPlan, ProxyStatsSnapshot};
pub use wire::{WireReader, WireWriter};
