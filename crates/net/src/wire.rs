//! Primitive wire encoders and decoders.
//!
//! Big-endian fixed-width integers, IEEE-754 floats via their bit
//! pattern, and `u32`-length-prefixed UTF-8 strings and byte slices.
//! The reader is bounds-checked on every access and returns typed
//! [`NetError`]s — a malformed buffer can never panic or read past the
//! end, in the same spirit as `braid-sim`'s JSON codec.

use crate::error::NetError;

/// Appends primitives to a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter { buf: Vec::new() }
    }

    /// A writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> WireWriter {
        WireWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Floats travel as their IEEE-754 bit pattern, so NaN payloads and
    /// signed zeros round-trip bit-exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    /// `u32` byte length, then the UTF-8 bytes.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// `u32` byte length, then the raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

/// Reads primitives back out of a byte slice, bounds-checked.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the whole buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.remaining() < n {
            return Err(NetError::Truncated {
                needed: n,
                got: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, NetError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, NetError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn i64(&mut self) -> Result<i64, NetError> {
        Ok(self.u64()? as i64)
    }

    pub fn f64(&mut self) -> Result<f64, NetError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, NetError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|e| NetError::corrupt(format!("bad utf-8: {e}")))
    }

    /// A `u32`-length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], NetError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Assert the buffer is fully consumed; trailing bytes mean the
    /// encoder and decoder disagree about the shape of the message.
    pub fn finish(&self) -> Result<(), NetError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(NetError::corrupt(format!(
                "{} trailing bytes after message",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f64(-0.0);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = WireWriter::new();
        w.put_u64(7);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert_eq!(
                r.u64(),
                Err(NetError::Truncated {
                    needed: 8,
                    got: cut
                })
            );
        }
    }

    #[test]
    fn string_length_prefix_is_bounds_checked() {
        // Claims 100 bytes, provides 2.
        let mut w = WireWriter::new();
        w.put_u32(100);
        w.put_u8(b'h');
        w.put_u8(b'i');
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(
            r.str(),
            Err(NetError::Truncated {
                needed: 100,
                got: 2
            })
        );
    }

    #[test]
    fn bad_utf8_is_corrupt_not_panic() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.str(), Err(NetError::Corrupt(_))));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut w = WireWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(NetError::Corrupt(_))));
    }

    proptest! {
        /// Any (u64, i64, f64-bits, string, bytes) tuple round-trips
        /// bit-exactly through the writer/reader pair.
        #[test]
        fn scalar_round_trip(a in 0..u64::MAX, b in i64::MIN..i64::MAX, bits in 0..u64::MAX,
                             sv in proptest::collection::vec(32u8..127, 0..32),
                             raw in proptest::collection::vec(0u8..=255, 0..64)) {
            let s = String::from_utf8(sv).unwrap();
            let mut w = WireWriter::new();
            w.put_u64(a);
            w.put_i64(b);
            w.put_f64(f64::from_bits(bits));
            w.put_str(&s);
            w.put_bytes(&raw);
            let bytes = w.into_bytes();
            let mut r = WireReader::new(&bytes);
            prop_assert_eq!(r.u64().unwrap(), a);
            prop_assert_eq!(r.i64().unwrap(), b);
            prop_assert_eq!(r.f64().unwrap().to_bits(), bits);
            prop_assert_eq!(r.str().unwrap(), s.as_str());
            prop_assert_eq!(r.bytes().unwrap(), raw.as_slice());
            r.finish().unwrap();
        }

        /// Reading any random garbage never panics: every outcome is a
        /// value or a typed error.
        #[test]
        fn garbage_never_panics(raw in proptest::collection::vec(0u8..=255, 0..64)) {
            let mut r = WireReader::new(&raw);
            let _ = r.u8();
            let _ = r.u32();
            let _ = r.str();
            let _ = r.bytes();
            let _ = r.f64();
            let _ = r.finish();
        }
    }
}
