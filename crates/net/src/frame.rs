//! Length-prefixed framing over any `Read`/`Write` pair.
//!
//! A frame on the wire is `[len: u32 BE][kind: u8][payload: len bytes]`.
//! The length covers the payload only; `kind` is a protocol-level tag
//! the layers above assign meaning to. A maximum-frame-size cap is
//! enforced *before* any allocation, so a corrupt or hostile length
//! prefix cannot balloon memory.
//!
//! Read contract (important for pollers):
//!
//! - `Ok(Some(frame))` — a whole frame arrived.
//! - `Ok(None)` — the peer closed cleanly at a frame boundary.
//! - `Err(Io(WouldBlock))` — a read timeout fired with **zero** bytes
//!   consumed; the stream is still aligned and retrying later is safe.
//! - `Err(Io(TimedOut))` — a read timeout fired **mid-frame**; framing
//!   alignment is lost and the connection must be discarded.
//! - `Err(Truncated{..})` — the peer vanished mid-frame (torn write).
//! - `Err(FrameTooLarge{..})`/`Err(Io(kind))` — corruption / socket error.

use std::io::{self, Read, Write};

use crate::error::NetError;

/// Default cap on a single frame's payload (16 MiB).
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol-level frame type tag.
    pub kind: u8,
    /// The frame body.
    pub payload: Vec<u8>,
}

fn is_timeout(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Read exactly `buf.len()` bytes, reporting how many arrived before a
/// clean EOF. Timeouts are normalized per the module contract: with
/// zero bytes consumed they surface as `WouldBlock` (retry-safe), with
/// partial bytes as `TimedOut` (alignment lost).
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, NetError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Ok(got),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(e.kind()) => {
                return Err(NetError::Io(if got == 0 {
                    io::ErrorKind::WouldBlock
                } else {
                    io::ErrorKind::TimedOut
                }));
            }
            Err(e) => return Err(NetError::Io(e.kind())),
        }
    }
    Ok(got)
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), NetError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(NetError::FrameTooLarge {
            len: payload.len() as u64,
            max: MAX_FRAME_BYTES as u64,
        });
    }
    // One write for header + payload: a reader never observes a gap
    // between them (Nagle-delayed payloads would otherwise trip strict
    // mid-frame timeouts on the peer).
    let mut buf = Vec::with_capacity(5 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.push(kind);
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, capping the announced payload length at `max`.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Frame>, NetError> {
    let mut header = [0u8; 5];
    match read_full(r, &mut header)? {
        0 => return Ok(None), // clean close at a frame boundary
        5 => {}
        got => return Err(NetError::Truncated { needed: 5, got }),
    }
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    if len > max {
        return Err(NetError::FrameTooLarge {
            len: len as u64,
            max: max as u64,
        });
    }
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload).map_err(|e| match e {
        // A timeout between header and payload is mid-frame even when
        // zero payload bytes arrived: the header is already consumed.
        NetError::Io(k) if is_timeout(k) => NetError::Io(io::ErrorKind::TimedOut),
        other => other,
    })?;
    if got < len {
        return Err(NetError::Truncated { needed: len, got });
    }
    Ok(Some(Frame {
        kind: header[4],
        payload,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    fn encode(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, kind, payload).unwrap();
        out
    }

    #[test]
    fn frame_round_trip() {
        let bytes = encode(0x42, b"hello");
        let f = read_frame(&mut Cursor::new(&bytes), MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(f.kind, 0x42);
        assert_eq!(f.payload, b"hello");
    }

    #[test]
    fn clean_eof_is_none() {
        let empty: &[u8] = &[];
        assert_eq!(read_frame(&mut Cursor::new(empty), 64).unwrap(), None);
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let bytes = encode(7, b"payload");
        for cut in 1..bytes.len() {
            let r = read_frame(&mut Cursor::new(&bytes[..cut]), MAX_FRAME_BYTES);
            assert!(
                matches!(r, Err(NetError::Truncated { .. })),
                "cut at {cut}: {r:?}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        // Announces a 3 GiB payload; the cap rejects it from the header
        // alone — no allocation happens.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(3u32 << 30).to_be_bytes());
        bytes.push(1);
        let r = read_frame(&mut Cursor::new(&bytes), MAX_FRAME_BYTES);
        assert!(matches!(r, Err(NetError::FrameTooLarge { .. })), "{r:?}");
    }

    #[test]
    fn writer_refuses_oversized_payload() {
        let payload = vec![0u8; MAX_FRAME_BYTES + 1];
        let mut out = Vec::new();
        let r = write_frame(&mut out, 1, &payload);
        assert!(matches!(r, Err(NetError::FrameTooLarge { .. })));
        assert!(out.is_empty(), "nothing hit the wire");
    }

    proptest! {
        /// Any frame round-trips; any strict prefix of its encoding is a
        /// typed truncation error, never a panic or a bogus frame.
        #[test]
        fn round_trip_and_torn_prefixes(kind in 0u8..=255,
                                        payload in proptest::collection::vec(0u8..=255, 0..256)) {
            let bytes = encode(kind, &payload);
            let f = read_frame(&mut Cursor::new(&bytes), MAX_FRAME_BYTES).unwrap().unwrap();
            prop_assert_eq!(f.kind, kind);
            prop_assert_eq!(&f.payload, &payload);
            for cut in 1..bytes.len() {
                let r = read_frame(&mut Cursor::new(&bytes[..cut]), MAX_FRAME_BYTES);
                prop_assert!(matches!(r, Err(NetError::Truncated { .. })));
            }
        }

        /// A single flipped bit in the header either still decodes (a
        /// changed kind), or yields a typed error — never a panic.
        #[test]
        fn bit_flips_never_panic(payload in proptest::collection::vec(0u8..=255, 0..64),
                                 bit in 0usize..40) {
            let mut bytes = encode(9, &payload);
            bytes[bit / 8] ^= 1 << (bit % 8);
            let _ = read_frame(&mut Cursor::new(&bytes), 1024);
        }
    }
}
