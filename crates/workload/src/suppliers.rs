//! Parts–suppliers with a bill-of-materials hierarchy.
//!
//! Base relations: `part(p)`, `subpart(whole, part)` (a forest),
//! `supplier(s, city)`, `supplies(s, p, qty)`. Derived: `component`
//! (transitive closure of `subpart`, declared with a Closure SOA),
//! `supplies_component`, `colocated_suppliers`, `bulk_supplier`.

use crate::queries::QueryWorkload;
use crate::scenario::Scenario;
use braid::{KnowledgeBase, Soa};
use braid_relational::{Column, Relation, Schema, Tuple, Value, ValueType};
use braid_remote::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build the parts/suppliers catalog: `parts` parts in a BOM forest with
/// the given `fanout`, `suppliers` suppliers spread over `cities` cities.
pub fn catalog(parts: usize, fanout: usize, suppliers: usize, cities: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);

    let mut part = Relation::new(Schema::of_strs("part", &["p"]));
    let mut subpart = Relation::new(Schema::of_strs("subpart", &["whole", "part"]));
    let mut supplier = Relation::new(Schema::of_strs("supplier", &["s", "city"]));
    let mut supplies = Relation::new(
        Schema::new(
            "supplies",
            vec![
                Column::new("s", ValueType::Str),
                Column::new("p", ValueType::Str),
                Column::new("qty", ValueType::Int),
            ],
        )
        .expect("static schema"),
    );

    for i in 0..parts {
        part.insert(Tuple::new(vec![Value::str(format!("part{i}"))]))
            .expect("arity 1");
        if i > 0 {
            // Parent in the BOM forest: a previous part.
            let parent = (i - 1) / fanout.max(1);
            subpart
                .insert(Tuple::new(vec![
                    Value::str(format!("part{parent}")),
                    Value::str(format!("part{i}")),
                ]))
                .expect("arity 2");
        }
    }
    for s in 0..suppliers {
        let city = format!("city{}", rng.gen_range(0..cities.max(1)));
        supplier
            .insert(Tuple::new(vec![
                Value::str(format!("sup{s}")),
                Value::str(city),
            ]))
            .expect("arity 2");
        // Each supplier supplies a handful of parts.
        for _ in 0..rng.gen_range(1..=4) {
            let p = rng.gen_range(0..parts);
            supplies
                .insert(Tuple::new(vec![
                    Value::str(format!("sup{s}")),
                    Value::str(format!("part{p}")),
                    Value::Int(rng.gen_range(1..500)),
                ]))
                .expect("arity 3");
        }
    }

    let mut c = Catalog::new();
    c.install(part);
    c.install(subpart);
    c.install(supplier);
    c.install(supplies);
    c
}

/// The suppliers rule set (with the Closure SOA for `component`).
pub fn knowledge_base() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.declare_base("part", 1);
    kb.declare_base("subpart", 2);
    kb.declare_base("supplier", 2);
    kb.declare_base("supplies", 3);
    kb.add_program(
        "component(X, Y) :- subpart(X, Y).\n\
         component(X, Y) :- subpart(X, Z), component(Z, Y).\n\
         supplies_component(S, W) :- supplies(S, P, Q), component(W, P).\n\
         colocated(S1, S2) :- supplier(S1, C), supplier(S2, C), S1 != S2.\n\
         bulk_supplier(S, P) :- supplies(S, P, Q), Q >= 250.",
    )
    .expect("static program is valid");
    kb.add_soa(Soa::Closure {
        pred: "component".into(),
        base: "subpart".into(),
    });
    kb
}

/// A full scenario over the parts/suppliers data.
pub fn scenario(parts: usize, suppliers: usize, seed: u64, query_count: usize) -> Scenario {
    let catalog = catalog(parts, 3, suppliers, 5, seed);
    let kb = knowledge_base();
    let mut wl = QueryWorkload::new(seed ^ 0x51ab);
    let part_names: Vec<String> = (0..parts).map(|i| format!("part{i}")).collect();
    let sup_names: Vec<String> = (0..suppliers).map(|i| format!("sup{i}")).collect();
    let mut queries = wl.generate(
        &[("component", 2), ("bulk_supplier", 1)],
        &part_names,
        query_count / 2,
        0.6,
    );
    queries.extend(wl.generate(
        &[("supplies_component", 1), ("colocated", 1)],
        &sup_names,
        query_count - query_count / 2,
        0.6,
    ));
    Scenario {
        name: format!("suppliers(p{parts},s{suppliers})"),
        catalog,
        kb,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid::{BraidConfig, Strategy};

    #[test]
    fn catalog_shape() {
        let c = catalog(20, 3, 5, 2, 11);
        assert_eq!(c.relation("part").unwrap().len(), 20);
        assert_eq!(c.relation("subpart").unwrap().len(), 19);
        assert_eq!(c.relation("supplier").unwrap().len(), 5);
        assert!(c.relation("supplies").unwrap().len() >= 5);
    }

    #[test]
    fn closure_query_end_to_end() {
        let s = scenario(15, 4, 3, 4);
        let mut sys = s.system(BraidConfig::default());
        // component(part0, Y): everything below the root.
        let sols = sys
            .solve_all("?- component(part0, Y).", Strategy::FullyCompiled)
            .unwrap();
        assert_eq!(sols.len(), 14, "root dominates the whole BOM forest");
    }

    #[test]
    fn comparison_rule_filters() {
        let s = scenario(10, 6, 3, 4);
        let mut sys = s.system(BraidConfig::default());
        let bulk = sys
            .solve_all("?- bulk_supplier(X, Y).", Strategy::ConjunctionCompiled)
            .unwrap();
        // All returned pairs genuinely have qty >= 250 (cross-check data).
        let supplies = s.catalog.relation("supplies").unwrap();
        for t in &bulk {
            let found = supplies.iter().any(|row| {
                row.values()[0] == t.values()[0]
                    && row.values()[1] == t.values()[1]
                    && row.values()[2].as_int().unwrap_or(0) >= 250
            });
            assert!(found, "spurious bulk pair {t}");
        }
    }
}
