//! A scenario bundles a remote database, a knowledge base and a query
//! workload, ready to assemble into a [`braid::BraidSystem`].

use braid::{BraidConfig, BraidSystem, KnowledgeBase};
use braid_remote::Catalog;

/// A reproducible experimental setup.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (for reports).
    pub name: String,
    /// The remote database.
    pub catalog: Catalog,
    /// The IE's rules and declarations.
    pub kb: KnowledgeBase,
    /// AI queries, in issue order (`?- ...` syntax).
    pub queries: Vec<String>,
}

impl Scenario {
    /// Assemble a fresh system over this scenario's data.
    pub fn system(&self, config: BraidConfig) -> BraidSystem {
        BraidSystem::new(self.catalog.clone(), self.kb.clone(), config)
    }

    /// Total base tuples in the remote database.
    pub fn database_size(&self) -> usize {
        self.catalog.total_tuples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid::Strategy;

    #[test]
    fn genealogy_scenario_solves() {
        let s = crate::genealogy::scenario(3, 2, 42, 10);
        assert!(s.database_size() > 0);
        assert!(!s.queries.is_empty());
        let mut sys = s.system(BraidConfig::default());
        let q = &s.queries[0];
        let sols = sys.solve_all(q, Strategy::ConjunctionCompiled);
        assert!(sols.is_ok(), "query {q} failed: {sols:?}");
    }
}
