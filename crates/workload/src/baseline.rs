//! Coupling-mode baselines: the paper's Figure 1 taxonomy, runnable
//! head-to-head.
//!
//! "Loose coupling ... uses a simple interface ... The relatively low
//! level of integration results in poor performance" (§1); BERMUDA "uses
//! a form of result caching" with exact-match reuse; Ceri et al. buffer
//! single relation extensions; BrAID adds subsumption, advice,
//! generalization, prefetching and lazy evaluation on top.

use crate::scenario::Scenario;
use braid::{BraidConfig, BraidSystem, CmsConfig, CombinedMetrics, Strategy};
use std::fmt;
use std::time::{Duration, Instant};

/// An AI/DB integration approach from the paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CouplingMode {
    /// Figure 1 "loose coupling": every request goes to the DBMS.
    LooseCoupling,
    /// BERMUDA-style bridge: exact-match result caching only.
    ExactMatch,
    /// \[CERI86\]-style: whole base relations buffered on first touch.
    SingleRelation,
    /// Full BrAID: subsumption + advice + every §5.3 technique.
    Braid,
}

impl CouplingMode {
    /// All modes, in taxonomy order.
    pub fn all() -> [CouplingMode; 4] {
        [
            CouplingMode::LooseCoupling,
            CouplingMode::ExactMatch,
            CouplingMode::SingleRelation,
            CouplingMode::Braid,
        ]
    }

    /// The CMS configuration realizing this mode.
    pub fn cms_config(self) -> CmsConfig {
        match self {
            CouplingMode::LooseCoupling => CmsConfig::loose_coupling(),
            CouplingMode::ExactMatch => CmsConfig::exact_match(),
            CouplingMode::SingleRelation => CmsConfig::single_relation(),
            CouplingMode::Braid => CmsConfig::braid(),
        }
    }

    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            CouplingMode::LooseCoupling => "loose-coupling",
            CouplingMode::ExactMatch => "exact-match",
            CouplingMode::SingleRelation => "single-relation",
            CouplingMode::Braid => "braid",
        }
    }
}

impl fmt::Display for CouplingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The outcome of running a workload under one coupling mode.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The mode.
    pub mode: CouplingMode,
    /// Cost counters accumulated over the whole workload.
    pub metrics: CombinedMetrics,
    /// Total solutions produced (correctness cross-check).
    pub solutions: usize,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// Run a scenario's full query workload under `mode` and `strategy`.
///
/// # Panics
/// Panics if any workload query fails — workloads are constructed valid.
pub fn run(scenario: &Scenario, mode: CouplingMode, strategy: Strategy) -> RunResult {
    let mut system: BraidSystem = scenario.system(BraidConfig::with_cms(mode.cms_config()));
    let start = Instant::now();
    let mut solutions = 0usize;
    for q in &scenario.queries {
        let sols = system
            .solve_all(q, strategy)
            .unwrap_or_else(|e| panic!("workload query `{q}` failed: {e}"));
        solutions += sols.len();
    }
    RunResult {
        mode,
        metrics: system.metrics(),
        solutions,
        elapsed: start.elapsed(),
    }
}

/// Run all four coupling modes over a scenario.
pub fn run_all(scenario: &Scenario, strategy: Strategy) -> Vec<RunResult> {
    CouplingMode::all()
        .into_iter()
        .map(|m| run(scenario, m, strategy))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        crate::genealogy::scenario(3, 2, 17, 12)
    }

    #[test]
    fn all_modes_agree_on_solutions() {
        let s = tiny();
        let results = run_all(&s, Strategy::ConjunctionCompiled);
        let first = results[0].solutions;
        for r in &results {
            assert_eq!(r.solutions, first, "{} produced different answers", r.mode);
        }
    }

    #[test]
    fn braid_issues_fewest_requests() {
        let s = tiny();
        let results = run_all(&s, Strategy::ConjunctionCompiled);
        let req = |m: CouplingMode| {
            results
                .iter()
                .find(|r| r.mode == m)
                .map(|r| r.metrics.remote.requests)
                .expect("mode present")
        };
        assert!(
            req(CouplingMode::Braid) < req(CouplingMode::LooseCoupling),
            "braid ({}) must beat loose coupling ({})",
            req(CouplingMode::Braid),
            req(CouplingMode::LooseCoupling)
        );
        assert!(
            req(CouplingMode::Braid) <= req(CouplingMode::ExactMatch),
            "subsumption reuse at least matches exact-match"
        );
    }

    #[test]
    fn mode_labels_unique() {
        let labels: std::collections::HashSet<&str> =
            CouplingMode::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
