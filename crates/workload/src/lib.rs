//! # braid-workload
//!
//! Synthetic databases, rule sets, query workloads and coupling-mode
//! baselines for the BrAID reproduction's experiments.
//!
//! The paper motivates BrAID with knowledge-processing applications over
//! "large amounts of shared data" (§1); the three scenarios here give the
//! benchmark harness realistic shapes:
//!
//! * [`genealogy`] — family trees: the classic recursive `ancestor` /
//!   `cousin` workload dominated by backtracking and repeated subgoals,
//! * [`suppliers`] — parts/suppliers with a bill-of-materials hierarchy:
//!   joins plus a `component-of` closure,
//! * [`transit`] — a transit network: reachability over a cyclic graph
//!   (exercises the compiled strategy's fixpoint),
//!
//! plus [`queries`] (instantiated query sequences with a locality knob)
//! and [`baseline`] — the coupling modes of the paper's Figure 1 taxonomy
//! run head-to-head against the same remote DBMS.

pub mod baseline;
pub mod genealogy;
pub mod queries;
pub mod scenario;
pub mod suppliers;
pub mod transit;

pub use baseline::CouplingMode;
pub use queries::QueryWorkload;
pub use scenario::Scenario;
