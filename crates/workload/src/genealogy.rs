//! Family-tree data and rules: the classic deductive-database workload.
//!
//! A complete `branching`-ary tree of `generations` generations. Base
//! relations: `parent(p, c)`, `male(x)`, `female(x)`, `age(x, n)`.
//! Derived: `grandparent`, `sibling`, `uncle`, `cousin`, `ancestor`
//! (recursive), `adult_ancestor` (recursion + comparison).

use crate::queries::QueryWorkload;
use crate::scenario::Scenario;
use braid::KnowledgeBase;
use braid_relational::{Column, Relation, Schema, Tuple, Value, ValueType};
use braid_remote::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Names of every person in a `(generations, branching)` tree, generation
/// by generation. Person ids are `p0`, `p1`, ... breadth-first.
pub fn person_count(generations: u32, branching: u32) -> usize {
    let mut total = 0usize;
    let mut level = 1usize;
    for _ in 0..=generations {
        total += level;
        level *= branching as usize;
    }
    total
}

/// Build the genealogy catalog.
pub fn catalog(generations: u32, branching: u32, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = person_count(generations, branching);

    let mut parent = Relation::new(Schema::of_strs("parent", &["p", "c"]));
    let mut male = Relation::new(Schema::of_strs("male", &["x"]));
    let mut female = Relation::new(Schema::of_strs("female", &["x"]));
    let mut age = Relation::new(
        Schema::new(
            "age",
            vec![
                Column::new("x", ValueType::Str),
                Column::new("years", ValueType::Int),
            ],
        )
        .expect("static schema"),
    );

    // Breadth-first tree: children of node i are i*branching+1 ..= i*branching+branching.
    for i in 0..n {
        let name = format!("p{i}");
        for b in 1..=branching as usize {
            let child = i * branching as usize + b;
            if child < n {
                parent
                    .insert(Tuple::new(vec![
                        Value::str(&name),
                        Value::str(format!("p{child}")),
                    ]))
                    .expect("arity 2");
            }
        }
        if rng.gen_bool(0.5) {
            male.insert(Tuple::new(vec![Value::str(&name)]))
                .expect("arity 1");
        } else {
            female
                .insert(Tuple::new(vec![Value::str(&name)]))
                .expect("arity 1");
        }
        // Older generations are older people.
        let depth = (i as f64 + 1.0).log(branching.max(2) as f64) as i64;
        let years = 90 - depth * 25 + rng.gen_range(0..10i64);
        age.insert(Tuple::new(vec![Value::str(&name), Value::Int(years)]))
            .expect("arity 2");
    }

    let mut c = Catalog::new();
    c.install(parent);
    c.install(male);
    c.install(female);
    c.install(age);
    c
}

/// The genealogy rule set.
pub fn knowledge_base() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.declare_base("parent", 2);
    kb.declare_base("male", 1);
    kb.declare_base("female", 1);
    kb.declare_base("age", 2);
    kb.add_program(
        "grandparent(X, Y) :- parent(X, Z), parent(Z, Y).\n\
         sibling(X, Y) :- parent(P, X), parent(P, Y), X != Y.\n\
         uncle(U, N) :- parent(G, U), parent(G, F), U != F, parent(F, N), male(U).\n\
         cousin(X, Y) :- parent(A, X), parent(B, Y), sibling(A, B).\n\
         ancestor(X, Y) :- parent(X, Y).\n\
         ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n\
         adult(X) :- age(X, A), A >= 18.\n\
         elder_parent(X, Y) :- parent(X, Y), age(X, A), A >= 60.",
    )
    .expect("static program is valid");
    kb
}

/// A full scenario: data + rules + a query workload mixing the derived
/// relations with a locality-controlled stream of bound-argument probes.
pub fn scenario(generations: u32, branching: u32, seed: u64, query_count: usize) -> Scenario {
    let n = person_count(generations, branching);
    let catalog = catalog(generations, branching, seed);
    let kb = knowledge_base();
    let mut wl = QueryWorkload::new(seed ^ 0x9e37);
    let persons: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
    let queries = wl.generate(
        &[
            ("grandparent", 1),
            ("sibling", 1),
            ("ancestor", 1),
            ("cousin", 1),
            ("elder_parent", 1),
        ],
        &persons,
        query_count,
        0.5,
    );
    Scenario {
        name: format!("genealogy(g{generations},b{branching})"),
        catalog,
        kb,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_shape() {
        assert_eq!(person_count(2, 2), 7);
        let c = catalog(2, 2, 1);
        assert_eq!(c.relation("parent").unwrap().len(), 6);
        // Every person has a sex and an age.
        let m = c.relation("male").unwrap().len();
        let f = c.relation("female").unwrap().len();
        assert_eq!(m + f, 7);
        assert_eq!(c.relation("age").unwrap().len(), 7);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = catalog(3, 2, 7);
        let b = catalog(3, 2, 7);
        assert_eq!(
            a.relation("male").unwrap().len(),
            b.relation("male").unwrap().len()
        );
    }

    #[test]
    fn kb_rules_load() {
        let kb = knowledge_base();
        assert!(kb.is_user_defined("ancestor"));
        assert!(kb.recursive_predicates().contains("ancestor"));
    }
}
