//! Query workload generation with a locality knob.
//!
//! Semantic caching pays off when later queries fall inside earlier
//! queries' extents; the `locality` parameter controls exactly that —
//! with probability `locality`, the next query's constant is re-drawn
//! from a recent window, otherwise uniformly from the whole domain.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A deterministic query-sequence generator.
#[derive(Debug)]
pub struct QueryWorkload {
    rng: StdRng,
    recent: VecDeque<String>,
    window: usize,
}

impl QueryWorkload {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> QueryWorkload {
        QueryWorkload {
            rng: StdRng::seed_from_u64(seed),
            recent: VecDeque::new(),
            window: 8,
        }
    }

    /// Set the locality window size (how many recent constants are
    /// eligible for re-use).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Draw the next constant from `domain` honouring `locality` ∈ \[0,1\].
    pub fn next_constant(&mut self, domain: &[String], locality: f64) -> String {
        let reuse = !self.recent.is_empty() && self.rng.gen_bool(locality.clamp(0.0, 1.0));
        let c = if reuse {
            let i = self.rng.gen_range(0..self.recent.len());
            self.recent[i].clone()
        } else {
            domain[self.rng.gen_range(0..domain.len())].clone()
        };
        self.recent.push_back(c.clone());
        if self.recent.len() > self.window {
            self.recent.pop_front();
        }
        c
    }

    /// Generate `count` AI queries over binary `views`, each weighted by
    /// its integer weight, with the first argument bound to a constant and
    /// the second free: `?- view(c, Y).`
    pub fn generate(
        &mut self,
        views: &[(&str, u32)],
        domain: &[String],
        count: usize,
        locality: f64,
    ) -> Vec<String> {
        let total: u32 = views.iter().map(|(_, w)| w).sum();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let mut pick = self.rng.gen_range(0..total.max(1));
            let mut view = views[0].0;
            for (v, w) in views {
                if pick < *w {
                    view = v;
                    break;
                }
                pick -= w;
            }
            let c = self.next_constant(domain, locality);
            // Unary views probe existence; binary views bind the first arg.
            out.push(format!("?- {view}({c}, Y)."));
        }
        out
    }

    /// Generate fully-ground probe queries `?- view(c1, c2).`
    pub fn generate_ground(
        &mut self,
        view: &str,
        domain: &[String],
        count: usize,
        locality: f64,
    ) -> Vec<String> {
        (0..count)
            .map(|_| {
                let a = self.next_constant(domain, locality);
                let b = self.next_constant(domain, locality);
                format!("?- {view}({a}, {b}).")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Vec<String> {
        (0..100).map(|i| format!("p{i}")).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let d = domain();
        let mut a = QueryWorkload::new(5);
        let mut b = QueryWorkload::new(5);
        assert_eq!(
            a.generate(&[("anc", 1)], &d, 10, 0.5),
            b.generate(&[("anc", 1)], &d, 10, 0.5)
        );
    }

    #[test]
    fn high_locality_reuses_constants() {
        let d = domain();
        let mut wl = QueryWorkload::new(5);
        let qs = wl.generate(&[("anc", 1)], &d, 200, 0.95);
        let distinct: std::collections::HashSet<&String> = qs.iter().collect();
        // Heavy reuse ⇒ far fewer distinct queries than total.
        assert!(distinct.len() < 100, "distinct = {}", distinct.len());
    }

    #[test]
    fn zero_locality_spreads_out() {
        let d = domain();
        let mut wl = QueryWorkload::new(5);
        let qs = wl.generate(&[("anc", 1)], &d, 100, 0.0);
        let distinct: std::collections::HashSet<&String> = qs.iter().collect();
        assert!(distinct.len() > 50);
    }

    #[test]
    fn weights_bias_view_choice() {
        let d = domain();
        let mut wl = QueryWorkload::new(9);
        let qs = wl.generate(&[("a", 9), ("b", 1)], &d, 200, 0.0);
        let a_count = qs.iter().filter(|q| q.contains("a(")).count();
        assert!(a_count > 120, "a chosen {a_count} of 200");
    }

    #[test]
    fn ground_queries_have_two_constants() {
        let d = domain();
        let mut wl = QueryWorkload::new(1);
        let qs = wl.generate_ground("anc", &d, 5, 0.0);
        assert!(qs.iter().all(|q| !q.contains(", Y")));
    }
}
