//! A transit network: reachability over a cyclic graph.
//!
//! Base relations: `station(s, zone)`, `link(a, b, line)` (directed,
//! includes cycles). Derived: `connected` (one hop, either direction on
//! the same line irrelevant — links are stored both ways), `reachable`
//! (closure, declared via SOA), `same_zone_reachable`.
//!
//! Cyclic data makes the interpreted strategy's depth bound matter and
//! exercises the compiled strategy's fixpoint operator.

use crate::queries::QueryWorkload;
use crate::scenario::Scenario;
use braid::{KnowledgeBase, Soa};
use braid_relational::{Relation, Schema, Tuple, Value};
use braid_remote::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a transit catalog: `lines` circular lines of `stations_per_line`
/// stations with random interchanges.
pub fn catalog(lines: usize, stations_per_line: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut station = Relation::new(Schema::of_strs("station", &["s", "zone"]));
    let mut link = Relation::new(Schema::of_strs("link", &["a", "b", "line"]));

    let name = |l: usize, i: usize| format!("st_{l}_{i}");
    for l in 0..lines {
        for i in 0..stations_per_line {
            let zone = format!("zone{}", i * 3 / stations_per_line.max(1));
            station
                .insert(Tuple::new(vec![Value::str(name(l, i)), Value::str(zone)]))
                .expect("arity 2");
            // Circular line, both directions.
            let next = (i + 1) % stations_per_line;
            for (a, b) in [(i, next), (next, i)] {
                link.insert(Tuple::new(vec![
                    Value::str(name(l, a)),
                    Value::str(name(l, b)),
                    Value::str(format!("line{l}")),
                ]))
                .expect("arity 3");
            }
        }
    }
    // Interchanges between lines.
    for l in 1..lines {
        let a = name(l - 1, rng.gen_range(0..stations_per_line));
        let b = name(l, rng.gen_range(0..stations_per_line));
        for (x, y) in [(a.clone(), b.clone()), (b, a)] {
            link.insert(Tuple::new(vec![
                Value::str(x),
                Value::str(y),
                Value::str("interchange"),
            ]))
            .expect("arity 3");
        }
    }

    let mut c = Catalog::new();
    c.install(station);
    c.install(link);
    c
}

/// The transit rule set.
pub fn knowledge_base() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.declare_base("station", 2);
    kb.declare_base("link", 3);
    kb.add_program(
        "connected(X, Y) :- link(X, Y, L).\n\
         reachable(X, Y) :- connected(X, Y).\n\
         reachable(X, Y) :- connected(X, Z), reachable(Z, Y).\n\
         same_zone(X, Y) :- station(X, Z), station(Y, Z), X != Y.\n\
         same_line(X, Y) :- link(X, Y, L), link(Y, X, L).",
    )
    .expect("static program is valid");
    kb.add_soa(Soa::Closure {
        pred: "reachable_c".into(),
        base: "connected_all".into(),
    });
    kb
}

/// A full scenario over the transit network. Queries stick to the
/// non-recursive views plus ground `reachable` probes — the compiled
/// strategy handles the cyclic closure.
pub fn scenario(lines: usize, stations_per_line: usize, seed: u64, query_count: usize) -> Scenario {
    let catalog = catalog(lines, stations_per_line, seed);
    let kb = knowledge_base();
    let mut wl = QueryWorkload::new(seed ^ 0x7ee7);
    let stations: Vec<String> = (0..lines)
        .flat_map(|l| (0..stations_per_line).map(move |i| format!("st_{l}_{i}")))
        .collect();
    let queries = wl.generate(
        &[("connected", 2), ("same_zone", 1), ("same_line", 1)],
        &stations,
        query_count,
        0.5,
    );
    Scenario {
        name: format!("transit(l{lines},s{stations_per_line})"),
        catalog,
        kb,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use braid::{BraidConfig, Strategy};

    #[test]
    fn catalog_is_cyclic() {
        let c = catalog(2, 4, 3);
        assert_eq!(c.relation("station").unwrap().len(), 8);
        // 4 stations per circular line × 2 directions × 2 lines + 2
        // interchange links.
        assert_eq!(c.relation("link").unwrap().len(), 18);
    }

    #[test]
    fn compiled_reachability_over_cycles() {
        let s = scenario(2, 4, 3, 4);
        let mut sys = s.system(BraidConfig::default());
        // Fixpoint over a cyclic graph terminates and reaches both lines.
        let sols = sys
            .solve_all("?- reachable(st_0_0, Y).", Strategy::FullyCompiled)
            .unwrap();
        assert_eq!(sols.len(), 8, "all stations reachable (cycles included)");
    }

    #[test]
    fn nonrecursive_views_any_strategy() {
        let s = scenario(2, 4, 3, 4);
        let mut sys = s.system(BraidConfig::default());
        let sols = sys
            .solve_all("?- same_zone(st_0_0, Y).", Strategy::ConjunctionCompiled)
            .unwrap();
        assert!(!sols.is_empty());
    }
}
