//! Sorted representations of relations.
//!
//! The CMS "frequently maintains co-existing, alternative representations
//! of the same relation. Consider, for example, the case where alternative
//! sortings are required" (§5.2). A [`SortedView`] is one such alternative
//! representation: an ordering of a relation's rows by a key, supporting
//! ordered scans and binary-search range probes.

use crate::error::Result;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;

/// Sort direction for one key column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// One component of a sort key.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    /// Column index.
    pub col: usize,
    /// Direction.
    pub order: SortOrder,
}

impl SortKey {
    /// Ascending key on `col`.
    pub fn asc(col: usize) -> Self {
        SortKey {
            col,
            order: SortOrder::Asc,
        }
    }

    /// Descending key on `col`.
    pub fn desc(col: usize) -> Self {
        SortKey {
            col,
            order: SortOrder::Desc,
        }
    }
}

/// An ordering of a relation's rows by a compound key. Stores row ids, not
/// tuples, so several views can coexist cheaply over one extension.
#[derive(Debug, Clone)]
pub struct SortedView {
    keys: Vec<SortKey>,
    rows: Vec<usize>,
}

impl SortedView {
    /// Sort `rel`'s rows by `keys`.
    ///
    /// # Errors
    /// Returns an error if a key column is out of range.
    pub fn new(rel: &Relation, keys: &[SortKey]) -> Result<Self> {
        for k in keys {
            if k.col >= rel.schema().arity() {
                return Err(crate::RelationalError::ColumnIndexOutOfRange {
                    index: k.col,
                    arity: rel.schema().arity(),
                });
            }
        }
        let mut rows: Vec<usize> = (0..rel.len()).collect();
        rows.sort_by(|&a, &b| {
            let ta = rel.row(a).expect("row in range");
            let tb = rel.row(b).expect("row in range");
            compare(ta, tb, keys)
        });
        Ok(SortedView {
            keys: keys.to_vec(),
            rows,
        })
    }

    /// The sort key.
    pub fn keys(&self) -> &[SortKey] {
        &self.keys
    }

    /// Iterate tuples of `rel` in sorted order.
    ///
    /// The view must have been built over this relation (or one with
    /// identical row ids); rows added after the view was built are not
    /// visible through it.
    pub fn iter<'a>(&'a self, rel: &'a Relation) -> impl Iterator<Item = &'a Tuple> + 'a {
        self.rows.iter().filter_map(move |&i| rel.row(i))
    }

    /// Row ids whose first key column equals `v` (binary search; only valid
    /// when the first key is ascending).
    pub fn range_eq(&self, rel: &Relation, v: &Value) -> Vec<usize> {
        let col = match self.keys.first() {
            Some(k) if k.order == SortOrder::Asc => k.col,
            _ => return Vec::new(),
        };
        let cmp_at = |i: usize| -> Ordering {
            rel.row(self.rows[i])
                .and_then(|t| t.get(col))
                .map(|x| x.cmp(v))
                .unwrap_or(Ordering::Greater)
        };
        // Lower bound.
        let (mut lo, mut hi) = (0usize, self.rows.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if cmp_at(mid) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut out = Vec::new();
        while lo < self.rows.len() && cmp_at(lo) == Ordering::Equal {
            out.push(self.rows[lo]);
            lo += 1;
        }
        out
    }
}

fn compare(a: &Tuple, b: &Tuple, keys: &[SortKey]) -> Ordering {
    for k in keys {
        let va = a.get(k.col);
        let vb = b.get(k.col);
        let ord = va.cmp(&vb);
        let ord = match k.order {
            SortOrder::Asc => ord,
            SortOrder::Desc => ord.reverse(),
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, Schema};

    fn rel() -> Relation {
        Relation::from_tuples(
            Schema::of_strs("r", &["k", "v"]),
            vec![
                tuple!["b", "1"],
                tuple!["a", "2"],
                tuple!["c", "3"],
                tuple!["a", "1"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn sorts_ascending_with_tiebreak() {
        let r = rel();
        let view = SortedView::new(&r, &[SortKey::asc(0), SortKey::asc(1)]).unwrap();
        let ks: Vec<String> = view
            .iter(&r)
            .map(|t| format!("{}{}", t.values()[0], t.values()[1]))
            .collect();
        assert_eq!(ks, vec!["a1", "a2", "b1", "c3"]);
    }

    #[test]
    fn sorts_descending() {
        let r = rel();
        let view = SortedView::new(&r, &[SortKey::desc(0)]).unwrap();
        let first = view.iter(&r).next().unwrap();
        assert_eq!(first.values()[0], Value::str("c"));
    }

    #[test]
    fn range_eq_finds_all_matches() {
        let r = rel();
        let view = SortedView::new(&r, &[SortKey::asc(0)]).unwrap();
        let rows = view.range_eq(&r, &Value::str("a"));
        assert_eq!(rows.len(), 2);
        let rows = view.range_eq(&r, &Value::str("zz"));
        assert!(rows.is_empty());
    }

    #[test]
    fn out_of_range_key_errors() {
        let r = rel();
        assert!(SortedView::new(&r, &[SortKey::asc(9)]).is_err());
    }

    #[test]
    fn range_eq_on_descending_view_returns_empty() {
        let r = rel();
        let view = SortedView::new(&r, &[SortKey::desc(0)]).unwrap();
        assert!(view.range_eq(&r, &Value::str("a")).is_empty());
    }
}
