//! Relation schemas: ordered, named, typed columns.

use crate::error::{RelationalError, Result};
use crate::value::ValueType;
use std::fmt;
use std::sync::Arc;

/// A single column of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Column {
    /// Column name, unique within its schema.
    pub name: String,
    /// Declared type. `Null` is permitted in any column.
    pub ty: ValueType,
}

impl Column {
    /// Create a column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of [`Column`]s, optionally carrying the relation name.
///
/// Schemas are shared behind `Arc` by relations, tuples streams and cache
/// elements, so cloning a [`Schema`] handle is cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    columns: Arc<[Column]>,
}

impl Schema {
    /// Build a schema from a relation name and columns.
    ///
    /// # Errors
    /// Returns [`RelationalError::DuplicateColumn`] if two columns share a
    /// name.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(RelationalError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema {
            name: name.into(),
            columns: columns.into(),
        })
    }

    /// Shorthand: all columns typed [`ValueType::Str`], named from `cols`.
    pub fn of_strs(name: impl Into<String>, cols: &[&str]) -> Self {
        Schema::new(
            name,
            cols.iter()
                .map(|c| Column::new(*c, ValueType::Str))
                .collect(),
        )
        .expect("column names must be unique")
    }

    /// Shorthand: anonymous positional columns `a0..aN`, all typed `Str`.
    pub fn positional(name: impl Into<String>, arity: usize) -> Self {
        Schema::new(
            name,
            (0..arity)
                .map(|i| Column::new(format!("a{i}"), ValueType::Str))
                .collect(),
        )
        .expect("generated column names are unique")
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the relation, keeping columns.
    pub fn renamed(&self, name: impl Into<String>) -> Schema {
        Schema {
            name: name.into(),
            columns: Arc::clone(&self.columns),
        }
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column index, as an error-carrying lookup.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| RelationalError::UnknownColumn {
                relation: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// Project this schema onto the given column indices.
    ///
    /// # Errors
    /// Returns [`RelationalError::ColumnIndexOutOfRange`] for bad indices.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut cols = Vec::with_capacity(indices.len());
        for &i in indices {
            let col = self
                .columns
                .get(i)
                .ok_or(RelationalError::ColumnIndexOutOfRange {
                    index: i,
                    arity: self.arity(),
                })?;
            // Projection may repeat a column; disambiguate the name.
            let mut name = col.name.clone();
            let mut n = 1;
            while cols.iter().any(|c: &Column| c.name == name) {
                name = format!("{}_{n}", col.name);
                n += 1;
            }
            cols.push(Column::new(name, col.ty));
        }
        Schema::new(self.name.clone(), cols)
    }

    /// Concatenate two schemas (used by joins). Name collisions from the
    /// right side are qualified with the right relation name.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut cols: Vec<Column> = self.columns.to_vec();
        for c in right.columns.iter() {
            let mut name = c.name.clone();
            if cols.iter().any(|l| l.name == name) {
                name = format!("{}.{}", right.name, c.name);
                let mut n = 1;
                while cols.iter().any(|l| l.name == name) {
                    name = format!("{}.{}_{n}", right.name, c.name);
                    n += 1;
                }
            }
            cols.push(Column::new(name, c.ty));
        }
        Schema::new(format!("{}_{}", self.name, right.name), cols)
            .expect("join column names are made unique above")
    }

    /// True when both schemas have the same column types in the same order
    /// (names may differ) — the condition for union compatibility.
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self
                .columns
                .iter()
                .zip(other.columns.iter())
                .all(|(a, b)| a.ty == b.ty || a.ty == ValueType::Null || b.ty == ValueType::Null)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_column_rejected() {
        let err = Schema::new(
            "r",
            vec![
                Column::new("x", ValueType::Int),
                Column::new("x", ValueType::Str),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RelationalError::DuplicateColumn(c) if c == "x"));
    }

    #[test]
    fn index_of_finds_columns() {
        let s = Schema::of_strs("r", &["a", "b", "c"]);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert!(s.require("z").is_err());
    }

    #[test]
    fn project_repeated_column_disambiguates() {
        let s = Schema::of_strs("r", &["a", "b"]);
        let p = s.project(&[0, 0, 1]).unwrap();
        let names: Vec<_> = p.columns().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a", "a_1", "b"]);
    }

    #[test]
    fn project_out_of_range_errors() {
        let s = Schema::of_strs("r", &["a"]);
        assert!(s.project(&[1]).is_err());
    }

    #[test]
    fn join_qualifies_collisions() {
        let l = Schema::of_strs("l", &["id", "x"]);
        let r = Schema::of_strs("r", &["id", "y"]);
        let j = l.join(&r);
        let names: Vec<_> = j.columns().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["id", "x", "r.id", "y"]);
    }

    #[test]
    fn union_compatibility_checks_types_positionally() {
        let a = Schema::of_strs("a", &["x", "y"]);
        let b = Schema::of_strs("b", &["p", "q"]);
        assert!(a.union_compatible(&b));
        let c = Schema::new(
            "c",
            vec![
                Column::new("x", ValueType::Int),
                Column::new("y", ValueType::Str),
            ],
        )
        .unwrap();
        assert!(!a.union_compatible(&c));
    }

    #[test]
    fn positional_schema_names() {
        let s = Schema::positional("b1", 3);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.columns()[2].name, "a2");
    }
}
