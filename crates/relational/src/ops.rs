//! Eager relational operators.
//!
//! These implement the full set of operations the CMS's Query Processor
//! must support ("joins, selects, aggregation, indexing, etc.", §5) and the
//! restricted subset exposed by the simulated remote DBMS. Every operator
//! consumes and produces materialized [`Relation`]s; the lazy counterparts
//! used for generators live in [`crate::lazy`].

use crate::error::{RelationalError, Result};
use crate::expr::Expr;
use crate::relation::Relation;
use crate::schema::{Column, Schema};
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};
use std::collections::HashMap;

/// σ — tuples of `r` satisfying `pred`.
pub fn select(r: &Relation, pred: &Expr) -> Result<Relation> {
    let mut out = Relation::new(r.schema().clone());
    for t in r.iter() {
        if pred.eval_bool(t)? {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// Index-assisted selection on a conjunction of column-equals-constant
/// terms: probes an existing index on `eq_cols` when available, then
/// applies `residual`. Used by the cache's Query Processor for point
/// probes driven by consumer annotations.
pub fn select_eq(
    r: &Relation,
    eq_cols: &[usize],
    key: &[Value],
    residual: Option<&Expr>,
) -> Result<Relation> {
    let mut out = Relation::new(r.schema().clone());
    for row in r.lookup(eq_cols, key) {
        let t = r.row(row).expect("lookup returned valid row id");
        if match residual {
            Some(p) => p.eval_bool(t)?,
            None => true,
        } {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// π — projection onto `cols` (indices may repeat or reorder); result is
/// deduplicated (set semantics).
pub fn project(r: &Relation, cols: &[usize]) -> Result<Relation> {
    let schema = r.schema().project(cols)?;
    let mut out = Relation::new(schema);
    for t in r.iter() {
        out.insert(t.project(cols))?;
    }
    Ok(out)
}

/// × — Cartesian product.
pub fn product(l: &Relation, r: &Relation) -> Result<Relation> {
    let schema = l.schema().join(r.schema());
    let mut out = Relation::new(schema);
    for a in l.iter() {
        for b in r.iter() {
            out.insert(a.concat(b))?;
        }
    }
    Ok(out)
}

/// ⋈ — equi-join on pairs of (left column, right column), implemented as a
/// hash join building on the smaller input.
pub fn equijoin(l: &Relation, r: &Relation, on: &[(usize, usize)]) -> Result<Relation> {
    let schema = l.schema().join(r.schema());
    let mut out = Relation::new(schema);
    if on.is_empty() {
        return product(l, r);
    }
    let lcols: Vec<usize> = on.iter().map(|&(a, _)| a).collect();
    let rcols: Vec<usize> = on.iter().map(|&(_, b)| b).collect();
    for &c in &lcols {
        if c >= l.schema().arity() {
            return Err(RelationalError::ColumnIndexOutOfRange {
                index: c,
                arity: l.schema().arity(),
            });
        }
    }
    for &c in &rcols {
        if c >= r.schema().arity() {
            return Err(RelationalError::ColumnIndexOutOfRange {
                index: c,
                arity: r.schema().arity(),
            });
        }
    }
    // Build on the smaller side.
    if l.len() <= r.len() {
        let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
        for t in l.iter() {
            table.entry(t.key(&lcols)).or_default().push(t);
        }
        for b in r.iter() {
            if let Some(matches) = table.get(&b.key(&rcols)) {
                for a in matches {
                    out.insert(a.concat(b))?;
                }
            }
        }
    } else {
        let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
        for t in r.iter() {
            table.entry(t.key(&rcols)).or_default().push(t);
        }
        for a in l.iter() {
            if let Some(matches) = table.get(&a.key(&lcols)) {
                for b in matches {
                    out.insert(a.concat(b))?;
                }
            }
        }
    }
    Ok(out)
}

/// ⋉ — left semi-join: tuples of `l` that join with at least one tuple of
/// `r` on the given column pairs.
pub fn semijoin(l: &Relation, r: &Relation, on: &[(usize, usize)]) -> Result<Relation> {
    let rcols: Vec<usize> = on.iter().map(|&(_, b)| b).collect();
    let lcols: Vec<usize> = on.iter().map(|&(a, _)| a).collect();
    let keys: std::collections::HashSet<Vec<Value>> = r.iter().map(|t| t.key(&rcols)).collect();
    let mut out = Relation::new(l.schema().clone());
    for t in l.iter() {
        if keys.contains(&t.key(&lcols)) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// ▷ — anti-join: tuples of `l` with no join partner in `r`.
pub fn antijoin(l: &Relation, r: &Relation, on: &[(usize, usize)]) -> Result<Relation> {
    let rcols: Vec<usize> = on.iter().map(|&(_, b)| b).collect();
    let lcols: Vec<usize> = on.iter().map(|&(a, _)| a).collect();
    let keys: std::collections::HashSet<Vec<Value>> = r.iter().map(|t| t.key(&rcols)).collect();
    let mut out = Relation::new(l.schema().clone());
    for t in l.iter() {
        if !keys.contains(&t.key(&lcols)) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// ∪ — union of union-compatible relations.
pub fn union(l: &Relation, r: &Relation) -> Result<Relation> {
    if !l.schema().union_compatible(r.schema()) {
        return Err(RelationalError::NotUnionCompatible {
            left: l.schema().name().to_string(),
            right: r.schema().name().to_string(),
        });
    }
    let mut out = Relation::new(l.schema().clone());
    for t in l.iter().chain(r.iter()) {
        out.insert(t.clone())?;
    }
    Ok(out)
}

/// − — set difference of union-compatible relations.
pub fn difference(l: &Relation, r: &Relation) -> Result<Relation> {
    if !l.schema().union_compatible(r.schema()) {
        return Err(RelationalError::NotUnionCompatible {
            left: l.schema().name().to_string(),
            right: r.schema().name().to_string(),
        });
    }
    let mut out = Relation::new(l.schema().clone());
    for t in l.iter() {
        if !r.contains(t) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// ∩ — set intersection of union-compatible relations.
pub fn intersect(l: &Relation, r: &Relation) -> Result<Relation> {
    if !l.schema().union_compatible(r.schema()) {
        return Err(RelationalError::NotUnionCompatible {
            left: l.schema().name().to_string(),
            right: r.schema().name().to_string(),
        });
    }
    let mut out = Relation::new(l.schema().clone());
    for t in l.iter() {
        if r.contains(t) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// Aggregate functions supported by the CMS's `AGG` second-order predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of tuples in the group.
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Minimum of a column.
    Min,
    /// Maximum of a column.
    Max,
    /// Arithmetic mean of a numeric column.
    Avg,
}

impl AggFunc {
    /// Name as it appears in CAQL (`AGG(count, ...)`).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregate to compute: function over `col` (ignored for `Count`).
#[derive(Debug, Clone, Copy)]
pub struct Aggregate {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column (any column for `Count`).
    pub col: usize,
}

/// γ — grouped aggregation. Output columns are the `group_by` columns
/// followed by one column per aggregate. With an empty `group_by`, yields a
/// single row (aggregates over the whole relation; COUNT of an empty
/// relation is 0, other aggregates error).
pub fn aggregate(r: &Relation, group_by: &[usize], aggs: &[Aggregate]) -> Result<Relation> {
    let mut cols: Vec<Column> = Vec::new();
    let gschema = r.schema().project(group_by)?;
    cols.extend(gschema.columns().iter().cloned());
    for (i, a) in aggs.iter().enumerate() {
        if a.col >= r.schema().arity() {
            return Err(RelationalError::ColumnIndexOutOfRange {
                index: a.col,
                arity: r.schema().arity(),
            });
        }
        let ty = match a.func {
            AggFunc::Count => ValueType::Int,
            AggFunc::Avg => ValueType::Float,
            _ => r.schema().columns()[a.col].ty,
        };
        cols.push(Column::new(format!("{}_{i}", a.func.name()), ty));
    }
    let schema = Schema::new(format!("agg_{}", r.schema().name()), cols)?;

    let mut groups: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
    for t in r.iter() {
        groups.entry(t.key(group_by)).or_default().push(t);
    }
    if groups.is_empty() && group_by.is_empty() {
        // Global aggregate over the empty relation.
        let mut row: Vec<Value> = Vec::new();
        for a in aggs {
            match a.func {
                AggFunc::Count => row.push(Value::Int(0)),
                other => return Err(RelationalError::EmptyAggregate(other.name().to_string())),
            }
        }
        let mut out = Relation::new(schema);
        out.insert(Tuple::new(row))?;
        return Ok(out);
    }

    let mut out = Relation::new(schema);
    for (key, members) in groups {
        let mut row = key;
        for a in aggs {
            row.push(eval_agg(a, &members)?);
        }
        out.insert(Tuple::new(row))?;
    }
    Ok(out)
}

fn eval_agg(a: &Aggregate, members: &[&Tuple]) -> Result<Value> {
    match a.func {
        AggFunc::Count => Ok(Value::Int(members.len() as i64)),
        AggFunc::Min => members
            .iter()
            .map(|t| t.values()[a.col].clone())
            .min()
            .ok_or_else(|| RelationalError::EmptyAggregate("min".into())),
        AggFunc::Max => members
            .iter()
            .map(|t| t.values()[a.col].clone())
            .max()
            .ok_or_else(|| RelationalError::EmptyAggregate("max".into())),
        AggFunc::Sum => {
            let mut int_sum: i64 = 0;
            let mut float_sum: f64 = 0.0;
            let mut any_float = false;
            for t in members {
                match &t.values()[a.col] {
                    Value::Int(i) => int_sum = int_sum.wrapping_add(*i),
                    Value::Float(f) => {
                        any_float = true;
                        float_sum += f;
                    }
                    other => {
                        return Err(RelationalError::TypeError(format!(
                            "SUM over non-numeric value {other}"
                        )))
                    }
                }
            }
            if any_float {
                Ok(Value::Float(float_sum + int_sum as f64))
            } else {
                Ok(Value::Int(int_sum))
            }
        }
        AggFunc::Avg => {
            if members.is_empty() {
                return Err(RelationalError::EmptyAggregate("avg".into()));
            }
            let mut sum = 0.0;
            for t in members {
                sum += t.values()[a.col].as_f64().ok_or_else(|| {
                    RelationalError::TypeError("AVG over non-numeric value".into())
                })?;
            }
            Ok(Value::Float(sum / members.len() as f64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::{tuple, Schema};

    fn parent() -> Relation {
        Relation::from_tuples(
            Schema::of_strs("parent", &["p", "c"]),
            vec![
                tuple!["ann", "bob"],
                tuple!["ann", "cal"],
                tuple!["bob", "dee"],
                tuple!["cal", "eli"],
            ],
        )
        .unwrap()
    }

    fn age() -> Relation {
        let schema = Schema::new(
            "age",
            vec![
                Column::new("person", ValueType::Str),
                Column::new("years", ValueType::Int),
            ],
        )
        .unwrap();
        Relation::from_tuples(
            schema,
            vec![
                tuple!["ann", 70],
                tuple!["bob", 45],
                tuple!["cal", 44],
                tuple!["dee", 20],
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_filters() {
        let r = select(&parent(), &Expr::col_cmp(0, CmpOp::Eq, "ann")).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn select_eq_uses_index_and_residual() {
        let mut p = parent();
        p.build_index(&[0]).unwrap();
        let r = select_eq(
            &p,
            &[0],
            &[Value::str("ann")],
            Some(&Expr::col_cmp(1, CmpOp::Ne, "cal")),
        )
        .unwrap();
        assert_eq!(r.sorted_tuples(), vec![tuple!["ann", "bob"]]);
    }

    #[test]
    fn project_dedups() {
        let r = project(&parent(), &[0]).unwrap();
        assert_eq!(r.len(), 3); // ann, bob, cal
    }

    #[test]
    fn equijoin_grandparents() {
        let p = parent();
        let j = equijoin(&p, &p, &[(1, 0)]).unwrap();
        let gp = project(&j, &[0, 3]).unwrap();
        let mut rows = gp.sorted_tuples();
        rows.sort();
        assert_eq!(rows, vec![tuple!["ann", "dee"], tuple!["ann", "eli"]]);
    }

    #[test]
    fn equijoin_empty_on_is_product() {
        let p = parent();
        let a = age();
        let j = equijoin(&p, &a, &[]).unwrap();
        assert_eq!(j.len(), p.len() * a.len());
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let p = parent();
        let a = age();
        // parents whose child has a known age
        let semi = semijoin(&p, &a, &[(1, 0)]).unwrap();
        let anti = antijoin(&p, &a, &[(1, 0)]).unwrap();
        assert_eq!(semi.len() + anti.len(), p.len());
        assert!(anti.contains(&tuple!["cal", "eli"]));
    }

    #[test]
    fn union_difference_intersect() {
        let p = parent();
        let q = Relation::from_tuples(
            Schema::of_strs("extra", &["p", "c"]),
            vec![tuple!["ann", "bob"], tuple!["zoe", "yan"]],
        )
        .unwrap();
        assert_eq!(union(&p, &q).unwrap().len(), 5);
        assert_eq!(difference(&p, &q).unwrap().len(), 3);
        assert_eq!(intersect(&p, &q).unwrap().len(), 1);
    }

    #[test]
    fn union_incompatible_rejected() {
        let p = parent();
        let a = age();
        assert!(union(&p, &a).is_err());
    }

    #[test]
    fn aggregate_group_by() {
        let p = parent();
        let counts = aggregate(
            &p,
            &[0],
            &[Aggregate {
                func: AggFunc::Count,
                col: 0,
            }],
        )
        .unwrap();
        assert!(counts.contains(&tuple!["ann", 2]));
        assert!(counts.contains(&tuple!["bob", 1]));
    }

    #[test]
    fn aggregate_global_and_numeric() {
        let a = age();
        let r = aggregate(
            &a,
            &[],
            &[
                Aggregate {
                    func: AggFunc::Sum,
                    col: 1,
                },
                Aggregate {
                    func: AggFunc::Min,
                    col: 1,
                },
                Aggregate {
                    func: AggFunc::Max,
                    col: 1,
                },
                Aggregate {
                    func: AggFunc::Avg,
                    col: 1,
                },
            ],
        )
        .unwrap();
        let row = &r.sorted_tuples()[0];
        assert_eq!(row.values()[0], Value::Int(179));
        assert_eq!(row.values()[1], Value::Int(20));
        assert_eq!(row.values()[2], Value::Int(70));
        assert_eq!(row.values()[3], Value::Float(179.0 / 4.0));
    }

    #[test]
    fn count_of_empty_relation_is_zero() {
        let empty = Relation::new(Schema::of_strs("e", &["x"]));
        let r = aggregate(
            &empty,
            &[],
            &[Aggregate {
                func: AggFunc::Count,
                col: 0,
            }],
        )
        .unwrap();
        assert_eq!(r.sorted_tuples()[0], tuple![0]);
    }

    #[test]
    fn min_of_empty_relation_errors() {
        let empty = Relation::new(Schema::of_strs("e", &["x"]));
        assert!(aggregate(
            &empty,
            &[],
            &[Aggregate {
                func: AggFunc::Min,
                col: 0
            }]
        )
        .is_err());
    }

    #[test]
    fn join_out_of_range_errors() {
        let p = parent();
        assert!(equijoin(&p, &p, &[(5, 0)]).is_err());
    }
}
