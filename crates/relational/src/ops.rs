//! Eager relational operators — thin wrappers over the physical plan.
//!
//! These implement the full set of operations the CMS's Query Processor
//! must support ("joins, selects, aggregation, indexing, etc.", §5) and the
//! restricted subset exposed by the simulated remote DBMS. Every function
//! here builds a one-node [`PhysicalPlan`] over its materialized
//! [`Relation`] inputs and runs it to completion through the shared
//! batched executor ([`PhysicalPlan::materialize`]); the lazy generator
//! API in [`crate::lazy`] opens the same plans incrementally. There is no
//! second implementation of any operator.
//!
//! Error semantics are *strict* (the first predicate-evaluation error
//! aborts), matching the original eager operators; the generator API uses
//! errors-as-unknown filters instead.

use crate::error::{RelationalError, Result};
use crate::expr::Expr;
use crate::plan::PhysicalPlan;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

pub use crate::plan::{AggFunc, Aggregate};

/// One-leaf plan over a borrowed relation: shares the tuples (they are
/// `Arc`-backed) without cloning the relation's dedup set or indices.
fn plan_of(r: &Relation) -> PhysicalPlan {
    PhysicalPlan::rows(r.schema().clone(), r.to_vec())
}

/// σ — tuples of `r` satisfying `pred`.
pub fn select(r: &Relation, pred: &Expr) -> Result<Relation> {
    plan_of(r).filter_strict(pred.clone()).materialize()
}

/// Index-assisted selection on a conjunction of column-equals-constant
/// terms: probes an existing index on `eq_cols` when available, then
/// applies `residual`. Used by the cache's Query Processor for point
/// probes driven by consumer annotations.
pub fn select_eq(
    r: &Relation,
    eq_cols: &[usize],
    key: &[Value],
    residual: Option<&Expr>,
) -> Result<Relation> {
    let rows: Vec<Tuple> = r
        .lookup(eq_cols, key)
        .into_iter()
        .map(|row| r.row(row).expect("lookup returned valid row id").clone())
        .collect();
    let mut plan = PhysicalPlan::rows(r.schema().clone(), rows);
    if let Some(p) = residual {
        plan = plan.filter_strict(p.clone());
    }
    plan.materialize()
}

/// π — projection onto `cols` (indices may repeat or reorder); result is
/// deduplicated (set semantics).
pub fn project(r: &Relation, cols: &[usize]) -> Result<Relation> {
    plan_of(r).project(cols)?.materialize()
}

/// × — Cartesian product.
pub fn product(l: &Relation, r: &Relation) -> Result<Relation> {
    plan_of(l).hash_join(plan_of(r), &[]).materialize()
}

/// ⋈ — equi-join on pairs of (left column, right column), implemented as a
/// hash join building on the smaller input.
pub fn equijoin(l: &Relation, r: &Relation, on: &[(usize, usize)]) -> Result<Relation> {
    for &(c, _) in on {
        if c >= l.schema().arity() {
            return Err(RelationalError::ColumnIndexOutOfRange {
                index: c,
                arity: l.schema().arity(),
            });
        }
    }
    for &(_, c) in on {
        if c >= r.schema().arity() {
            return Err(RelationalError::ColumnIndexOutOfRange {
                index: c,
                arity: r.schema().arity(),
            });
        }
    }
    // Build on the smaller side; output columns stay l-then-r.
    let plan = if l.len() <= r.len() {
        plan_of(l).hash_join(plan_of(r), on)
    } else {
        plan_of(l).hash_join_build_right(plan_of(r), on)
    };
    plan.materialize()
}

/// ⋉ — left semi-join: tuples of `l` that join with at least one tuple of
/// `r` on the given column pairs.
pub fn semijoin(l: &Relation, r: &Relation, on: &[(usize, usize)]) -> Result<Relation> {
    plan_of(l).semijoin(plan_of(r), on).materialize()
}

/// ▷ — anti-join: tuples of `l` with no join partner in `r`.
pub fn antijoin(l: &Relation, r: &Relation, on: &[(usize, usize)]) -> Result<Relation> {
    plan_of(l).antijoin(plan_of(r), on).materialize()
}

/// ∪ — union of two union-compatible relations (wrapper over
/// [`union_all`]).
pub fn union(l: &Relation, r: &Relation) -> Result<Relation> {
    union_all([l, r])
}

/// n-ary ∪ — union of any number of union-compatible relations with a
/// *single* dedup pass at the root (the pairwise [`union`] chains used
/// for remainder/compensation assembly pay one pass per link).
///
/// # Errors
/// Returns [`RelationalError::NotUnionCompatible`] when any part is
/// incompatible with the first, or a type error for an empty part list.
pub fn union_all<'a>(parts: impl IntoIterator<Item = &'a Relation>) -> Result<Relation> {
    let parts: Vec<&Relation> = parts.into_iter().collect();
    let Some(first) = parts.first() else {
        return Err(RelationalError::TypeError(
            "union of zero relations has no schema".into(),
        ));
    };
    for p in &parts[1..] {
        if !first.schema().union_compatible(p.schema()) {
            return Err(RelationalError::NotUnionCompatible {
                left: first.schema().name().to_string(),
                right: p.schema().name().to_string(),
            });
        }
    }
    PhysicalPlan::union(parts.into_iter().map(plan_of).collect())
        .expect("non-empty part list")
        .materialize()
}

/// − — set difference of union-compatible relations (anti-join on all
/// columns).
pub fn difference(l: &Relation, r: &Relation) -> Result<Relation> {
    if !l.schema().union_compatible(r.schema()) {
        return Err(RelationalError::NotUnionCompatible {
            left: l.schema().name().to_string(),
            right: r.schema().name().to_string(),
        });
    }
    let all: Vec<(usize, usize)> = (0..l.schema().arity()).map(|i| (i, i)).collect();
    plan_of(l).antijoin(plan_of(r), &all).materialize()
}

/// ∩ — set intersection of union-compatible relations (semi-join on all
/// columns).
pub fn intersect(l: &Relation, r: &Relation) -> Result<Relation> {
    if !l.schema().union_compatible(r.schema()) {
        return Err(RelationalError::NotUnionCompatible {
            left: l.schema().name().to_string(),
            right: r.schema().name().to_string(),
        });
    }
    let all: Vec<(usize, usize)> = (0..l.schema().arity()).map(|i| (i, i)).collect();
    plan_of(l).semijoin(plan_of(r), &all).materialize()
}

/// γ — grouped aggregation. Output columns are the `group_by` columns
/// followed by one column per aggregate. With an empty `group_by`, yields a
/// single row (aggregates over the whole relation; COUNT of an empty
/// relation is 0, other aggregates error).
pub fn aggregate(r: &Relation, group_by: &[usize], aggs: &[Aggregate]) -> Result<Relation> {
    plan_of(r).aggregate(group_by, aggs)?.materialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::schema::Column;
    use crate::value::ValueType;
    use crate::{tuple, Schema};

    fn parent() -> Relation {
        Relation::from_tuples(
            Schema::of_strs("parent", &["p", "c"]),
            vec![
                tuple!["ann", "bob"],
                tuple!["ann", "cal"],
                tuple!["bob", "dee"],
                tuple!["cal", "eli"],
            ],
        )
        .unwrap()
    }

    fn age() -> Relation {
        let schema = Schema::new(
            "age",
            vec![
                Column::new("person", ValueType::Str),
                Column::new("years", ValueType::Int),
            ],
        )
        .unwrap();
        Relation::from_tuples(
            schema,
            vec![
                tuple!["ann", 70],
                tuple!["bob", 45],
                tuple!["cal", 44],
                tuple!["dee", 20],
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_filters() {
        let r = select(&parent(), &Expr::col_cmp(0, CmpOp::Eq, "ann")).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn select_eq_uses_index_and_residual() {
        let mut p = parent();
        p.build_index(&[0]).unwrap();
        let r = select_eq(
            &p,
            &[0],
            &[Value::str("ann")],
            Some(&Expr::col_cmp(1, CmpOp::Ne, "cal")),
        )
        .unwrap();
        assert_eq!(r.sorted_tuples(), vec![tuple!["ann", "bob"]]);
    }

    #[test]
    fn project_dedups() {
        let r = project(&parent(), &[0]).unwrap();
        assert_eq!(r.len(), 3); // ann, bob, cal
    }

    #[test]
    fn equijoin_grandparents() {
        let p = parent();
        let j = equijoin(&p, &p, &[(1, 0)]).unwrap();
        let gp = project(&j, &[0, 3]).unwrap();
        let mut rows = gp.sorted_tuples();
        rows.sort();
        assert_eq!(rows, vec![tuple!["ann", "dee"], tuple!["ann", "eli"]]);
    }

    #[test]
    fn equijoin_empty_on_is_product() {
        let p = parent();
        let a = age();
        let j = equijoin(&p, &a, &[]).unwrap();
        assert_eq!(j.len(), p.len() * a.len());
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let p = parent();
        let a = age();
        // parents whose child has a known age
        let semi = semijoin(&p, &a, &[(1, 0)]).unwrap();
        let anti = antijoin(&p, &a, &[(1, 0)]).unwrap();
        assert_eq!(semi.len() + anti.len(), p.len());
        assert!(anti.contains(&tuple!["cal", "eli"]));
    }

    #[test]
    fn union_difference_intersect() {
        let p = parent();
        let q = Relation::from_tuples(
            Schema::of_strs("extra", &["p", "c"]),
            vec![tuple!["ann", "bob"], tuple!["zoe", "yan"]],
        )
        .unwrap();
        assert_eq!(union(&p, &q).unwrap().len(), 5);
        assert_eq!(difference(&p, &q).unwrap().len(), 3);
        assert_eq!(intersect(&p, &q).unwrap().len(), 1);
    }

    #[test]
    fn union_all_matches_pairwise_chain() {
        let p = parent();
        let q = Relation::from_tuples(
            Schema::of_strs("extra", &["p", "c"]),
            vec![tuple!["ann", "bob"], tuple!["zoe", "yan"]],
        )
        .unwrap();
        let s = Relation::from_tuples(
            Schema::of_strs("more", &["p", "c"]),
            vec![tuple!["zoe", "yan"], tuple!["uma", "vic"]],
        )
        .unwrap();
        let chained = union(&union(&p, &q).unwrap(), &s).unwrap();
        let nary = union_all([&p, &q, &s]).unwrap();
        assert_eq!(chained, nary);
        assert_eq!(nary.len(), 6);
    }

    #[test]
    fn union_all_rejects_incompatible_and_empty() {
        let p = parent();
        let a = age();
        assert!(union_all([&p, &a]).is_err());
        assert!(union_all([]).is_err());
    }

    #[test]
    fn union_incompatible_rejected() {
        let p = parent();
        let a = age();
        assert!(union(&p, &a).is_err());
    }

    #[test]
    fn aggregate_group_by() {
        let p = parent();
        let counts = aggregate(
            &p,
            &[0],
            &[Aggregate {
                func: AggFunc::Count,
                col: 0,
            }],
        )
        .unwrap();
        assert!(counts.contains(&tuple!["ann", 2]));
        assert!(counts.contains(&tuple!["bob", 1]));
    }

    #[test]
    fn aggregate_global_and_numeric() {
        let a = age();
        let r = aggregate(
            &a,
            &[],
            &[
                Aggregate {
                    func: AggFunc::Sum,
                    col: 1,
                },
                Aggregate {
                    func: AggFunc::Min,
                    col: 1,
                },
                Aggregate {
                    func: AggFunc::Max,
                    col: 1,
                },
                Aggregate {
                    func: AggFunc::Avg,
                    col: 1,
                },
            ],
        )
        .unwrap();
        let row = &r.sorted_tuples()[0];
        assert_eq!(row.values()[0], Value::Int(179));
        assert_eq!(row.values()[1], Value::Int(20));
        assert_eq!(row.values()[2], Value::Int(70));
        assert_eq!(row.values()[3], Value::Float(179.0 / 4.0));
    }

    #[test]
    fn count_of_empty_relation_is_zero() {
        let empty = Relation::new(Schema::of_strs("e", &["x"]));
        let r = aggregate(
            &empty,
            &[],
            &[Aggregate {
                func: AggFunc::Count,
                col: 0,
            }],
        )
        .unwrap();
        assert_eq!(r.sorted_tuples()[0], tuple![0]);
    }

    #[test]
    fn min_of_empty_relation_errors() {
        let empty = Relation::new(Schema::of_strs("e", &["x"]));
        assert!(aggregate(
            &empty,
            &[],
            &[Aggregate {
                func: AggFunc::Min,
                col: 0
            }]
        )
        .is_err());
    }

    #[test]
    fn join_out_of_range_errors() {
        let p = parent();
        assert!(equijoin(&p, &p, &[(5, 0)]).is_err());
    }
}
