//! Error type for the relational substrate.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, RelationalError>;

/// Errors raised by schema construction, operators and expression
/// evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// Two columns in one schema share a name.
    DuplicateColumn(String),
    /// A named column was not found in a schema.
    UnknownColumn { relation: String, column: String },
    /// A positional column reference is out of range.
    ColumnIndexOutOfRange { index: usize, arity: usize },
    /// A tuple's arity does not match its relation's schema.
    ArityMismatch { expected: usize, got: usize },
    /// Two relations combined by union/difference are not compatible.
    NotUnionCompatible { left: String, right: String },
    /// An expression was applied to a value of the wrong type.
    TypeError(String),
    /// Division by zero in an arithmetic expression.
    DivisionByZero,
    /// Aggregate over an empty group where none is defined (e.g. MIN of {}).
    EmptyAggregate(String),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::DuplicateColumn(c) => write!(f, "duplicate column `{c}`"),
            RelationalError::UnknownColumn { relation, column } => {
                write!(f, "unknown column `{column}` in relation `{relation}`")
            }
            RelationalError::ColumnIndexOutOfRange { index, arity } => {
                write!(f, "column index {index} out of range for arity {arity}")
            }
            RelationalError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected}"
                )
            }
            RelationalError::NotUnionCompatible { left, right } => {
                write!(
                    f,
                    "relations `{left}` and `{right}` are not union compatible"
                )
            }
            RelationalError::TypeError(msg) => write!(f, "type error: {msg}"),
            RelationalError::DivisionByZero => write!(f, "division by zero"),
            RelationalError::EmptyAggregate(a) => {
                write!(f, "aggregate `{a}` undefined over an empty group")
            }
        }
    }
}

impl std::error::Error for RelationalError {}
