//! The batched pull executor behind [`crate::plan::PhysicalPlan`].
//!
//! Exactly one implementation of every relational operator lives here.
//! Operators exchange [`TupleBatch`]es — vectors of `Arc`-shared
//! [`Tuple`]s, at most [`ExecConfig::batch_size`] rows from a leaf scan
//! (default 256) — instead of single tuples, amortizing per-row virtual
//! dispatch across a batch. Adjacent filter+project pairs in the plan
//! are *fused* into a single pass over each batch at build time.
//!
//! Two thin modes drive the executor:
//!
//! * **eager** — [`crate::plan::PhysicalPlan::materialize`] pulls batches
//!   to completion and collects them into a [`Relation`], propagating
//!   errors (used by the eager wrappers in [`crate::ops`]);
//! * **generator** — [`crate::plan::PhysicalPlan::open`] wraps the same
//!   operator tree in a [`RunningPlan`], an infallible tuple-at-a-time
//!   stream that deduplicates at the root (the paper's "produces a
//!   single tuple on demand", §5.1).
//!
//! Executor work is observable through [`ExecStats`]: batches and tuples
//! produced by all operators, plus rows pruned by (fused) filters. The
//! CMS and the simulated remote DBMS fold these counters into their own
//! metrics.

use crate::columnar::{ColData, ColVec, ColumnarRelation};
use crate::error::{RelationalError, Result};
use crate::expr::{CmpOp, Expr};
use crate::plan::{AggFunc, Aggregate, PhysicalPlan, PlanNode};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A batch of `Arc`-shared tuples — the unit of exchange between
/// executor operators and across the remote-DBMS stream channel.
pub type TupleBatch = Vec<Tuple>;

/// Executor configuration: the batch-size knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Target rows per leaf batch (operators may emit more after a join
    /// fan-out, or fewer at stream end). Clamped to at least 1.
    pub batch_size: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { batch_size: 256 }
    }
}

impl ExecConfig {
    /// Config with an explicit batch size (clamped to at least 1).
    pub fn with_batch_size(batch_size: usize) -> Self {
        ExecConfig {
            batch_size: batch_size.max(1),
        }
    }
}

/// Shared work counters, bumped by every operator in a running plan.
#[derive(Debug, Default)]
pub struct ExecCounters {
    batches: AtomicU64,
    tuples: AtomicU64,
    rows_pruned: AtomicU64,
}

impl ExecCounters {
    fn produced(&self, rows: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.tuples.fetch_add(rows as u64, Ordering::Relaxed);
    }

    fn pruned(&self, rows: usize) {
        self.rows_pruned.fetch_add(rows as u64, Ordering::Relaxed);
    }

    /// Current totals.
    pub fn snapshot(&self) -> ExecStats {
        ExecStats {
            batches: self.batches.load(Ordering::Relaxed),
            tuples: self.tuples.load(Ordering::Relaxed),
            rows_pruned: self.rows_pruned.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of executor work: how many batches and tuples all
/// operators of a plan produced, and how many rows (fused) filters
/// pruned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Batches produced across all operators.
    pub batches: u64,
    /// Tuples produced across all operators.
    pub tuples: u64,
    /// Rows removed by filter passes (including fused filter+project).
    pub rows_pruned: u64,
}

impl ExecStats {
    /// Accumulate another snapshot into this one.
    pub fn merge(&mut self, other: ExecStats) {
        self.batches += other.batches;
        self.tuples += other.tuples;
        self.rows_pruned += other.rows_pruned;
    }
}

/// A pull-based stream of tuples with a known schema.
pub trait TupleStream: Send {
    /// The schema of produced tuples.
    fn schema(&self) -> &Schema;
    /// Produce the next tuple, or `None` when exhausted.
    fn next_tuple(&mut self) -> Option<Tuple>;
}

// ---------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------

/// One physical operator: pull the next batch, or `None` when drained.
pub(crate) trait Operator: Send {
    fn next_batch(&mut self) -> Result<Option<TupleBatch>>;
}

/// Compile a plan into its operator tree, applying the filter+project
/// fusion rule.
pub(crate) fn build(
    plan: &PhysicalPlan,
    cfg: ExecConfig,
    counters: &Arc<ExecCounters>,
) -> Box<dyn Operator> {
    match &plan.node {
        PlanNode::ScanRel(rel) => Box::new(ScanOp {
            src: ScanSrc::Rel(Arc::clone(rel)),
            pos: 0,
            cfg,
            counters: Arc::clone(counters),
        }),
        PlanNode::ScanRows(rows) => Box::new(ScanOp {
            src: ScanSrc::Rows(Arc::clone(rows)),
            pos: 0,
            cfg,
            counters: Arc::clone(counters),
        }),
        PlanNode::ScanCol(rel) => Box::new(ColScanOp {
            rel: Arc::clone(rel),
            pos: 0,
            cfg,
            counters: Arc::clone(counters),
        }),
        PlanNode::Project { cols, child } => {
            // Vectorized fusion: project over a columnar filter chain
            // runs the whole σ+π as one column-at-a-time pass.
            if let Some((rel, preds)) = columnar_chain(child) {
                return Box::new(ColFilterProjectOp::new(
                    rel,
                    preds,
                    Some(cols.clone().into_boxed_slice()),
                    cfg,
                    counters,
                ));
            }
            // Fusion: project-over-filter becomes one pass per batch.
            if let PlanNode::Filter {
                pred,
                strict,
                child: inner,
            } = &child.node
            {
                return Box::new(FilterProjectOp {
                    pred: Some(pred.clone()),
                    strict: *strict,
                    cols: Some(cols.clone().into_boxed_slice()),
                    child: build(inner, cfg, counters),
                    counters: Arc::clone(counters),
                });
            }
            Box::new(FilterProjectOp {
                pred: None,
                strict: false,
                cols: Some(cols.clone().into_boxed_slice()),
                child: build(child, cfg, counters),
                counters: Arc::clone(counters),
            })
        }
        PlanNode::Filter {
            pred,
            strict,
            child,
        } => {
            // Vectorized path: a filter chain over a columnar scan with
            // total (never-erroring) predicates computes a selection
            // bitmap column-at-a-time. Strictness is moot for such
            // predicates, so both filter modes take this path.
            if let Some((rel, preds)) = columnar_chain(plan) {
                return Box::new(ColFilterProjectOp::new(rel, preds, None, cfg, counters));
            }
            Box::new(FilterProjectOp {
                pred: Some(pred.clone()),
                strict: *strict,
                cols: None,
                child: build(child, cfg, counters),
                counters: Arc::clone(counters),
            })
        }
        PlanNode::HashJoin {
            build: b,
            probe,
            on,
            probe_first,
        } => Box::new(HashJoinOp {
            build_child: Some(build(b, cfg, counters)),
            table: HashMap::new(),
            probe: build(probe, cfg, counters),
            bcols: on.iter().map(|&(a, _)| a).collect(),
            pcols: on.iter().map(|&(_, b)| b).collect(),
            probe_first: *probe_first,
            counters: Arc::clone(counters),
        }),
        PlanNode::Semi {
            left,
            right,
            on,
            anti,
        } => Box::new(SemiOp {
            left: build(left, cfg, counters),
            right_child: Some(build(right, cfg, counters)),
            keys: HashSet::new(),
            lcols: on.iter().map(|&(a, _)| a).collect(),
            rcols: on.iter().map(|&(_, b)| b).collect(),
            anti: *anti,
            counters: Arc::clone(counters),
        }),
        PlanNode::Union(parts) => {
            let mut children: Vec<_> = parts.iter().map(|p| build(p, cfg, counters)).collect();
            children.reverse();
            Box::new(UnionOp {
                rest: children,
                current: None,
            })
        }
        PlanNode::Dedup(child) => Box::new(DedupOp {
            child: build(child, cfg, counters),
            seen: HashSet::new(),
            counters: Arc::clone(counters),
        }),
        PlanNode::Aggregate {
            group_by,
            aggs,
            child,
        } => {
            // Vectorized path: aggregate directly over a columnar filter
            // chain in one fused loop. The chain's rows are duplicate-free
            // (a columnar scan of a set through filters only), so the row
            // operator's dedup pass is skipped soundly.
            if let Some((rel, preds)) = columnar_chain(child) {
                return Box::new(ColAggregateOp {
                    input: Some((rel, preds)),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                    counters: Arc::clone(counters),
                });
            }
            Box::new(AggregateOp {
                child: Some(build(child, cfg, counters)),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
                counters: Arc::clone(counters),
            })
        }
        PlanNode::Limit { n, child } => Box::new(LimitOp {
            child: build(child, cfg, counters),
            remaining: *n,
        }),
    }
}

enum ScanSrc {
    Rel(Arc<Relation>),
    Rows(Arc<Vec<Tuple>>),
}

impl ScanSrc {
    fn len(&self) -> usize {
        match self {
            ScanSrc::Rel(r) => r.len(),
            ScanSrc::Rows(v) => v.len(),
        }
    }

    fn slice(&self, from: usize, to: usize) -> TupleBatch {
        match self {
            ScanSrc::Rel(r) => (from..to).filter_map(|i| r.row(i).cloned()).collect(),
            ScanSrc::Rows(v) => v[from..to].to_vec(),
        }
    }
}

struct ScanOp {
    src: ScanSrc,
    pos: usize,
    cfg: ExecConfig,
    counters: Arc<ExecCounters>,
}

impl Operator for ScanOp {
    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        let len = self.src.len();
        if self.pos >= len {
            return Ok(None);
        }
        let end = (self.pos + self.cfg.batch_size.max(1)).min(len);
        let batch = self.src.slice(self.pos, end);
        self.pos = end;
        self.counters.produced(batch.len());
        Ok(Some(batch))
    }
}

/// σ, π, or the fused σ+π single pass (the fusion rule): evaluates the
/// predicate and projects in one traversal of each batch, reusing one
/// projection index slice per batch instead of re-borrowing per tuple.
struct FilterProjectOp {
    pred: Option<Expr>,
    strict: bool,
    cols: Option<Box<[usize]>>,
    child: Box<dyn Operator>,
    counters: Arc<ExecCounters>,
}

impl Operator for FilterProjectOp {
    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        loop {
            let Some(batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            let mut out = Vec::with_capacity(batch.len());
            let mut pruned = 0usize;
            for t in batch {
                if let Some(pred) = &self.pred {
                    match pred.eval_bool(&t) {
                        Ok(true) => {}
                        Ok(false) => {
                            pruned += 1;
                            continue;
                        }
                        Err(e) if self.strict => return Err(e),
                        Err(_) => {
                            pruned += 1;
                            continue;
                        }
                    }
                }
                out.push(match &self.cols {
                    Some(cols) => t.project(cols),
                    None => t,
                });
            }
            self.counters.pruned(pruned);
            if !out.is_empty() {
                self.counters.produced(out.len());
                return Ok(Some(out));
            }
        }
    }
}

struct HashJoinOp {
    build_child: Option<Box<dyn Operator>>,
    table: HashMap<Vec<Value>, Vec<Tuple>>,
    probe: Box<dyn Operator>,
    bcols: Vec<usize>,
    pcols: Vec<usize>,
    probe_first: bool,
    counters: Arc<ExecCounters>,
}

impl Operator for HashJoinOp {
    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        // Build side is drained lazily, on first pull.
        if let Some(mut b) = self.build_child.take() {
            while let Some(batch) = b.next_batch()? {
                for t in batch {
                    self.table.entry(t.key(&self.bcols)).or_default().push(t);
                }
            }
        }
        loop {
            let Some(batch) = self.probe.next_batch()? else {
                return Ok(None);
            };
            let mut out = Vec::new();
            for p in &batch {
                if let Some(matches) = self.table.get(&p.key(&self.pcols)) {
                    for m in matches {
                        out.push(if self.probe_first {
                            p.concat(m)
                        } else {
                            m.concat(p)
                        });
                    }
                }
            }
            if !out.is_empty() {
                self.counters.produced(out.len());
                return Ok(Some(out));
            }
        }
    }
}

struct SemiOp {
    left: Box<dyn Operator>,
    right_child: Option<Box<dyn Operator>>,
    keys: HashSet<Vec<Value>>,
    lcols: Vec<usize>,
    rcols: Vec<usize>,
    anti: bool,
    counters: Arc<ExecCounters>,
}

impl Operator for SemiOp {
    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if let Some(mut r) = self.right_child.take() {
            while let Some(batch) = r.next_batch()? {
                for t in batch {
                    self.keys.insert(t.key(&self.rcols));
                }
            }
        }
        loop {
            let Some(batch) = self.left.next_batch()? else {
                return Ok(None);
            };
            let mut pruned = 0usize;
            let mut out: TupleBatch = Vec::with_capacity(batch.len());
            for t in batch {
                if self.keys.contains(&t.key(&self.lcols)) != self.anti {
                    out.push(t);
                } else {
                    pruned += 1;
                }
            }
            self.counters.pruned(pruned);
            if !out.is_empty() {
                self.counters.produced(out.len());
                return Ok(Some(out));
            }
        }
    }
}

struct UnionOp {
    /// Remaining children in reverse order (popped from the back).
    rest: Vec<Box<dyn Operator>>,
    current: Option<Box<dyn Operator>>,
}

impl Operator for UnionOp {
    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        loop {
            if self.current.is_none() {
                self.current = self.rest.pop();
            }
            let Some(cur) = self.current.as_mut() else {
                return Ok(None);
            };
            match cur.next_batch()? {
                Some(batch) => return Ok(Some(batch)),
                None => self.current = None,
            }
        }
    }
}

struct DedupOp {
    child: Box<dyn Operator>,
    seen: HashSet<Tuple>,
    counters: Arc<ExecCounters>,
}

impl Operator for DedupOp {
    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        loop {
            let Some(batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            let mut out: TupleBatch = Vec::with_capacity(batch.len());
            for t in batch {
                if self.seen.insert(t.clone()) {
                    out.push(t);
                }
            }
            if !out.is_empty() {
                self.counters.produced(out.len());
                return Ok(Some(out));
            }
        }
    }
}

struct AggregateOp {
    /// `Some` until the single output batch has been produced.
    child: Option<Box<dyn Operator>>,
    group_by: Vec<usize>,
    aggs: Vec<Aggregate>,
    counters: Arc<ExecCounters>,
}

impl Operator for AggregateOp {
    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        let Some(mut child) = self.child.take() else {
            return Ok(None);
        };
        // Aggregation is a pipeline breaker: drain the input (as a set —
        // eager semantics aggregate materialized relations) and group.
        let mut seen: HashSet<Tuple> = HashSet::new();
        let mut groups: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
        while let Some(batch) = child.next_batch()? {
            for t in batch {
                if seen.insert(t.clone()) {
                    groups.entry(t.key(&self.group_by)).or_default().push(t);
                }
            }
        }
        let mut out: TupleBatch = Vec::with_capacity(groups.len());
        if groups.is_empty() && self.group_by.is_empty() {
            // Global aggregate over the empty input: COUNT is 0, other
            // aggregates are undefined.
            let mut row: Vec<Value> = Vec::new();
            for a in &self.aggs {
                match a.func {
                    AggFunc::Count => row.push(Value::Int(0)),
                    other => return Err(RelationalError::EmptyAggregate(other.name().to_string())),
                }
            }
            out.push(Tuple::new(row));
        } else {
            for (key, members) in groups {
                let mut row = key;
                for a in &self.aggs {
                    row.push(eval_agg(a, &members)?);
                }
                out.push(Tuple::new(row));
            }
        }
        self.counters.produced(out.len());
        Ok(Some(out))
    }
}

fn eval_agg(a: &Aggregate, members: &[Tuple]) -> Result<Value> {
    match a.func {
        AggFunc::Count => Ok(Value::Int(members.len() as i64)),
        AggFunc::Min => members
            .iter()
            .map(|t| t.values()[a.col].clone())
            .min()
            .ok_or_else(|| RelationalError::EmptyAggregate("min".into())),
        AggFunc::Max => members
            .iter()
            .map(|t| t.values()[a.col].clone())
            .max()
            .ok_or_else(|| RelationalError::EmptyAggregate("max".into())),
        AggFunc::Sum => {
            let mut int_sum: i64 = 0;
            let mut float_sum: f64 = 0.0;
            let mut any_float = false;
            for t in members {
                match &t.values()[a.col] {
                    Value::Int(i) => int_sum = int_sum.wrapping_add(*i),
                    Value::Float(f) => {
                        any_float = true;
                        float_sum += f;
                    }
                    other => {
                        return Err(RelationalError::TypeError(format!(
                            "SUM over non-numeric value {other}"
                        )))
                    }
                }
            }
            if any_float {
                Ok(Value::Float(float_sum + int_sum as f64))
            } else {
                Ok(Value::Int(int_sum))
            }
        }
        AggFunc::Avg => {
            if members.is_empty() {
                return Err(RelationalError::EmptyAggregate("avg".into()));
            }
            let mut sum = 0.0;
            for t in members {
                sum += t.values()[a.col].as_f64().ok_or_else(|| {
                    RelationalError::TypeError("AVG over non-numeric value".into())
                })?;
            }
            Ok(Value::Float(sum / members.len() as f64))
        }
    }
}

struct LimitOp {
    child: Box<dyn Operator>,
    remaining: usize,
}

impl Operator for LimitOp {
    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let Some(mut batch) = self.child.next_batch()? else {
            return Ok(None);
        };
        if batch.len() > self.remaining {
            batch.truncate(self.remaining);
        }
        self.remaining -= batch.len();
        Ok(Some(batch))
    }
}

// ---------------------------------------------------------------------
// Vectorized (columnar) kernels
// ---------------------------------------------------------------------

/// Match a `Filter*(ScanCol)` chain whose predicates are all
/// *vectorizable*: boolean trees of comparisons over in-range columns
/// and constants. Such predicates can never error, so the selection can
/// be computed column-at-a-time as a bitmap with semantics identical to
/// per-tuple evaluation in either filter mode.
fn columnar_chain(plan: &PhysicalPlan) -> Option<(Arc<ColumnarRelation>, Vec<Expr>)> {
    fn walk(plan: &PhysicalPlan, preds: &mut Vec<Expr>) -> Option<Arc<ColumnarRelation>> {
        match &plan.node {
            PlanNode::ScanCol(rel) => Some(Arc::clone(rel)),
            PlanNode::Filter { pred, child, .. } => {
                let rel = walk(child, preds)?;
                preds.push(pred.clone());
                Some(rel)
            }
            _ => None,
        }
    }
    let mut preds = Vec::new();
    let rel = walk(plan, &mut preds)?;
    let arity = rel.arity();
    preds
        .iter()
        .all(|p| vectorizable_pred(p, arity))
        .then_some((rel, preds))
}

/// A boolean expression the bitmap kernel can evaluate: comparisons,
/// conjunctions, disjunctions and negations over columns (in range) and
/// constants. Every node yields a boolean and no node can error, which
/// is what makes strict and errors-as-unknown filters coincide.
fn vectorizable_pred(e: &Expr, arity: usize) -> bool {
    fn scalar(e: &Expr, arity: usize) -> bool {
        match e {
            Expr::Col(i) => *i < arity,
            Expr::Const(_) => true,
            _ => false,
        }
    }
    match e {
        Expr::Const(Value::Bool(_)) => true,
        Expr::Cmp(_, a, b) => scalar(a, arity) && scalar(b, arity),
        Expr::And(es) | Expr::Or(es) => es.iter().all(|e| vectorizable_pred(e, arity)),
        Expr::Not(inner) => vectorizable_pred(inner, arity),
        _ => false,
    }
}

/// AND together the bitmaps of a filter chain's predicates.
fn selection_bitmap(rel: &ColumnarRelation, preds: &[Expr]) -> Vec<bool> {
    let mut sel = vec![true; rel.len()];
    for p in preds {
        for (s, v) in sel.iter_mut().zip(pred_bitmap(rel, p)) {
            *s &= v;
        }
    }
    sel
}

/// One predicate as a bitmap over all rows. Logical connectives combine
/// child bitmaps; in the vectorizable subset no operand can error, so
/// eager bitwise combination equals the row evaluator's short-circuit.
fn pred_bitmap(rel: &ColumnarRelation, e: &Expr) -> Vec<bool> {
    let n = rel.len();
    match e {
        Expr::Const(Value::Bool(b)) => vec![*b; n],
        Expr::And(es) => {
            let mut acc = vec![true; n];
            for e in es {
                for (a, v) in acc.iter_mut().zip(pred_bitmap(rel, e)) {
                    *a &= v;
                }
            }
            acc
        }
        Expr::Or(es) => {
            let mut acc = vec![false; n];
            for e in es {
                for (a, v) in acc.iter_mut().zip(pred_bitmap(rel, e)) {
                    *a |= v;
                }
            }
            acc
        }
        Expr::Not(inner) => {
            let mut acc = pred_bitmap(rel, inner);
            for v in &mut acc {
                *v = !*v;
            }
            acc
        }
        Expr::Cmp(op, a, b) => cmp_bitmap(rel, *op, a, b),
        _ => unreachable!("guarded by vectorizable_pred"),
    }
}

fn cmp_bitmap(rel: &ColumnarRelation, op: CmpOp, a: &Expr, b: &Expr) -> Vec<bool> {
    match (a, b) {
        (Expr::Col(i), Expr::Const(v)) => col_const_bitmap(rel.col(*i), op, v),
        // `const op col` flips to `col flipped(op) const`.
        (Expr::Const(v), Expr::Col(i)) => col_const_bitmap(rel.col(*i), op.flipped(), v),
        (Expr::Col(i), Expr::Col(j)) => (0..rel.len())
            .map(|r| op.eval(&rel.value_at(r, *i), &rel.value_at(r, *j)))
            .collect(),
        (Expr::Const(u), Expr::Const(v)) => vec![op.eval(u, v); rel.len()],
        _ => unreachable!("guarded by vectorizable_pred"),
    }
}

/// `column op constant` over every row. Typed columns compared against a
/// numeric constant run a tight loop replicating [`CmpOp::eval`]'s
/// numeric path exactly (ints widen to f64, `total_cmp`); string columns
/// compare once per *dictionary entry* and map codes through the table;
/// everything else falls back to per-slot [`CmpOp::eval`]. Null slots
/// are patched afterwards with the null-vs-constant result.
fn col_const_bitmap(col: &ColVec, op: CmpOp, v: &Value) -> Vec<bool> {
    let mut out: Vec<bool> = match (&col.data, v.as_f64()) {
        (ColData::Ints(xs), Some(y)) => xs
            .iter()
            .map(|&x| op.holds((x as f64).total_cmp(&y)))
            .collect(),
        (ColData::Floats(xs), Some(y)) => xs.iter().map(|&x| op.holds(x.total_cmp(&y))).collect(),
        (ColData::Strs { dict, codes }, _) => {
            let table: Vec<bool> = dict
                .iter()
                .map(|s| op.eval(&Value::Str(Arc::clone(s)), v))
                .collect();
            codes.iter().map(|&c| table[c as usize]).collect()
        }
        (ColData::Mixed(vals), _) => vals.iter().map(|x| op.eval(x, v)).collect(),
        // Bool columns, and typed numerics against a non-numeric
        // constant: row semantics bottom out in the total value order;
        // evaluate per raw slot (null slots are patched below).
        _ => (0..col.len())
            .map(|i| op.eval(&col.raw_value_at(i), v))
            .collect(),
    };
    if let Some(valid) = &col.validity {
        let null_result = op.eval(&Value::Null, v);
        for (o, &ok) in out.iter_mut().zip(valid) {
            if !ok {
                *o = null_result;
            }
        }
    }
    out
}

/// Leaf scan over a columnar relation, emitting ordinary row batches —
/// the universal fallback that lets every row operator (joins, unions,
/// dedup, non-vectorizable filters) consume columnar inputs unchanged.
struct ColScanOp {
    rel: Arc<ColumnarRelation>,
    pos: usize,
    cfg: ExecConfig,
    counters: Arc<ExecCounters>,
}

impl Operator for ColScanOp {
    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        let len = self.rel.len();
        if self.pos >= len {
            return Ok(None);
        }
        let end = (self.pos + self.cfg.batch_size.max(1)).min(len);
        let batch: TupleBatch = (self.pos..end).map(|i| self.rel.tuple_at(i)).collect();
        self.pos = end;
        self.counters.produced(batch.len());
        Ok(Some(batch))
    }
}

/// Vectorized σ(+π): the whole filter chain becomes one selection bitmap
/// (computed on first pull), and only surviving rows are materialized as
/// tuples — pruned rows never pay tuple construction.
struct ColFilterProjectOp {
    rel: Arc<ColumnarRelation>,
    preds: Vec<Expr>,
    cols: Option<Box<[usize]>>,
    /// Surviving row ids, computed on first pull.
    sel: Option<Vec<u32>>,
    pos: usize,
    cfg: ExecConfig,
    counters: Arc<ExecCounters>,
}

impl ColFilterProjectOp {
    fn new(
        rel: Arc<ColumnarRelation>,
        preds: Vec<Expr>,
        cols: Option<Box<[usize]>>,
        cfg: ExecConfig,
        counters: &Arc<ExecCounters>,
    ) -> ColFilterProjectOp {
        ColFilterProjectOp {
            rel,
            preds,
            cols,
            sel: None,
            pos: 0,
            cfg,
            counters: Arc::clone(counters),
        }
    }
}

impl Operator for ColFilterProjectOp {
    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if self.sel.is_none() {
            let bitmap = selection_bitmap(&self.rel, &self.preds);
            let sel: Vec<u32> = bitmap
                .iter()
                .enumerate()
                .filter_map(|(i, &keep)| keep.then_some(i as u32))
                .collect();
            self.counters.pruned(self.rel.len() - sel.len());
            self.sel = Some(sel);
        }
        let sel = self.sel.as_ref().expect("computed above");
        if self.pos >= sel.len() {
            return Ok(None);
        }
        let end = (self.pos + self.cfg.batch_size.max(1)).min(sel.len());
        let batch: TupleBatch = sel[self.pos..end]
            .iter()
            .map(|&r| {
                let r = r as usize;
                match &self.cols {
                    Some(cols) => {
                        Tuple::new(cols.iter().map(|&c| self.rel.value_at(r, c)).collect())
                    }
                    None => self.rel.tuple_at(r),
                }
            })
            .collect();
        self.pos = end;
        self.counters.produced(batch.len());
        Ok(Some(batch))
    }
}

/// Per-group accumulator mirroring [`eval_agg`] exactly: same wrapping
/// integer sums, same int-then-float widening, same error messages —
/// but fed one value at a time in row order instead of from a collected
/// member vector.
enum AggAcc {
    Count(i64),
    Min(Option<Value>),
    Max(Option<Value>),
    Sum {
        int_sum: i64,
        float_sum: f64,
        any_float: bool,
    },
    Avg {
        sum: f64,
        n: usize,
    },
}

impl AggAcc {
    fn new(func: AggFunc) -> AggAcc {
        match func {
            AggFunc::Count => AggAcc::Count(0),
            AggFunc::Min => AggAcc::Min(None),
            AggFunc::Max => AggAcc::Max(None),
            AggFunc::Sum => AggAcc::Sum {
                int_sum: 0,
                float_sum: 0.0,
                any_float: false,
            },
            AggFunc::Avg => AggAcc::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, v: Value) -> Result<()> {
        match self {
            AggAcc::Count(n) => *n += 1,
            // `Iterator::min` keeps the first of equals, `max` the last;
            // mirror that with `<` and `>=` (equal values are
            // interchangeable, but stay pedantic).
            AggAcc::Min(cur) => {
                if cur.as_ref().is_none_or(|c| v < *c) {
                    *cur = Some(v);
                }
            }
            AggAcc::Max(cur) => {
                if cur.as_ref().is_none_or(|c| v >= *c) {
                    *cur = Some(v);
                }
            }
            AggAcc::Sum {
                int_sum,
                float_sum,
                any_float,
            } => match v {
                Value::Int(i) => *int_sum = int_sum.wrapping_add(i),
                Value::Float(f) => {
                    *any_float = true;
                    *float_sum += f;
                }
                other => {
                    return Err(RelationalError::TypeError(format!(
                        "SUM over non-numeric value {other}"
                    )))
                }
            },
            AggAcc::Avg { sum, n } => {
                *sum += v.as_f64().ok_or_else(|| {
                    RelationalError::TypeError("AVG over non-numeric value".into())
                })?;
                *n += 1;
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<Value> {
        match self {
            AggAcc::Count(n) => Ok(Value::Int(n)),
            AggAcc::Min(v) => v.ok_or_else(|| RelationalError::EmptyAggregate("min".into())),
            AggAcc::Max(v) => v.ok_or_else(|| RelationalError::EmptyAggregate("max".into())),
            AggAcc::Sum {
                int_sum,
                float_sum,
                any_float,
            } => {
                if any_float {
                    Ok(Value::Float(float_sum + int_sum as f64))
                } else {
                    Ok(Value::Int(int_sum))
                }
            }
            AggAcc::Avg { sum, n } => {
                if n == 0 {
                    return Err(RelationalError::EmptyAggregate("avg".into()));
                }
                Ok(Value::Float(sum / n as f64))
            }
        }
    }
}

/// Fused vectorized σ→γ: selection bitmap first, then a single
/// accumulate pass over surviving rows — no intermediate tuples, no
/// dedup hashing (the input is duplicate-free by construction).
struct ColAggregateOp {
    /// `Some` until the single output batch has been produced.
    input: Option<(Arc<ColumnarRelation>, Vec<Expr>)>,
    group_by: Vec<usize>,
    aggs: Vec<Aggregate>,
    counters: Arc<ExecCounters>,
}

impl Operator for ColAggregateOp {
    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        let Some((rel, preds)) = self.input.take() else {
            return Ok(None);
        };
        let bitmap = selection_bitmap(&rel, &preds);
        let mut groups: HashMap<Vec<Value>, Vec<AggAcc>> = HashMap::new();
        let mut selected = 0usize;
        for (r, keep) in bitmap.into_iter().enumerate() {
            if !keep {
                continue;
            }
            selected += 1;
            let key: Vec<Value> = self.group_by.iter().map(|&c| rel.value_at(r, c)).collect();
            let accs = groups
                .entry(key)
                .or_insert_with(|| self.aggs.iter().map(|a| AggAcc::new(a.func)).collect());
            for (acc, a) in accs.iter_mut().zip(&self.aggs) {
                acc.update(rel.value_at(r, a.col))?;
            }
        }
        self.counters.pruned(rel.len() - selected);
        let mut out: TupleBatch = Vec::with_capacity(groups.len());
        if groups.is_empty() && self.group_by.is_empty() {
            // Global aggregate over the empty input: COUNT is 0, other
            // aggregates are undefined — identical to the row operator.
            let mut row: Vec<Value> = Vec::new();
            for a in &self.aggs {
                match a.func {
                    AggFunc::Count => row.push(Value::Int(0)),
                    other => return Err(RelationalError::EmptyAggregate(other.name().to_string())),
                }
            }
            out.push(Tuple::new(row));
        } else {
            for (key, accs) in groups {
                let mut row = key;
                for acc in accs {
                    row.push(acc.finish()?);
                }
                out.push(Tuple::new(row));
            }
        }
        self.counters.produced(out.len());
        Ok(Some(out))
    }
}

// ---------------------------------------------------------------------
// Generator mode
// ---------------------------------------------------------------------

/// An opened plan in generator mode: the paper's "stream \[that\] will
/// produce a tuple on demand" (§5.5). Internally the stream pulls whole
/// batches from the executor and hands out one tuple at a time,
/// deduplicating at the root (set semantics).
///
/// The stream is infallible ([`TupleStream::next_tuple`] returns
/// `Option`); a strict-filter or aggregate error ends the stream early
/// and is stashed in [`RunningPlan::error`]. Plans built through the
/// generator API use errors-as-unknown filters and cannot fail.
pub struct RunningPlan {
    op: Box<dyn Operator>,
    schema: Schema,
    batch: std::vec::IntoIter<Tuple>,
    seen: HashSet<Tuple>,
    produced: usize,
    lifetime: Option<Arc<AtomicUsize>>,
    counters: Arc<ExecCounters>,
    error: Option<RelationalError>,
}

impl RunningPlan {
    pub(crate) fn new(op: Box<dyn Operator>, schema: Schema, counters: Arc<ExecCounters>) -> Self {
        RunningPlan {
            op,
            schema,
            batch: Vec::new().into_iter(),
            seen: HashSet::new(),
            produced: 0,
            lifetime: None,
            counters,
            error: None,
        }
    }

    /// Attach a counter that accumulates produced tuples across runs
    /// (used by [`crate::lazy::Generator`] to count over re-opens).
    pub(crate) fn attach_lifetime_counter(&mut self, counter: Arc<AtomicUsize>) {
        self.lifetime = Some(counter);
    }

    /// How many tuples **this run** has produced so far. A re-opened
    /// plan starts a fresh run; see
    /// [`crate::lazy::Generator::total_produced`] for the counter that
    /// accumulates across opens.
    pub fn produced(&self) -> usize {
        self.produced
    }

    /// Executor work counters for this run.
    pub fn stats(&self) -> ExecStats {
        self.counters.snapshot()
    }

    /// The error that ended the stream early, if any. Always `None` for
    /// plans built through the generator API.
    pub fn error(&self) -> Option<&RelationalError> {
        self.error.as_ref()
    }
}

impl TupleStream for RunningPlan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_tuple(&mut self) -> Option<Tuple> {
        if self.error.is_some() {
            return None;
        }
        loop {
            if let Some(t) = self.batch.next() {
                if self.seen.insert(t.clone()) {
                    self.produced += 1;
                    if let Some(l) = &self.lifetime {
                        l.fetch_add(1, Ordering::Relaxed);
                    }
                    return Some(t);
                }
                continue;
            }
            match self.op.next_batch() {
                Ok(Some(batch)) => self.batch = batch.into_iter(),
                Ok(None) => return None,
                Err(e) => {
                    self.error = Some(e);
                    return None;
                }
            }
        }
    }
}

impl Iterator for RunningPlan {
    type Item = Tuple;
    fn next(&mut self) -> Option<Tuple> {
        self.next_tuple()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::plan::PhysicalPlan;
    use crate::{tuple, Schema};

    fn nums(n: i64) -> Arc<Relation> {
        let mut r = Relation::new(Schema::of_strs("n", &["x"]));
        for i in 0..n {
            r.insert(tuple![i]).unwrap();
        }
        Arc::new(r)
    }

    #[test]
    fn scans_respect_batch_size() {
        let plan = PhysicalPlan::scan(nums(10));
        let (rel, stats) = plan
            .materialize_with(ExecConfig::with_batch_size(3))
            .unwrap();
        assert_eq!(rel.len(), 10);
        assert_eq!(stats.batches, 4); // 3 + 3 + 3 + 1
        assert_eq!(stats.tuples, 10);
    }

    #[test]
    fn fused_filter_project_counts_pruned_rows() {
        let plan = PhysicalPlan::scan(nums(10))
            .filter(Expr::col_cmp(0, CmpOp::Lt, 4))
            .project(&[0])
            .unwrap();
        let (rel, stats) = plan.materialize_with(ExecConfig::default()).unwrap();
        assert_eq!(rel.len(), 4);
        assert_eq!(stats.rows_pruned, 6);
        // One scan batch + one fused batch: fusion did not add a
        // separate projection pass.
        assert_eq!(stats.batches, 2);
    }

    #[test]
    fn batch_size_one_equals_default() {
        let plan = PhysicalPlan::scan(nums(20))
            .filter(Expr::col_cmp(0, CmpOp::Ge, 5))
            .project(&[0])
            .unwrap();
        let small = plan
            .materialize_with(ExecConfig::with_batch_size(1))
            .unwrap()
            .0;
        let big = plan
            .materialize_with(ExecConfig::with_batch_size(256))
            .unwrap()
            .0;
        assert_eq!(small, big);
    }

    #[test]
    fn limit_stops_pulling_early() {
        let plan = PhysicalPlan::scan(nums(1000)).limit(5);
        let (rel, stats) = plan
            .materialize_with(ExecConfig::with_batch_size(10))
            .unwrap();
        assert_eq!(rel.len(), 5);
        // Only the first scan batch was pulled.
        assert_eq!(stats.tuples, 10);
    }

    #[test]
    fn columnar_filter_is_one_fused_pass() {
        use crate::columnar::ColumnarRelation;
        let rel = nums(100);
        let col = Arc::new(ColumnarRelation::from_relation(&rel));
        let pred = Expr::col_cmp(0, CmpOp::Lt, 10);

        let row_plan = PhysicalPlan::scan(Arc::clone(&rel)).filter(pred.clone());
        let col_plan = PhysicalPlan::scan_columnar(Arc::clone(&col)).filter(pred.clone());
        let (row_rel, row_stats) = row_plan.materialize_with(ExecConfig::default()).unwrap();
        let (col_rel, col_stats) = col_plan.materialize_with(ExecConfig::default()).unwrap();

        assert_eq!(row_rel, col_rel);
        assert_eq!(col_stats.rows_pruned, 90);
        // The vectorized operator emits only its own output batches —
        // no separate scan batches — so it does strictly less batch work.
        assert!(col_stats.batches < row_stats.batches);

        // Strict mode takes the same vectorized path (the predicate is
        // total) and agrees too.
        let strict = PhysicalPlan::scan_columnar(col)
            .filter_strict(pred)
            .materialize()
            .unwrap();
        assert_eq!(strict, col_rel);
    }

    #[test]
    fn columnar_aggregate_fuses_filter_and_skips_dedup() {
        use crate::columnar::ColumnarRelation;
        let rel = nums(50);
        let col = Arc::new(ColumnarRelation::from_relation(&rel));
        let agg = [Aggregate {
            func: AggFunc::Sum,
            col: 0,
        }];
        let pred = Expr::col_cmp(0, CmpOp::Ge, 40);
        let row = PhysicalPlan::scan(rel)
            .filter(pred.clone())
            .aggregate(&[], &agg)
            .unwrap()
            .materialize()
            .unwrap();
        let fused = PhysicalPlan::scan_columnar(col)
            .filter(pred)
            .aggregate(&[], &agg)
            .unwrap()
            .materialize()
            .unwrap();
        assert_eq!(row, fused);
        assert_eq!(
            fused.to_vec(),
            vec![tuple![40 + 41 + 42 + 43 + 44 + 45 + 46 + 47 + 48 + 49]]
        );
    }

    #[test]
    fn columnar_empty_global_count_matches_row_semantics() {
        use crate::columnar::ColumnarRelation;
        let rel = nums(0);
        let col = Arc::new(ColumnarRelation::from_relation(&rel));
        let count = [Aggregate {
            func: AggFunc::Count,
            col: 0,
        }];
        let got = PhysicalPlan::scan_columnar(Arc::clone(&col))
            .aggregate(&[], &count)
            .unwrap()
            .materialize()
            .unwrap();
        assert_eq!(got.to_vec(), vec![tuple![0]]);
        // Non-count aggregates over an empty input error, like row mode.
        let sum = [Aggregate {
            func: AggFunc::Sum,
            col: 0,
        }];
        assert!(PhysicalPlan::scan_columnar(col)
            .aggregate(&[], &sum)
            .unwrap()
            .materialize()
            .is_err());
    }

    #[test]
    fn non_vectorizable_predicate_falls_back_to_row_filter() {
        use crate::columnar::ColumnarRelation;
        let rel = nums(10);
        let col = Arc::new(ColumnarRelation::from_relation(&rel));
        // x + 0 >= 5 involves arithmetic: not vectorizable, so the plan
        // runs ColScanOp + row FilterProjectOp — and still agrees.
        let pred = Expr::Cmp(
            CmpOp::Ge,
            Box::new(Expr::Add(
                Box::new(Expr::Col(0)),
                Box::new(Expr::Const(Value::Int(0))),
            )),
            Box::new(Expr::Const(Value::Int(5))),
        );
        let row = PhysicalPlan::scan(rel)
            .filter(pred.clone())
            .materialize()
            .unwrap();
        let colr = PhysicalPlan::scan_columnar(col)
            .filter(pred)
            .materialize()
            .unwrap();
        assert_eq!(row, colr);
        assert_eq!(colr.len(), 5);
    }

    #[test]
    fn running_plan_stashes_strict_errors() {
        let plan = PhysicalPlan::scan(nums(3)).filter_strict(Expr::col_cmp(7, CmpOp::Eq, 1));
        let mut running = plan.open();
        assert!(running.next_tuple().is_none());
        assert!(running.error().is_some());
    }
}
