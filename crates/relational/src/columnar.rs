//! Column-major relation representation — the cache's third
//! representation alongside the row extension and the lazy generator.
//!
//! The paper's CMS "frequently maintains co-existing, alternative
//! representations of the same relation" (§5.2). A [`ColumnarRelation`]
//! is an alternative *extension* format: per-column typed vectors
//! (`i64` / `f64` / `bool`), dictionary-encoded strings, and a validity
//! mask for nulls, with a [`ColData::Mixed`] fallback for heterogeneous
//! columns. Conversion from and back to a row [`Relation`] is lossless
//! (`Relation → ColumnarRelation → Relation` is the identity, including
//! row order), so the CMS can flip an element between representations as
//! its consumers change.
//!
//! Invariant: a `ColumnarRelation` is only ever built from a [`Relation`]
//! (a set), so its rows are duplicate-free — the vectorized aggregate
//! kernel in [`crate::exec`] relies on this to skip the row operator's
//! dedup pass.

use crate::error::Result;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};
use std::collections::HashMap;
use std::sync::Arc;

/// The typed storage behind one column.
#[derive(Debug, Clone)]
pub(crate) enum ColData {
    /// All non-null values are integers.
    Ints(Vec<i64>),
    /// All non-null values are floats.
    Floats(Vec<f64>),
    /// All non-null values are booleans.
    Bools(Vec<bool>),
    /// All non-null values are strings, dictionary-encoded: `codes[i]`
    /// indexes `dict` (first-occurrence order). Null slots hold code 0
    /// as a placeholder and are masked by the validity vector.
    Strs {
        dict: Vec<Arc<str>>,
        codes: Vec<u32>,
    },
    /// Heterogeneous (or all-null) column: values stored verbatim,
    /// nulls included.
    Mixed(Vec<Value>),
}

impl ColData {
    fn len(&self) -> usize {
        match self {
            ColData::Ints(v) => v.len(),
            ColData::Floats(v) => v.len(),
            ColData::Bools(v) => v.len(),
            ColData::Strs { codes, .. } => codes.len(),
            ColData::Mixed(v) => v.len(),
        }
    }
}

/// One column: typed data plus an optional validity mask.
#[derive(Debug, Clone)]
pub struct ColVec {
    pub(crate) data: ColData,
    /// `Some(mask)` when the column contains nulls: `mask[i] == false`
    /// marks row `i` as null (the typed slot holds a placeholder).
    /// `None` means every slot is valid.
    pub(crate) validity: Option<Vec<bool>>,
}

impl ColVec {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `row` holds a null.
    pub fn is_null(&self, row: usize) -> bool {
        self.validity.as_ref().is_some_and(|v| !v[row])
    }

    /// The value at `row`, honoring the validity mask.
    pub fn value_at(&self, row: usize) -> Value {
        if self.is_null(row) {
            return Value::Null;
        }
        self.raw_value_at(row)
    }

    /// The typed slot at `row`, ignoring the validity mask (null slots
    /// yield their placeholder). The vectorized kernels compute over raw
    /// slots and patch null rows afterwards.
    pub(crate) fn raw_value_at(&self, row: usize) -> Value {
        match &self.data {
            ColData::Ints(v) => Value::Int(v[row]),
            ColData::Floats(v) => Value::Float(v[row]),
            ColData::Bools(v) => Value::Bool(v[row]),
            ColData::Strs { dict, codes } => Value::Str(Arc::clone(&dict[codes[row] as usize])),
            ColData::Mixed(v) => v[row].clone(),
        }
    }

    /// Approximate bytes held by this column.
    pub fn approx_size(&self) -> usize {
        let data = match &self.data {
            ColData::Ints(v) => 8 * v.len(),
            ColData::Floats(v) => 8 * v.len(),
            ColData::Bools(v) => v.len(),
            ColData::Strs { dict, codes } => {
                dict.iter().map(|s| 16 + s.len()).sum::<usize>() + 4 * codes.len()
            }
            ColData::Mixed(v) => v.iter().map(Value::approx_size).sum(),
        };
        data + self.validity.as_ref().map_or(0, Vec::len)
    }

    /// Number of dictionary entries (string columns only) — exposed for
    /// tests and stats.
    pub fn dict_len(&self) -> Option<usize> {
        match &self.data {
            ColData::Strs { dict, .. } => Some(dict.len()),
            _ => None,
        }
    }
}

/// A relation stored column-major. See the module docs for the format
/// and the set-ness invariant.
#[derive(Debug, Clone)]
pub struct ColumnarRelation {
    schema: Schema,
    len: usize,
    cols: Vec<ColVec>,
}

impl ColumnarRelation {
    /// Convert a row relation into columnar form. Row order is
    /// preserved; indices and the dedup set are not carried over (the
    /// columnar form has no point-probe structures — that is the row
    /// representation's job).
    pub fn from_relation(rel: &Relation) -> ColumnarRelation {
        let arity = rel.schema().arity();
        let cols = (0..arity).map(|c| build_col(rel, c)).collect();
        ColumnarRelation {
            schema: rel.schema().clone(),
            len: rel.len(),
            cols,
        }
    }

    /// Convert back to a row relation — the lossless inverse of
    /// [`ColumnarRelation::from_relation`], preserving row order.
    ///
    /// # Errors
    /// Propagates relation-construction errors (arity always matches,
    /// so this cannot fail in practice).
    pub fn to_relation(&self) -> Result<Relation> {
        let mut rel = Relation::new(self.schema.clone());
        for i in 0..self.len {
            rel.insert(self.tuple_at(i))?;
        }
        Ok(rel)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The column at index `c`.
    pub fn col(&self, c: usize) -> &ColVec {
        &self.cols[c]
    }

    /// The value at (`row`, `col`).
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.cols[col].value_at(row)
    }

    /// Materialize row `row` as a tuple.
    pub fn tuple_at(&self, row: usize) -> Tuple {
        Tuple::new(self.cols.iter().map(|c| c.value_at(row)).collect())
    }

    /// Approximate bytes held (dictionary encoding typically makes this
    /// smaller than the row extension for repetitive string columns).
    pub fn approx_size(&self) -> usize {
        64 + self.cols.iter().map(ColVec::approx_size).sum::<usize>()
    }
}

/// Build one column: pick the tightest representation that holds every
/// non-null value, falling back to [`ColData::Mixed`] for heterogeneous
/// or all-null columns.
fn build_col(rel: &Relation, c: usize) -> ColVec {
    let mut has_null = false;
    let mut ty: Option<ValueType> = None;
    let mut mixed = false;
    for t in rel.iter() {
        match &t.values()[c] {
            Value::Null => has_null = true,
            v => {
                let vt = v.value_type();
                match ty {
                    None => ty = Some(vt),
                    Some(t0) if t0 == vt => {}
                    Some(_) => {
                        mixed = true;
                        break;
                    }
                }
            }
        }
    }
    let Some(ty) = ty.filter(|_| !mixed) else {
        return ColVec {
            data: ColData::Mixed(rel.iter().map(|t| t.values()[c].clone()).collect()),
            validity: None,
        };
    };
    let validity = has_null.then(|| {
        rel.iter()
            .map(|t| !matches!(t.values()[c], Value::Null))
            .collect()
    });
    let data = match ty {
        ValueType::Int => ColData::Ints(
            rel.iter()
                .map(|t| t.values()[c].as_int().unwrap_or(0))
                .collect(),
        ),
        ValueType::Float => ColData::Floats(
            rel.iter()
                .map(|t| match &t.values()[c] {
                    Value::Float(f) => *f,
                    _ => 0.0,
                })
                .collect(),
        ),
        ValueType::Bool => ColData::Bools(
            rel.iter()
                .map(|t| t.values()[c].as_bool().unwrap_or(false))
                .collect(),
        ),
        ValueType::Str => {
            let mut dict: Vec<Arc<str>> = Vec::new();
            let mut codes: Vec<u32> = Vec::with_capacity(rel.len());
            let mut interned: HashMap<Arc<str>, u32> = HashMap::new();
            for t in rel.iter() {
                match &t.values()[c] {
                    Value::Str(s) => {
                        let code = *interned.entry(Arc::clone(s)).or_insert_with(|| {
                            dict.push(Arc::clone(s));
                            (dict.len() - 1) as u32
                        });
                        codes.push(code);
                    }
                    _ => codes.push(0),
                }
            }
            ColData::Strs { dict, codes }
        }
        ValueType::Null => unreachable!("all-null columns take the Mixed arm"),
    };
    ColVec { data, validity }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, Schema};

    fn roundtrip(rel: &Relation) -> Relation {
        ColumnarRelation::from_relation(rel).to_relation().unwrap()
    }

    fn typed_rel() -> Relation {
        Relation::from_tuples(
            Schema::of_strs("t", &["i", "s", "f", "b"]),
            vec![
                tuple![1, "alpha", 1.5, true],
                tuple![2, "beta", -0.5, false],
                tuple![3, "alpha", 2.25, true],
            ],
        )
        .unwrap()
    }

    #[test]
    fn typed_columns_round_trip_in_order() {
        let rel = typed_rel();
        let col = ColumnarRelation::from_relation(&rel);
        assert_eq!(col.len(), 3);
        assert_eq!(col.arity(), 4);
        let back = col.to_relation().unwrap();
        assert_eq!(back, rel);
        // Row order is preserved, not just the set.
        assert_eq!(back.to_vec(), rel.to_vec());
    }

    #[test]
    fn strings_are_dictionary_encoded() {
        let mut rel = Relation::new(Schema::of_strs("s", &["k", "i"]));
        for i in 0..100i64 {
            rel.insert(tuple![format!("k{}", i % 4), i]).unwrap();
        }
        let col = ColumnarRelation::from_relation(&rel);
        // 100 rows share 4 distinct strings: the dictionary holds exactly
        // those, every row is a code.
        assert_eq!(col.len(), 100);
        assert_eq!(col.col(0).dict_len(), Some(4));
        assert_eq!(col.to_relation().unwrap(), rel);
    }

    #[test]
    fn dictionary_handles_empty_strings_and_many_codes() {
        let mut rel = Relation::new(Schema::of_strs("s", &["k", "v"]));
        rel.insert(tuple!["", 0]).unwrap();
        for i in 0..300i64 {
            rel.insert(tuple![format!("v{i}"), i]).unwrap();
        }
        let col = ColumnarRelation::from_relation(&rel);
        // > 255 distinct values: codes are u32, not u8.
        assert_eq!(col.col(0).dict_len(), Some(301));
        assert_eq!(col.value_at(0, 0), Value::str(""));
        assert_eq!(col.to_relation().unwrap(), rel);
    }

    #[test]
    fn nulls_round_trip_through_validity_masks() {
        let rel = Relation::from_tuples(
            Schema::of_strs("n", &["i", "s"]),
            vec![
                tuple![1, "a"],
                Tuple::new(vec![Value::Null, Value::str("b")]),
                Tuple::new(vec![Value::Int(3), Value::Null]),
                Tuple::new(vec![Value::Null, Value::Null]),
            ],
        )
        .unwrap();
        let col = ColumnarRelation::from_relation(&rel);
        assert!(col.col(0).is_null(1));
        assert_eq!(col.value_at(1, 0), Value::Null);
        assert_eq!(col.value_at(2, 0), Value::Int(3));
        assert_eq!(roundtrip(&rel), rel);
    }

    #[test]
    fn heterogeneous_and_all_null_columns_fall_back_to_mixed() {
        let rel = Relation::from_tuples(
            Schema::of_strs("m", &["x", "z"]),
            vec![
                Tuple::new(vec![Value::Int(1), Value::Null]),
                Tuple::new(vec![Value::str("two"), Value::Null]),
                Tuple::new(vec![Value::Float(3.0), Value::Null]),
            ],
        )
        .unwrap();
        let col = ColumnarRelation::from_relation(&rel);
        assert!(matches!(col.col(0).data, ColData::Mixed(_)));
        assert!(matches!(col.col(1).data, ColData::Mixed(_)));
        assert_eq!(roundtrip(&rel), rel);
    }

    #[test]
    fn empty_relation_round_trips() {
        let rel = Relation::new(Schema::of_strs("e", &["a", "b"]));
        let col = ColumnarRelation::from_relation(&rel);
        assert!(col.is_empty());
        assert_eq!(roundtrip(&rel), rel);
    }

    #[test]
    fn dictionary_encoding_shrinks_repetitive_string_columns() {
        let mut rel = Relation::new(Schema::of_strs("s", &["k", "i"]));
        for i in 0..1000i64 {
            rel.insert(tuple![format!("warehouse-{}", i % 3), i])
                .unwrap();
        }
        let col = ColumnarRelation::from_relation(&rel);
        assert!(
            col.approx_size() < rel.approx_size() / 2,
            "columnar {} should be well under row {}",
            col.approx_size(),
            rel.approx_size()
        );
    }
}
