//! Relation statistics for cost-based decisions.
//!
//! Both the problem-graph shaper ("cardinality and selectivity information
//! from the DBMS schema ... is used to determine producer-consumer
//! relationships", §4.1) and the CMS's Query Planner/Optimizer consume
//! these statistics.

use crate::columnar::ColumnarRelation;
use crate::relation::Relation;
use crate::value::Value;
use std::collections::HashSet;

/// Summary statistics of a relation: cardinality, per-column distinct
/// counts and min/max bounds, from which equality selectivities are
/// estimated with the classical uniform-distribution assumption.
///
/// Statistics are representation-independent: [`RelationStats::of`]
/// (row extension) and [`RelationStats::of_columnar`] compute identical
/// cardinality / NDV / min / max for the same logical relation — only
/// `approx_bytes` reflects the physical format. The cost-based planner
/// can therefore price plans without caring which representation backs
/// a cache element.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStats {
    /// Number of tuples.
    pub cardinality: usize,
    /// Distinct value count per column.
    pub distinct: Vec<usize>,
    /// Per-column minimum under the total value order (`None` when the
    /// relation is empty). Nulls sort below everything, so a nullable
    /// column's minimum is `Null`.
    pub min: Vec<Option<Value>>,
    /// Per-column maximum under the total value order (`None` when the
    /// relation is empty).
    pub max: Vec<Option<Value>>,
    /// Approximate bytes held by the relation (representation-specific).
    pub approx_bytes: usize,
}

impl RelationStats {
    /// Compute exact statistics by scanning `rel`.
    pub fn of(rel: &Relation) -> Self {
        let arity = rel.schema().arity();
        let mut sets: Vec<HashSet<&Value>> = vec![HashSet::new(); arity];
        let mut min: Vec<Option<Value>> = vec![None; arity];
        let mut max: Vec<Option<Value>> = vec![None; arity];
        for t in rel.iter() {
            for (i, v) in t.values().iter().enumerate() {
                sets[i].insert(v);
                if min[i].as_ref().is_none_or(|m| v < m) {
                    min[i] = Some(v.clone());
                }
                if max[i].as_ref().is_none_or(|m| v > m) {
                    max[i] = Some(v.clone());
                }
            }
        }
        RelationStats {
            cardinality: rel.len(),
            distinct: sets.into_iter().map(|s| s.len()).collect(),
            min,
            max,
            approx_bytes: rel.approx_size(),
        }
    }

    /// Compute exact statistics from a columnar extension — same
    /// cardinality / NDV / min / max as [`RelationStats::of`] over the
    /// equivalent row relation, without materializing tuples. String
    /// columns count and bound over the *dictionary* (once per distinct
    /// value) instead of once per row.
    pub fn of_columnar(rel: &ColumnarRelation) -> Self {
        use crate::columnar::ColData;
        let arity = rel.arity();
        let mut distinct = Vec::with_capacity(arity);
        let mut min: Vec<Option<Value>> = Vec::with_capacity(arity);
        let mut max: Vec<Option<Value>> = Vec::with_capacity(arity);
        for c in 0..arity {
            let col = rel.col(c);
            let nulls = (0..rel.len()).filter(|&r| col.is_null(r)).count();
            let (mut lo, mut hi, ndv): (Option<Value>, Option<Value>, usize) = match &col.data {
                ColData::Strs { dict, codes } => {
                    // Each used dictionary entry is one distinct value;
                    // bounds come from the used entries, not all rows.
                    let used: HashSet<u32> = codes
                        .iter()
                        .enumerate()
                        .filter(|&(r, _)| !col.is_null(r))
                        .map(|(_, &code)| code)
                        .collect();
                    let lo = used
                        .iter()
                        .map(|&u| &dict[u as usize])
                        .min()
                        .map(|s| Value::Str(std::sync::Arc::clone(s)));
                    let hi = used
                        .iter()
                        .map(|&u| &dict[u as usize])
                        .max()
                        .map(|s| Value::Str(std::sync::Arc::clone(s)));
                    (lo, hi, used.len())
                }
                _ => {
                    let mut set: HashSet<Value> = HashSet::new();
                    let mut lo: Option<Value> = None;
                    let mut hi: Option<Value> = None;
                    for r in 0..rel.len() {
                        if col.is_null(r) {
                            continue;
                        }
                        let v = col.value_at(r);
                        if lo.as_ref().is_none_or(|m| v < *m) {
                            lo = Some(v.clone());
                        }
                        if hi.as_ref().is_none_or(|m| v > *m) {
                            hi = Some(v.clone());
                        }
                        set.insert(v);
                    }
                    (lo, hi, set.len())
                }
            };
            if nulls > 0 {
                // Null is a distinct value that sorts below everything.
                lo = Some(Value::Null);
                hi = hi.or(Some(Value::Null));
            }
            distinct.push(ndv + usize::from(nulls > 0));
            min.push(lo);
            max.push(hi);
        }
        RelationStats {
            cardinality: rel.len(),
            distinct,
            min,
            max,
            approx_bytes: rel.approx_size(),
        }
    }

    /// True when the logical statistics (everything except the
    /// representation-specific byte count) agree with `other`.
    pub fn same_logical_stats(&self, other: &RelationStats) -> bool {
        self.cardinality == other.cardinality
            && self.distinct == other.distinct
            && self.min == other.min
            && self.max == other.max
    }

    /// Estimated selectivity of `col = const`: `1 / distinct(col)`.
    pub fn eq_selectivity(&self, col: usize) -> f64 {
        match self.distinct.get(col) {
            Some(&d) if d > 0 => 1.0 / d as f64,
            _ => 1.0,
        }
    }

    /// Estimated output cardinality of an equality selection on `col`.
    pub fn eq_cardinality(&self, col: usize) -> f64 {
        self.cardinality as f64 * self.eq_selectivity(col)
    }

    /// Estimated join cardinality with `other` on `(self.col, other.col)`
    /// using the standard `|R||S| / max(V(R,a), V(S,b))` formula.
    pub fn join_cardinality(&self, col: usize, other: &RelationStats, other_col: usize) -> f64 {
        let va = self.distinct.get(col).copied().unwrap_or(1).max(1);
        let vb = other.distinct.get(other_col).copied().unwrap_or(1).max(1);
        (self.cardinality as f64 * other.cardinality as f64) / va.max(vb) as f64
    }

    /// Average tuple width in bytes.
    pub fn avg_tuple_bytes(&self) -> f64 {
        if self.cardinality == 0 {
            0.0
        } else {
            self.approx_bytes as f64 / self.cardinality as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, Schema};

    fn rel() -> Relation {
        Relation::from_tuples(
            Schema::of_strs("r", &["k", "v"]),
            vec![
                tuple!["a", "1"],
                tuple!["a", "2"],
                tuple!["b", "1"],
                tuple!["c", "1"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn distinct_counts() {
        let s = RelationStats::of(&rel());
        assert_eq!(s.cardinality, 4);
        assert_eq!(s.distinct, vec![3, 2]);
    }

    #[test]
    fn selectivity_estimates() {
        let s = RelationStats::of(&rel());
        assert!((s.eq_selectivity(0) - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.eq_cardinality(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn join_cardinality_formula() {
        let s = RelationStats::of(&rel());
        // Self-join on column 0: 4*4 / 3.
        let est = s.join_cardinality(0, &s, 0);
        assert!((est - 16.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_track_the_total_value_order() {
        let s = RelationStats::of(&rel());
        assert_eq!(s.min[0], Some(Value::str("a")));
        assert_eq!(s.max[0], Some(Value::str("c")));
        assert_eq!(s.min[1], Some(Value::str("1")));
        assert_eq!(s.max[1], Some(Value::str("2")));
    }

    #[test]
    fn columnar_stats_match_row_stats_exactly() {
        use crate::columnar::ColumnarRelation;
        use crate::tuple::Tuple;
        // Typed ints, dictionary strings, floats, nulls and a mixed
        // column — every storage arm of the columnar format.
        let rel = Relation::from_tuples(
            Schema::of_strs("t", &["i", "s", "f", "m"]),
            vec![
                Tuple::new(vec![
                    Value::Int(3),
                    Value::str("b"),
                    Value::Float(1.5),
                    Value::Int(1),
                ]),
                Tuple::new(vec![
                    Value::Int(-7),
                    Value::str("b"),
                    Value::Float(-2.0),
                    Value::str("x"),
                ]),
                Tuple::new(vec![
                    Value::Null,
                    Value::str("a"),
                    Value::Float(1.5),
                    Value::Null,
                ]),
                Tuple::new(vec![
                    Value::Int(12),
                    Value::Null,
                    Value::Float(9.25),
                    Value::Bool(true),
                ]),
            ],
        )
        .unwrap();
        let row = RelationStats::of(&rel);
        let col = RelationStats::of_columnar(&ColumnarRelation::from_relation(&rel));
        assert!(
            row.same_logical_stats(&col),
            "row {row:?} vs columnar {col:?}"
        );
        // Spot-check the interesting bits: null participates in NDV and
        // is the minimum of nullable columns.
        assert_eq!(col.cardinality, 4);
        assert_eq!(col.distinct, vec![4, 3, 3, 4]);
        assert_eq!(col.min[0], Some(Value::Null));
        assert_eq!(col.max[0], Some(Value::Int(12)));
        assert_eq!(col.min[1], Some(Value::Null));
        assert_eq!(col.max[1], Some(Value::str("b")));
    }

    #[test]
    fn columnar_stats_match_on_empty_and_all_null() {
        use crate::columnar::ColumnarRelation;
        use crate::tuple::Tuple;
        let empty = Relation::new(Schema::of_strs("e", &["x", "y"]));
        let row = RelationStats::of(&empty);
        let col = RelationStats::of_columnar(&ColumnarRelation::from_relation(&empty));
        assert!(row.same_logical_stats(&col));
        assert_eq!(col.min, vec![None, None]);

        let mut nulls = Relation::new(Schema::of_strs("n", &["x"]));
        nulls.insert(Tuple::new(vec![Value::Null])).unwrap();
        let row = RelationStats::of(&nulls);
        let col = RelationStats::of_columnar(&ColumnarRelation::from_relation(&nulls));
        assert!(row.same_logical_stats(&col));
        assert_eq!(col.min[0], Some(Value::Null));
        assert_eq!(col.max[0], Some(Value::Null));
    }

    #[test]
    fn empty_relation_stats() {
        let e = Relation::new(Schema::of_strs("e", &["x"]));
        let s = RelationStats::of(&e);
        assert_eq!(s.cardinality, 0);
        assert_eq!(s.eq_selectivity(0), 1.0);
        assert_eq!(s.avg_tuple_bytes(), 0.0);
    }
}
