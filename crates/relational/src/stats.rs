//! Relation statistics for cost-based decisions.
//!
//! Both the problem-graph shaper ("cardinality and selectivity information
//! from the DBMS schema ... is used to determine producer-consumer
//! relationships", §4.1) and the CMS's Query Planner/Optimizer consume
//! these statistics.

use crate::relation::Relation;
use crate::value::Value;
use std::collections::HashSet;

/// Summary statistics of a relation: cardinality and per-column distinct
/// counts, from which equality selectivities are estimated with the
/// classical uniform-distribution assumption.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStats {
    /// Number of tuples.
    pub cardinality: usize,
    /// Distinct value count per column.
    pub distinct: Vec<usize>,
    /// Approximate bytes held by the relation.
    pub approx_bytes: usize,
}

impl RelationStats {
    /// Compute exact statistics by scanning `rel`.
    pub fn of(rel: &Relation) -> Self {
        let arity = rel.schema().arity();
        let mut sets: Vec<HashSet<&Value>> = vec![HashSet::new(); arity];
        for t in rel.iter() {
            for (i, v) in t.values().iter().enumerate() {
                sets[i].insert(v);
            }
        }
        RelationStats {
            cardinality: rel.len(),
            distinct: sets.into_iter().map(|s| s.len()).collect(),
            approx_bytes: rel.approx_size(),
        }
    }

    /// Estimated selectivity of `col = const`: `1 / distinct(col)`.
    pub fn eq_selectivity(&self, col: usize) -> f64 {
        match self.distinct.get(col) {
            Some(&d) if d > 0 => 1.0 / d as f64,
            _ => 1.0,
        }
    }

    /// Estimated output cardinality of an equality selection on `col`.
    pub fn eq_cardinality(&self, col: usize) -> f64 {
        self.cardinality as f64 * self.eq_selectivity(col)
    }

    /// Estimated join cardinality with `other` on `(self.col, other.col)`
    /// using the standard `|R||S| / max(V(R,a), V(S,b))` formula.
    pub fn join_cardinality(&self, col: usize, other: &RelationStats, other_col: usize) -> f64 {
        let va = self.distinct.get(col).copied().unwrap_or(1).max(1);
        let vb = other.distinct.get(other_col).copied().unwrap_or(1).max(1);
        (self.cardinality as f64 * other.cardinality as f64) / va.max(vb) as f64
    }

    /// Average tuple width in bytes.
    pub fn avg_tuple_bytes(&self) -> f64 {
        if self.cardinality == 0 {
            0.0
        } else {
            self.approx_bytes as f64 / self.cardinality as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tuple, Schema};

    fn rel() -> Relation {
        Relation::from_tuples(
            Schema::of_strs("r", &["k", "v"]),
            vec![
                tuple!["a", "1"],
                tuple!["a", "2"],
                tuple!["b", "1"],
                tuple!["c", "1"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn distinct_counts() {
        let s = RelationStats::of(&rel());
        assert_eq!(s.cardinality, 4);
        assert_eq!(s.distinct, vec![3, 2]);
    }

    #[test]
    fn selectivity_estimates() {
        let s = RelationStats::of(&rel());
        assert!((s.eq_selectivity(0) - 1.0 / 3.0).abs() < 1e-9);
        assert!((s.eq_cardinality(1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn join_cardinality_formula() {
        let s = RelationStats::of(&rel());
        // Self-join on column 0: 4*4 / 3.
        let est = s.join_cardinality(0, &s, 0);
        assert!((est - 16.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_relation_stats() {
        let e = Relation::new(Schema::of_strs("e", &["x"]));
        let s = RelationStats::of(&e);
        assert_eq!(s.cardinality, 0);
        assert_eq!(s.eq_selectivity(0), 1.0);
        assert_eq!(s.avg_tuple_bytes(), 0.0);
    }
}
