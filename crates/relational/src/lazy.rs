//! Lazy evaluation: generators that produce one tuple on demand.
//!
//! "The CMS represents a relation as either the full extension of the
//! relation or as a *generator* which produces a single tuple on demand"
//! (§5.1). A [`Generator`] is a small algebra tree over shared input
//! relations; [`Generator::open`] yields a pull-based iterator (the running
//! generator) and [`Generator::materialize`] computes the full extension —
//! the eager/lazy duality the paper's CMS chooses between per cache
//! element.
//!
//! Semantics match the eager operators in [`crate::ops`] exactly: the root
//! of every opened pipeline deduplicates, preserving set semantics. A
//! selection predicate that fails to evaluate (e.g. division by zero) is
//! treated as *unknown* and excludes the tuple, mirroring SQL's treatment
//! of errors-as-unknown in filters; this keeps the demand-driven iterator
//! infallible.

use crate::error::Result;
use crate::expr::Expr;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A pull-based stream of tuples with a known schema.
pub trait TupleStream: Send {
    /// The schema of produced tuples.
    fn schema(&self) -> &Schema;
    /// Produce the next tuple, or `None` when exhausted.
    fn next_tuple(&mut self) -> Option<Tuple>;
}

/// A resettable, shareable lazy query plan — the paper's *generator form*
/// of a relation. Cloning a generator is cheap; inputs are shared.
#[derive(Debug, Clone)]
pub struct Generator {
    node: Node,
    schema: Schema,
}

#[derive(Debug, Clone)]
enum Node {
    Scan(Arc<Relation>),
    Filter {
        pred: Expr,
        child: Box<Node>,
    },
    Project {
        cols: Vec<usize>,
        child: Box<Node>,
    },
    HashJoin {
        left: Box<Node>,
        right: Box<Node>,
        on: Vec<(usize, usize)>,
    },
    Union(Vec<Node>),
}

impl Generator {
    /// Leaf generator scanning a shared relation.
    pub fn scan(rel: Arc<Relation>) -> Generator {
        let schema = rel.schema().clone();
        Generator {
            node: Node::Scan(rel),
            schema,
        }
    }

    /// σ — filter by a predicate.
    pub fn filter(self, pred: Expr) -> Generator {
        let schema = self.schema.clone();
        Generator {
            node: Node::Filter {
                pred,
                child: Box::new(self.node),
            },
            schema,
        }
    }

    /// π — project onto columns.
    ///
    /// # Errors
    /// Returns an error if any index is out of range.
    pub fn project(self, cols: &[usize]) -> Result<Generator> {
        let schema = self.schema.project(cols)?;
        Ok(Generator {
            node: Node::Project {
                cols: cols.to_vec(),
                child: Box::new(self.node),
            },
            schema,
        })
    }

    /// ⋈ — hash equi-join: the left (build) side is drained when the
    /// pipeline is opened; the right (probe) side streams, so tuples are
    /// produced on demand.
    pub fn hash_join(self, right: Generator, on: &[(usize, usize)]) -> Generator {
        let schema = self.schema.join(&right.schema);
        Generator {
            node: Node::HashJoin {
                left: Box::new(self.node),
                right: Box::new(right.node),
                on: on.to_vec(),
            },
            schema,
        }
    }

    /// ∪ — concatenate generators (deduplication happens at the root).
    pub fn union(parts: Vec<Generator>) -> Option<Generator> {
        let first = parts.first()?;
        let schema = first.schema.clone();
        Some(Generator {
            node: Node::Union(parts.into_iter().map(|g| g.node).collect()),
            schema,
        })
    }

    /// The output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Open the generator: a fresh demand-driven stream over its inputs.
    /// The stream deduplicates (set semantics).
    pub fn open(&self) -> RunningGenerator {
        RunningGenerator {
            iter: open_node(&self.node),
            schema: self.schema.clone(),
            seen: HashSet::new(),
            produced: 0,
        }
    }

    /// Eagerly compute the full extension — identical to draining
    /// [`Generator::open`] into a relation.
    ///
    /// # Errors
    /// Propagates schema errors from relation construction.
    pub fn materialize(&self) -> Result<Relation> {
        let mut running = self.open();
        let mut rel = Relation::new(self.schema.clone());
        while let Some(t) = running.next_tuple() {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// Rough depth of the plan tree (cost-model input).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Scan(_) => 1,
                Node::Filter { child, .. } | Node::Project { child, .. } => 1 + d(child),
                Node::HashJoin { left, right, .. } => 1 + d(left).max(d(right)),
                Node::Union(parts) => 1 + parts.iter().map(d).max().unwrap_or(0),
            }
        }
        d(&self.node)
    }
}

/// An opened (running) generator: the paper's "stream \[that\] will produce a
/// tuple on demand" (§5.5). Tracks how many tuples it has produced so the
/// CMS can account for lazy work.
pub struct RunningGenerator {
    iter: Box<dyn Iterator<Item = Tuple> + Send>,
    schema: Schema,
    seen: HashSet<Tuple>,
    produced: usize,
}

impl RunningGenerator {
    /// How many tuples have been pulled so far.
    pub fn produced(&self) -> usize {
        self.produced
    }
}

impl TupleStream for RunningGenerator {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_tuple(&mut self) -> Option<Tuple> {
        loop {
            let t = self.iter.next()?;
            if self.seen.insert(t.clone()) {
                self.produced += 1;
                return Some(t);
            }
        }
    }
}

impl Iterator for RunningGenerator {
    type Item = Tuple;
    fn next(&mut self) -> Option<Tuple> {
        self.next_tuple()
    }
}

fn open_node(node: &Node) -> Box<dyn Iterator<Item = Tuple> + Send> {
    match node {
        Node::Scan(rel) => {
            let rel = Arc::clone(rel);
            let len = rel.len();
            let mut i = 0;
            Box::new(std::iter::from_fn(move || {
                if i < len {
                    let t = rel.row(i).cloned();
                    i += 1;
                    t
                } else {
                    None
                }
            }))
        }
        Node::Filter { pred, child } => {
            let pred = pred.clone();
            let inner = open_node(child);
            Box::new(inner.filter(move |t| pred.eval_bool(t).unwrap_or(false)))
        }
        Node::Project { cols, child } => {
            let cols = cols.clone();
            let inner = open_node(child);
            Box::new(inner.map(move |t| t.project(&cols)))
        }
        Node::HashJoin { left, right, on } => {
            let lcols: Vec<usize> = on.iter().map(|&(a, _)| a).collect();
            let rcols: Vec<usize> = on.iter().map(|&(_, b)| b).collect();
            // Build side is drained lazily, on first pull.
            let left = left.clone();
            let mut right_iter = open_node(right);
            let mut table: Option<HashMap<Vec<Value>, Vec<Tuple>>> = None;
            let mut pending: Vec<Tuple> = Vec::new();
            Box::new(std::iter::from_fn(move || loop {
                if let Some(t) = pending.pop() {
                    return Some(t);
                }
                let table = table.get_or_insert_with(|| {
                    let mut m: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
                    let mut b = open_node(&left);
                    for t in b.by_ref() {
                        m.entry(t.key(&lcols)).or_default().push(t);
                    }
                    m
                });
                let probe = right_iter.next()?;
                if let Some(matches) = table.get(&probe.key(&rcols)) {
                    for m in matches {
                        pending.push(m.concat(&probe));
                    }
                }
            }))
        }
        Node::Union(parts) => {
            let mut iters: Vec<_> = parts.iter().map(open_node).collect();
            iters.reverse();
            let mut current = iters.pop();
            Box::new(std::iter::from_fn(move || loop {
                match current.as_mut() {
                    None => return None,
                    Some(it) => match it.next() {
                        Some(t) => return Some(t),
                        None => current = iters.pop(),
                    },
                }
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::ops;
    use crate::{tuple, Schema};

    fn parent() -> Arc<Relation> {
        Arc::new(
            Relation::from_tuples(
                Schema::of_strs("parent", &["p", "c"]),
                vec![
                    tuple!["ann", "bob"],
                    tuple!["ann", "cal"],
                    tuple!["bob", "dee"],
                    tuple!["cal", "eli"],
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn scan_filter_project_matches_eager() {
        let p = parent();
        let lazy = Generator::scan(Arc::clone(&p))
            .filter(Expr::col_cmp(0, CmpOp::Eq, "ann"))
            .project(&[1])
            .unwrap()
            .materialize()
            .unwrap();
        let eager = ops::project(
            &ops::select(&p, &Expr::col_cmp(0, CmpOp::Eq, "ann")).unwrap(),
            &[1],
        )
        .unwrap();
        assert_eq!(lazy, eager);
    }

    #[test]
    fn lazy_join_matches_eager_join() {
        let p = parent();
        let lazy = Generator::scan(Arc::clone(&p))
            .hash_join(Generator::scan(Arc::clone(&p)), &[(1, 0)])
            .materialize()
            .unwrap();
        let eager = ops::equijoin(&p, &p, &[(1, 0)]).unwrap();
        assert_eq!(lazy, eager);
    }

    #[test]
    fn generator_produces_on_demand() {
        let p = parent();
        let g = Generator::scan(p);
        let mut running = g.open();
        assert_eq!(running.produced(), 0);
        assert!(running.next_tuple().is_some());
        assert_eq!(running.produced(), 1);
        // Re-opening starts over.
        let mut again = g.open();
        let mut n = 0;
        while again.next_tuple().is_some() {
            n += 1;
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn root_deduplicates_projection() {
        let p = parent();
        let g = Generator::scan(p).project(&[0]).unwrap();
        let vals: Vec<Tuple> = g.open().collect();
        assert_eq!(vals.len(), 3); // ann, bob, cal — deduped on the fly
    }

    #[test]
    fn union_concatenates_then_dedups() {
        let p = parent();
        let g = Generator::union(vec![
            Generator::scan(Arc::clone(&p)),
            Generator::scan(Arc::clone(&p)),
        ])
        .unwrap();
        assert_eq!(g.materialize().unwrap().len(), 4);
    }

    #[test]
    fn erroring_predicate_excludes_tuple() {
        let p = parent();
        // col 5 does not exist: predicate errors, so nothing qualifies.
        let g = Generator::scan(p).filter(Expr::col_cmp(5, CmpOp::Eq, "x"));
        assert_eq!(g.materialize().unwrap().len(), 0);
    }

    #[test]
    fn join_build_side_deferred_until_first_pull() {
        let p = parent();
        let g = Generator::scan(Arc::clone(&p)).hash_join(Generator::scan(p), &[(1, 0)]);
        // Opening does no work yet (cannot observe directly; this asserts
        // the first pull still yields a correct tuple).
        let mut running = g.open();
        let first = running.next_tuple().unwrap();
        assert_eq!(first.arity(), 4);
    }

    #[test]
    fn depth_reflects_plan_shape() {
        let p = parent();
        let g = Generator::scan(Arc::clone(&p))
            .filter(Expr::always())
            .project(&[0])
            .unwrap();
        assert_eq!(g.depth(), 3);
    }
}
