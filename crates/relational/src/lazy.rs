//! Lazy evaluation: generators that produce one tuple on demand.
//!
//! "The CMS represents a relation as either the full extension of the
//! relation or as a *generator* which produces a single tuple on demand"
//! (§5.1). A [`Generator`] is a thin facade over a
//! [`PhysicalPlan`]: building one composes plan nodes, and
//! [`Generator::open`] runs the plan through the shared batched executor
//! in generator mode (incremental pull, root dedup), while
//! [`Generator::materialize`] runs the *same* plan in eager mode. There
//! is no separate lazy operator implementation — eager and lazy are two
//! drivers over one executor (see [`crate::exec`]).
//!
//! Semantics match the eager operators in [`crate::ops`] exactly up to
//! error handling: a selection predicate that fails to evaluate (e.g.
//! division by zero) is treated as *unknown* and excludes the tuple,
//! mirroring SQL's treatment of errors-as-unknown in filters; this keeps
//! the demand-driven iterator infallible.
//!
//! Counting semantics: [`RunningPlan::produced`] counts tuples of one
//! run (a re-open starts at zero); [`Generator::total_produced`]
//! accumulates across every `open()` of the generator and its clones.

use crate::error::Result;
use crate::exec::ExecConfig;
use crate::expr::Expr;
use crate::plan::PhysicalPlan;
use crate::relation::Relation;
use crate::schema::Schema;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

pub use crate::exec::{RunningPlan, TupleStream};

/// An opened (running) generator — alias for the executor's
/// generator-mode stream. See [`RunningPlan`].
pub type RunningGenerator = RunningPlan;

/// A resettable, shareable lazy query plan — the paper's *generator form*
/// of a relation. Cloning a generator is cheap; inputs and the
/// lifetime-produced counter are shared.
#[derive(Debug, Clone)]
pub struct Generator {
    plan: PhysicalPlan,
    /// Tuples produced across all `open()` calls of this generator and
    /// its clones.
    total: Arc<AtomicUsize>,
}

impl Generator {
    /// Leaf generator scanning a shared relation.
    pub fn scan(rel: Arc<Relation>) -> Generator {
        Generator::from_plan(PhysicalPlan::scan(rel))
    }

    /// Leaf generator scanning a shared column-major relation; filters
    /// composed on top compile to the executor's vectorized kernels.
    pub fn scan_columnar(rel: Arc<crate::columnar::ColumnarRelation>) -> Generator {
        Generator::from_plan(PhysicalPlan::scan_columnar(rel))
    }

    /// Wrap an arbitrary physical plan as a generator.
    pub fn from_plan(plan: PhysicalPlan) -> Generator {
        Generator {
            plan,
            total: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// σ — filter by a predicate (errors-as-unknown: a tuple whose
    /// predicate fails to evaluate is excluded).
    pub fn filter(self, pred: Expr) -> Generator {
        Generator {
            plan: self.plan.filter(pred),
            total: self.total,
        }
    }

    /// π — project onto columns.
    ///
    /// # Errors
    /// Returns an error if any index is out of range.
    pub fn project(self, cols: &[usize]) -> Result<Generator> {
        Ok(Generator {
            plan: self.plan.project(cols)?,
            total: self.total,
        })
    }

    /// ⋈ — hash equi-join: the left (build) side is drained when the
    /// pipeline is opened; the right (probe) side streams, so tuples are
    /// produced on demand.
    pub fn hash_join(self, right: Generator, on: &[(usize, usize)]) -> Generator {
        Generator {
            plan: self.plan.hash_join(right.plan, on),
            total: self.total,
        }
    }

    /// ∪ — concatenate generators (deduplication happens at the root).
    pub fn union(parts: Vec<Generator>) -> Option<Generator> {
        let plan = PhysicalPlan::union(parts.into_iter().map(|g| g.plan).collect())?;
        Some(Generator::from_plan(plan))
    }

    /// The output schema.
    pub fn schema(&self) -> &Schema {
        self.plan.schema()
    }

    /// The underlying physical plan.
    pub fn plan(&self) -> &PhysicalPlan {
        &self.plan
    }

    /// Unwrap into the underlying physical plan.
    pub fn into_plan(self) -> PhysicalPlan {
        self.plan
    }

    /// Open the generator: a fresh demand-driven stream over its inputs
    /// with the default batch size. The stream deduplicates (set
    /// semantics).
    pub fn open(&self) -> RunningGenerator {
        self.open_with(ExecConfig::default())
    }

    /// Open with an explicit executor configuration (batch-size knob).
    pub fn open_with(&self, cfg: ExecConfig) -> RunningGenerator {
        let mut running = self.plan.open_with(cfg);
        running.attach_lifetime_counter(Arc::clone(&self.total));
        running
    }

    /// Eagerly compute the full extension — identical to draining
    /// [`Generator::open`] into a relation, but runs the same plan in
    /// the executor's eager mode.
    ///
    /// # Errors
    /// Propagates schema errors from relation construction.
    pub fn materialize(&self) -> Result<Relation> {
        self.plan.materialize()
    }

    /// Tuples produced across **all** `open()` calls of this generator
    /// (and its clones) so far. Complements the per-run
    /// [`RunningPlan::produced`] counter, which resets on re-open.
    pub fn total_produced(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// Rough depth of the plan tree (cost-model input).
    pub fn depth(&self) -> usize {
        self.plan.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::ops;
    use crate::tuple::Tuple;
    use crate::{tuple, Schema};

    fn parent() -> Arc<Relation> {
        Arc::new(
            Relation::from_tuples(
                Schema::of_strs("parent", &["p", "c"]),
                vec![
                    tuple!["ann", "bob"],
                    tuple!["ann", "cal"],
                    tuple!["bob", "dee"],
                    tuple!["cal", "eli"],
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn scan_filter_project_matches_eager() {
        let p = parent();
        let lazy = Generator::scan(Arc::clone(&p))
            .filter(Expr::col_cmp(0, CmpOp::Eq, "ann"))
            .project(&[1])
            .unwrap()
            .materialize()
            .unwrap();
        let eager = ops::project(
            &ops::select(&p, &Expr::col_cmp(0, CmpOp::Eq, "ann")).unwrap(),
            &[1],
        )
        .unwrap();
        assert_eq!(lazy, eager);
    }

    #[test]
    fn lazy_join_matches_eager_join() {
        let p = parent();
        let lazy = Generator::scan(Arc::clone(&p))
            .hash_join(Generator::scan(Arc::clone(&p)), &[(1, 0)])
            .materialize()
            .unwrap();
        let eager = ops::equijoin(&p, &p, &[(1, 0)]).unwrap();
        assert_eq!(lazy, eager);
    }

    #[test]
    fn generator_produces_on_demand() {
        let p = parent();
        let g = Generator::scan(p);
        let mut running = g.open();
        assert_eq!(running.produced(), 0);
        assert!(running.next_tuple().is_some());
        assert_eq!(running.produced(), 1);
        // Re-opening starts over.
        let mut again = g.open();
        let mut n = 0;
        while again.next_tuple().is_some() {
            n += 1;
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn total_produced_accumulates_across_opens() {
        // Regression: the per-run `produced()` counter resets on
        // re-open; `total_produced()` is the accumulating counter.
        let p = parent();
        let g = Generator::scan(p);
        assert_eq!(g.open().count(), 4);
        assert_eq!(g.open().count(), 4);
        assert_eq!(g.total_produced(), 8);
        let mut third = g.open();
        assert!(third.next_tuple().is_some());
        assert_eq!(third.produced(), 1); // per-run, fresh
        assert_eq!(g.total_produced(), 9); // lifetime, accumulated
                                           // Clones share the counter.
        assert_eq!(g.clone().total_produced(), 9);
    }

    #[test]
    fn root_deduplicates_projection() {
        let p = parent();
        let g = Generator::scan(p).project(&[0]).unwrap();
        let vals: Vec<Tuple> = g.open().collect();
        assert_eq!(vals.len(), 3); // ann, bob, cal — deduped on the fly
    }

    #[test]
    fn union_concatenates_then_dedups() {
        let p = parent();
        let g = Generator::union(vec![
            Generator::scan(Arc::clone(&p)),
            Generator::scan(Arc::clone(&p)),
        ])
        .unwrap();
        assert_eq!(g.materialize().unwrap().len(), 4);
    }

    #[test]
    fn erroring_predicate_excludes_tuple() {
        let p = parent();
        // col 5 does not exist: predicate errors, so nothing qualifies.
        let g = Generator::scan(p).filter(Expr::col_cmp(5, CmpOp::Eq, "x"));
        assert_eq!(g.materialize().unwrap().len(), 0);
    }

    #[test]
    fn join_build_side_deferred_until_first_pull() {
        let p = parent();
        let g = Generator::scan(Arc::clone(&p)).hash_join(Generator::scan(p), &[(1, 0)]);
        // Opening does no work yet (cannot observe directly; this asserts
        // the first pull still yields a correct tuple).
        let mut running = g.open();
        let first = running.next_tuple().unwrap();
        assert_eq!(first.arity(), 4);
    }

    #[test]
    fn depth_reflects_plan_shape() {
        let p = parent();
        let g = Generator::scan(Arc::clone(&p))
            .filter(Expr::always())
            .project(&[0])
            .unwrap();
        assert_eq!(g.depth(), 3);
    }
}
