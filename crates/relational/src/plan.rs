//! The physical-plan IR: one algebra, two execution modes.
//!
//! [`PhysicalPlan`] is the single intermediate representation behind both
//! execution styles of the substrate. The eager operators in
//! [`crate::ops`] wrap one-node plans and run them to completion with
//! [`PhysicalPlan::materialize`]; the paper's *generators*
//! ([`crate::lazy::Generator`], §5.1) open the very same plan as an
//! incremental pull stream with [`PhysicalPlan::open`]. Both modes are
//! thin drivers over the batched executor in [`crate::exec`]: operators
//! exchange [`crate::exec::TupleBatch`]es of `Arc`-shared tuples
//! (default 256 rows, see [`ExecConfig`]) and adjacent filter+project
//! pairs are fused into a single pass at open time.
//!
//! Node set: scan (relation or row vector), filter (strict or
//! errors-as-unknown), project, hash-join, semi-/anti-join, n-ary union,
//! dedup, aggregate and limit. Schemas are computed once, at plan build
//! time; every node carries the schema of its output.

use crate::columnar::ColumnarRelation;
use crate::error::{RelationalError, Result};
use crate::exec::{self, ExecConfig, ExecCounters, ExecStats, RunningPlan};
use crate::expr::Expr;
use crate::relation::Relation;
use crate::schema::{Column, Schema};
use crate::tuple::Tuple;
use crate::value::ValueType;
use std::sync::Arc;

/// Aggregate functions supported by the CMS's `AGG` second-order predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of tuples in the group.
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Minimum of a column.
    Min,
    /// Maximum of a column.
    Max,
    /// Arithmetic mean of a numeric column.
    Avg,
}

impl AggFunc {
    /// Name as it appears in CAQL (`AGG(count, ...)`).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One aggregate to compute: function over `col` (ignored for `Count`).
#[derive(Debug, Clone, Copy)]
pub struct Aggregate {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column (any column for `Count`).
    pub col: usize,
}

/// A physical query plan: an operator tree plus its output schema.
///
/// Plans are cheap to clone (inputs are shared) and immutable once
/// built, so one stored plan can back both of the paper's cache-element
/// representations: materialize it for the *extension*, open it for the
/// *generator* (§5.1, §5.4).
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    pub(crate) node: PlanNode,
    pub(crate) schema: Schema,
}

#[derive(Debug, Clone)]
pub(crate) enum PlanNode {
    /// Scan a shared relation in row order.
    ScanRel(Arc<Relation>),
    /// Scan a plain row vector (used by the eager wrappers, which borrow
    /// a relation's tuples without cloning its dedup set or indices).
    ScanRows(Arc<Vec<Tuple>>),
    /// Scan a column-major relation. Filters and aggregates directly
    /// above this node compile to vectorized kernels (see
    /// [`crate::exec`]); any other parent receives ordinary row batches.
    ScanCol(Arc<ColumnarRelation>),
    /// σ — `strict` propagates predicate-evaluation errors (eager
    /// semantics); otherwise an error counts as *unknown* and excludes
    /// the tuple (SQL-style, keeps demand-driven streams infallible).
    Filter {
        pred: Expr,
        strict: bool,
        child: Box<PhysicalPlan>,
    },
    /// π — may repeat or reorder columns.
    Project {
        cols: Vec<usize>,
        child: Box<PhysicalPlan>,
    },
    /// ⋈ — hash equi-join. The build side is drained on first pull; the
    /// probe side streams. `on` pairs are `(build column, probe column)`;
    /// `probe_first` controls output column order (probe columns first),
    /// letting callers build on the smaller input without disturbing the
    /// l-then-r output convention.
    HashJoin {
        build: Box<PhysicalPlan>,
        probe: Box<PhysicalPlan>,
        on: Vec<(usize, usize)>,
        probe_first: bool,
    },
    /// ⋉ / ▷ — semi-join (`anti == false`) or anti-join (`anti == true`).
    Semi {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        on: Vec<(usize, usize)>,
        anti: bool,
    },
    /// ∪ — n-ary union: children are concatenated in order; one dedup
    /// pass happens at the consuming root (or an explicit [`PlanNode::Dedup`]).
    Union(Vec<PhysicalPlan>),
    /// δ — explicit duplicate elimination (set semantics mid-plan).
    Dedup(Box<PhysicalPlan>),
    /// γ — grouped aggregation (input is treated as a set).
    Aggregate {
        group_by: Vec<usize>,
        aggs: Vec<Aggregate>,
        child: Box<PhysicalPlan>,
    },
    /// Stop after `n` tuples.
    Limit { n: usize, child: Box<PhysicalPlan> },
}

impl PhysicalPlan {
    /// Leaf plan scanning a shared relation.
    pub fn scan(rel: Arc<Relation>) -> PhysicalPlan {
        let schema = rel.schema().clone();
        PhysicalPlan {
            node: PlanNode::ScanRel(rel),
            schema,
        }
    }

    /// Leaf plan scanning an explicit row vector under the given schema.
    /// Rows are trusted to match the schema's arity (enforced again when
    /// a materialized result is rebuilt into a relation).
    pub fn rows(schema: Schema, rows: Vec<Tuple>) -> PhysicalPlan {
        PhysicalPlan {
            node: PlanNode::ScanRows(Arc::new(rows)),
            schema,
        }
    }

    /// Leaf plan scanning a shared column-major relation. Filters and
    /// aggregates placed directly above compile to vectorized kernels.
    pub fn scan_columnar(rel: Arc<ColumnarRelation>) -> PhysicalPlan {
        let schema = rel.schema().clone();
        PhysicalPlan {
            node: PlanNode::ScanCol(rel),
            schema,
        }
    }

    /// σ with errors-as-unknown: a predicate that fails to evaluate
    /// excludes the tuple (generator semantics).
    pub fn filter(self, pred: Expr) -> PhysicalPlan {
        self.filter_mode(pred, false)
    }

    /// σ with strict errors: the first predicate-evaluation error aborts
    /// execution (eager `ops::select` semantics).
    pub fn filter_strict(self, pred: Expr) -> PhysicalPlan {
        self.filter_mode(pred, true)
    }

    fn filter_mode(self, pred: Expr, strict: bool) -> PhysicalPlan {
        let schema = self.schema.clone();
        PhysicalPlan {
            node: PlanNode::Filter {
                pred,
                strict,
                child: Box::new(self),
            },
            schema,
        }
    }

    /// π — project onto columns (indices may repeat or reorder).
    ///
    /// # Errors
    /// Returns an error if any index is out of range.
    pub fn project(self, cols: &[usize]) -> Result<PhysicalPlan> {
        let schema = self.schema.project(cols)?;
        Ok(PhysicalPlan {
            node: PlanNode::Project {
                cols: cols.to_vec(),
                child: Box::new(self),
            },
            schema,
        })
    }

    /// ⋈ — hash equi-join with `self` as the build side: `self` is
    /// drained into a hash table on first pull, `probe` streams. `on`
    /// pairs are `(self column, probe column)`; output columns are
    /// `self` then `probe`.
    pub fn hash_join(self, probe: PhysicalPlan, on: &[(usize, usize)]) -> PhysicalPlan {
        let schema = self.schema.join(&probe.schema);
        PhysicalPlan {
            node: PlanNode::HashJoin {
                build: Box::new(self),
                probe: Box::new(probe),
                on: on.to_vec(),
                probe_first: false,
            },
            schema,
        }
    }

    /// ⋈ — hash equi-join with `self` as the *probe* side and `build`
    /// drained into the hash table. `on` pairs are `(self column, build
    /// column)`; output columns are still `self` then `build`, so this
    /// is how the eager wrapper builds on the smaller input without
    /// changing the output convention.
    pub fn hash_join_build_right(self, build: PhysicalPlan, on: &[(usize, usize)]) -> PhysicalPlan {
        let schema = self.schema.join(&build.schema);
        // Stored pairs are always (build column, probe column).
        let flipped: Vec<(usize, usize)> = on.iter().map(|&(p, b)| (b, p)).collect();
        PhysicalPlan {
            node: PlanNode::HashJoin {
                build: Box::new(build),
                probe: Box::new(self),
                on: flipped,
                probe_first: true,
            },
            schema,
        }
    }

    /// ⋉ — left semi-join on `(left column, right column)` pairs.
    pub fn semijoin(self, right: PhysicalPlan, on: &[(usize, usize)]) -> PhysicalPlan {
        self.semi_mode(right, on, false)
    }

    /// ▷ — left anti-join on `(left column, right column)` pairs.
    pub fn antijoin(self, right: PhysicalPlan, on: &[(usize, usize)]) -> PhysicalPlan {
        self.semi_mode(right, on, true)
    }

    fn semi_mode(self, right: PhysicalPlan, on: &[(usize, usize)], anti: bool) -> PhysicalPlan {
        let schema = self.schema.clone();
        PhysicalPlan {
            node: PlanNode::Semi {
                left: Box::new(self),
                right: Box::new(right),
                on: on.to_vec(),
                anti,
            },
            schema,
        }
    }

    /// ∪ — n-ary union: concatenate plans (one dedup pass happens at the
    /// consuming root). Returns `None` for an empty part list.
    pub fn union(parts: Vec<PhysicalPlan>) -> Option<PhysicalPlan> {
        let first = parts.first()?;
        let schema = first.schema.clone();
        Some(PhysicalPlan {
            node: PlanNode::Union(parts),
            schema,
        })
    }

    /// δ — explicit duplicate elimination.
    pub fn dedup(self) -> PhysicalPlan {
        let schema = self.schema.clone();
        PhysicalPlan {
            node: PlanNode::Dedup(Box::new(self)),
            schema,
        }
    }

    /// γ — grouped aggregation. Output columns are the `group_by`
    /// columns followed by one column per aggregate; the input stream is
    /// treated as a set (duplicates eliminated before grouping), matching
    /// the eager operators which always aggregate materialized relations.
    ///
    /// # Errors
    /// Returns an error if any referenced column is out of range.
    pub fn aggregate(self, group_by: &[usize], aggs: &[Aggregate]) -> Result<PhysicalPlan> {
        let mut cols: Vec<Column> = Vec::new();
        let gschema = self.schema.project(group_by)?;
        cols.extend(gschema.columns().iter().cloned());
        for (i, a) in aggs.iter().enumerate() {
            if a.col >= self.schema.arity() {
                return Err(RelationalError::ColumnIndexOutOfRange {
                    index: a.col,
                    arity: self.schema.arity(),
                });
            }
            let ty = match a.func {
                AggFunc::Count => ValueType::Int,
                AggFunc::Avg => ValueType::Float,
                _ => self.schema.columns()[a.col].ty,
            };
            cols.push(Column::new(format!("{}_{i}", a.func.name()), ty));
        }
        let schema = Schema::new(format!("agg_{}", self.schema.name()), cols)?;
        Ok(PhysicalPlan {
            node: PlanNode::Aggregate {
                group_by: group_by.to_vec(),
                aggs: aggs.to_vec(),
                child: Box::new(self),
            },
            schema,
        })
    }

    /// Stop after at most `n` output tuples.
    pub fn limit(self, n: usize) -> PhysicalPlan {
        let schema = self.schema.clone();
        PhysicalPlan {
            node: PlanNode::Limit {
                n,
                child: Box::new(self),
            },
            schema,
        }
    }

    /// The output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rough depth of the plan tree (cost-model input).
    pub fn depth(&self) -> usize {
        match &self.node {
            PlanNode::ScanRel(_) | PlanNode::ScanRows(_) | PlanNode::ScanCol(_) => 1,
            PlanNode::Filter { child, .. }
            | PlanNode::Project { child, .. }
            | PlanNode::Dedup(child)
            | PlanNode::Aggregate { child, .. }
            | PlanNode::Limit { child, .. } => 1 + child.depth(),
            PlanNode::HashJoin { build, probe, .. } => 1 + build.depth().max(probe.depth()),
            PlanNode::Semi { left, right, .. } => 1 + left.depth().max(right.depth()),
            PlanNode::Union(parts) => 1 + parts.iter().map(PhysicalPlan::depth).max().unwrap_or(0),
        }
    }

    /// Generator mode: open the plan as a demand-driven stream with the
    /// default batch size. The stream deduplicates at the root (set
    /// semantics) and is infallible — strict-filter errors end the
    /// stream early (see [`RunningPlan::error`]).
    pub fn open(&self) -> RunningPlan {
        self.open_with(ExecConfig::default())
    }

    /// Generator mode with an explicit executor configuration.
    pub fn open_with(&self, cfg: ExecConfig) -> RunningPlan {
        let counters = Arc::new(ExecCounters::default());
        let op = exec::build(self, cfg, &counters);
        RunningPlan::new(op, self.schema.clone(), counters)
    }

    /// Eager mode: run the plan to completion and collect the result
    /// into a relation (deduplicating on insert), using the default
    /// batch size.
    ///
    /// # Errors
    /// Propagates strict-filter and aggregate evaluation errors.
    pub fn materialize(&self) -> Result<Relation> {
        self.materialize_with(ExecConfig::default()).map(|(r, _)| r)
    }

    /// Eager mode with an explicit executor configuration; also returns
    /// the executor's work counters for metrics plumbing.
    ///
    /// # Errors
    /// Propagates strict-filter and aggregate evaluation errors.
    pub fn materialize_with(&self, cfg: ExecConfig) -> Result<(Relation, ExecStats)> {
        let counters = Arc::new(ExecCounters::default());
        let mut op = exec::build(self, cfg, &counters);
        let mut rel = Relation::new(self.schema.clone());
        while let Some(batch) = op.next_batch()? {
            for t in batch {
                rel.insert(t)?;
            }
        }
        Ok((rel, counters.snapshot()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::TupleStream;
    use crate::expr::CmpOp;
    use crate::{tuple, Schema};

    fn parent() -> Arc<Relation> {
        Arc::new(
            Relation::from_tuples(
                Schema::of_strs("parent", &["p", "c"]),
                vec![
                    tuple!["ann", "bob"],
                    tuple!["ann", "cal"],
                    tuple!["bob", "dee"],
                    tuple!["cal", "eli"],
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn strict_filter_propagates_errors() {
        let plan = PhysicalPlan::scan(parent()).filter_strict(Expr::col_cmp(9, CmpOp::Eq, "x"));
        assert!(plan.materialize().is_err());
    }

    #[test]
    fn unknown_filter_excludes_erroring_tuples() {
        let plan = PhysicalPlan::scan(parent()).filter(Expr::col_cmp(9, CmpOp::Eq, "x"));
        assert_eq!(plan.materialize().unwrap().len(), 0);
    }

    #[test]
    fn build_right_join_keeps_left_column_order() {
        let p = parent();
        let normal = PhysicalPlan::scan(Arc::clone(&p))
            .hash_join(PhysicalPlan::scan(Arc::clone(&p)), &[(1, 0)])
            .materialize()
            .unwrap();
        let swapped = PhysicalPlan::scan(Arc::clone(&p))
            .hash_join_build_right(PhysicalPlan::scan(p), &[(1, 0)])
            .materialize()
            .unwrap();
        assert_eq!(normal, swapped);
    }

    #[test]
    fn limit_truncates_output() {
        let plan = PhysicalPlan::scan(parent()).limit(2);
        assert_eq!(plan.materialize().unwrap().len(), 2);
    }

    #[test]
    fn dedup_node_eliminates_duplicates_mid_plan() {
        let p = parent();
        let union = PhysicalPlan::union(vec![
            PhysicalPlan::scan(Arc::clone(&p)),
            PhysicalPlan::scan(p),
        ])
        .unwrap()
        .dedup()
        .limit(usize::MAX);
        // The dedup happens below the limit, so the stream itself is a set.
        let (rel, stats) = union.materialize_with(ExecConfig::default()).unwrap();
        assert_eq!(rel.len(), 4);
        assert!(stats.tuples > 0 && stats.batches > 0);
    }

    #[test]
    fn open_reports_stats_and_dedups_at_root() {
        let p = parent();
        let plan = PhysicalPlan::scan(p).project(&[0]).unwrap();
        let mut running = plan.open();
        let mut n = 0;
        while running.next_tuple().is_some() {
            n += 1;
        }
        assert_eq!(n, 3); // ann, bob, cal
        assert!(running.stats().tuples >= 4);
    }
}
