//! Scalar expressions over tuples: selection predicates, arithmetic and
//! computed columns.
//!
//! CAQL "supports arithmetic operators, logical connectives (AND, OR,
//! NOT)" (§5); compiled CAQL selections bottom out in this expression
//! language, which both the cache's Query Processor and the simulated
//! remote engine evaluate.

use crate::error::{RelationalError, Result};
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the comparison to two values. Numeric comparands compare
    /// numerically; other comparands use the total value order.
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        let ord = match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x.total_cmp(&y),
            _ => a.cmp(b),
        };
        self.holds(ord)
    }

    /// Whether the comparison holds for an already-computed ordering of
    /// its operands. The vectorized kernels compare column-at-a-time and
    /// share this mapping with [`CmpOp::eval`] so the two paths cannot
    /// drift.
    pub fn holds(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of the operator.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A scalar expression evaluated against a single tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The value of the column at the given index.
    Col(usize),
    /// A constant.
    Const(Value),
    /// Comparison of two subexpressions; yields a boolean.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Vec<Expr>),
    /// Logical disjunction.
    Or(Vec<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic sum.
    Add(Box<Expr>, Box<Expr>),
    /// Arithmetic difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Arithmetic product.
    Mul(Box<Expr>, Box<Expr>),
    /// Arithmetic quotient (integer division for two ints).
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Shorthand: `col(i) op const`.
    pub fn col_cmp(i: usize, op: CmpOp, v: impl Into<Value>) -> Expr {
        Expr::Cmp(op, Box::new(Expr::Col(i)), Box::new(Expr::Const(v.into())))
    }

    /// Shorthand: `col(i) = col(j)`.
    pub fn cols_eq(i: usize, j: usize) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(Expr::Col(i)), Box::new(Expr::Col(j)))
    }

    /// The constant `true`.
    pub fn always() -> Expr {
        Expr::Const(Value::Bool(true))
    }

    /// Evaluate against `t`, returning a value.
    pub fn eval(&self, t: &Tuple) -> Result<Value> {
        match self {
            Expr::Col(i) => t
                .get(*i)
                .cloned()
                .ok_or(RelationalError::ColumnIndexOutOfRange {
                    index: *i,
                    arity: t.arity(),
                }),
            Expr::Const(v) => Ok(v.clone()),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(t)?, b.eval(t)?);
                Ok(Value::Bool(op.eval(&va, &vb)))
            }
            Expr::And(es) => {
                for e in es {
                    if !e.eval_bool(t)? {
                        return Ok(Value::Bool(false));
                    }
                }
                Ok(Value::Bool(true))
            }
            Expr::Or(es) => {
                for e in es {
                    if e.eval_bool(t)? {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(Value::Bool(false))
            }
            Expr::Not(e) => Ok(Value::Bool(!e.eval_bool(t)?)),
            Expr::Add(a, b) => arith(a.eval(t)?, b.eval(t)?, "+"),
            Expr::Sub(a, b) => arith(a.eval(t)?, b.eval(t)?, "-"),
            Expr::Mul(a, b) => arith(a.eval(t)?, b.eval(t)?, "*"),
            Expr::Div(a, b) => arith(a.eval(t)?, b.eval(t)?, "/"),
        }
    }

    /// Evaluate as a boolean predicate.
    pub fn eval_bool(&self, t: &Tuple) -> Result<bool> {
        match self.eval(t)? {
            Value::Bool(b) => Ok(b),
            other => Err(RelationalError::TypeError(format!(
                "expected boolean, got {other}"
            ))),
        }
    }

    /// Number of nodes in the expression tree — used as a crude CPU-cost
    /// proxy by the planner's cost model.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Col(_) | Expr::Const(_) => 1,
            Expr::Cmp(_, a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b) => 1 + a.node_count() + b.node_count(),
            Expr::And(es) | Expr::Or(es) => 1 + es.iter().map(Expr::node_count).sum::<usize>(),
            Expr::Not(e) => 1 + e.node_count(),
        }
    }

    /// Remap column indices through `map` (old index → new index).
    /// Used when pushing predicates through projections.
    pub fn remap_cols(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(map(*i)),
            Expr::Const(v) => Expr::Const(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.remap_cols(map)),
                Box::new(b.remap_cols(map)),
            ),
            Expr::And(es) => Expr::And(es.iter().map(|e| e.remap_cols(map)).collect()),
            Expr::Or(es) => Expr::Or(es.iter().map(|e| e.remap_cols(map)).collect()),
            Expr::Not(e) => Expr::Not(Box::new(e.remap_cols(map))),
            Expr::Add(a, b) => Expr::Add(Box::new(a.remap_cols(map)), Box::new(b.remap_cols(map))),
            Expr::Sub(a, b) => Expr::Sub(Box::new(a.remap_cols(map)), Box::new(b.remap_cols(map))),
            Expr::Mul(a, b) => Expr::Mul(Box::new(a.remap_cols(map)), Box::new(b.remap_cols(map))),
            Expr::Div(a, b) => Expr::Div(Box::new(a.remap_cols(map)), Box::new(b.remap_cols(map))),
        }
    }
}

fn arith(a: Value, b: Value, op: &str) -> Result<Value> {
    match (a, b, op) {
        (Value::Int(x), Value::Int(y), "+") => Ok(Value::Int(x.wrapping_add(y))),
        (Value::Int(x), Value::Int(y), "-") => Ok(Value::Int(x.wrapping_sub(y))),
        (Value::Int(x), Value::Int(y), "*") => Ok(Value::Int(x.wrapping_mul(y))),
        (Value::Int(_), Value::Int(0), "/") => Err(RelationalError::DivisionByZero),
        (Value::Int(x), Value::Int(y), "/") => Ok(Value::Int(x / y)),
        (a, b, op) => {
            let (x, y) = (
                a.as_f64().ok_or_else(|| {
                    RelationalError::TypeError(format!("non-numeric operand {a} for `{op}`"))
                })?,
                b.as_f64().ok_or_else(|| {
                    RelationalError::TypeError(format!("non-numeric operand {b} for `{op}`"))
                })?,
            );
            let r = match op {
                "+" => x + y,
                "-" => x - y,
                "*" => x * y,
                "/" => {
                    if y == 0.0 {
                        return Err(RelationalError::DivisionByZero);
                    }
                    x / y
                }
                _ => unreachable!("arith called with unknown op"),
            };
            Ok(Value::Float(r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn comparisons_on_columns_and_constants() {
        let t = tuple![5, "x"];
        assert!(Expr::col_cmp(0, CmpOp::Gt, 3).eval_bool(&t).unwrap());
        assert!(!Expr::col_cmp(0, CmpOp::Lt, 3).eval_bool(&t).unwrap());
        assert!(Expr::col_cmp(1, CmpOp::Eq, "x").eval_bool(&t).unwrap());
    }

    #[test]
    fn logical_connectives() {
        let t = tuple![1];
        let p = Expr::And(vec![
            Expr::col_cmp(0, CmpOp::Ge, 0),
            Expr::Not(Box::new(Expr::col_cmp(0, CmpOp::Eq, 2))),
        ]);
        assert!(p.eval_bool(&t).unwrap());
        let q = Expr::Or(vec![
            Expr::col_cmp(0, CmpOp::Eq, 9),
            Expr::col_cmp(0, CmpOp::Eq, 1),
        ]);
        assert!(q.eval_bool(&t).unwrap());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let t = tuple![6, 4];
        let sum = Expr::Add(Box::new(Expr::Col(0)), Box::new(Expr::Col(1)));
        assert_eq!(sum.eval(&t).unwrap(), Value::Int(10));
        let div = Expr::Div(
            Box::new(Expr::Col(0)),
            Box::new(Expr::Const(Value::Float(4.0))),
        );
        assert_eq!(div.eval(&t).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let t = tuple![1, 0];
        let div = Expr::Div(Box::new(Expr::Col(0)), Box::new(Expr::Col(1)));
        assert_eq!(div.eval(&t), Err(RelationalError::DivisionByZero));
    }

    #[test]
    fn mixed_numeric_comparison_is_numeric() {
        assert!(CmpOp::Eq.eval(&Value::Int(1), &Value::Float(1.0)));
        assert!(CmpOp::Lt.eval(&Value::Int(1), &Value::Float(1.5)));
    }

    #[test]
    fn flipped_and_negated() {
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negated(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
    }

    #[test]
    fn eval_bool_rejects_non_boolean() {
        let t = tuple![1];
        assert!(Expr::Col(0).eval_bool(&t).is_err());
    }

    #[test]
    fn remap_cols_rewrites_references() {
        let e = Expr::cols_eq(0, 2).remap_cols(&|i| i + 10);
        assert_eq!(e, Expr::cols_eq(10, 12));
    }

    #[test]
    fn out_of_range_column_errors() {
        let t = tuple![1];
        assert!(Expr::Col(3).eval(&t).is_err());
    }
}
