//! Hash indices over relation columns.
//!
//! The paper's Query Processor "uses hash indices when available to speed
//! up joins and some selections" (§5.4); the CMS builds them in response to
//! consumer (`?`) binding annotations in advice (§4.2.1).

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// A multimap from a column-value key to the row ids holding that key.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: HashMap<Vec<Value>, Vec<usize>>,
}

impl HashIndex {
    /// Empty index.
    pub fn new() -> Self {
        HashIndex::default()
    }

    /// Register `t` (stored at `row`) under its key on `cols`.
    pub fn add(&mut self, t: &Tuple, cols: &[usize], row: usize) {
        self.map.entry(t.key(cols)).or_default().push(row);
    }

    /// Row ids whose key equals `key` (empty slice when none).
    pub fn get(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total number of indexed entries.
    pub fn entries(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_size(&self) -> usize {
        self.map
            .iter()
            .map(|(k, v)| 48 + k.iter().map(Value::approx_size).sum::<usize>() + v.len() * 8)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn add_and_get() {
        let mut idx = HashIndex::new();
        idx.add(&tuple!["a", 1], &[0], 0);
        idx.add(&tuple!["a", 2], &[0], 1);
        idx.add(&tuple!["b", 3], &[0], 2);
        assert_eq!(idx.get(&[Value::str("a")]), &[0, 1]);
        assert_eq!(idx.get(&[Value::str("b")]), &[2]);
        assert_eq!(idx.get(&[Value::str("z")]), &[] as &[usize]);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.entries(), 3);
    }

    #[test]
    fn composite_keys() {
        let mut idx = HashIndex::new();
        idx.add(&tuple!["a", 1, "x"], &[0, 2], 0);
        idx.add(&tuple!["a", 2, "y"], &[0, 2], 1);
        assert_eq!(idx.get(&[Value::str("a"), Value::str("x")]), &[0]);
        assert_eq!(idx.get(&[Value::str("a"), Value::str("y")]), &[1]);
    }
}
