//! Immutable, cheaply-cloneable tuples.
//!
//! Tuples flow across three system boundaries in BrAID — remote DBMS →
//! CMS buffer → cache, and cache → stream → inference engine — so they are
//! stored behind `Arc` and cloned by reference count ("interfaces for
//! efficient data transfer", §5).

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An immutable row of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// The empty (0-ary) tuple.
    pub fn empty() -> Self {
        Tuple {
            values: Arc::from(Vec::new()),
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Field at `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// All fields.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// New tuple holding the fields at `indices` (indices may repeat).
    ///
    /// Collects straight into the `Arc`-backed slice: one allocation per
    /// projected tuple, rather than a `Vec` that is then copied into an
    /// `Arc`. This is the executor's per-row projection hot path — the
    /// batch pass in `exec` reuses one index slice per batch and calls
    /// this per row.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Concatenation of `self` and `other` (used by joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// Key extraction for hash joins / indices: the values at `indices`.
    pub fn key(&self, indices: &[usize]) -> Vec<Value> {
        indices.iter().map(|&i| self.values[i].clone()).collect()
    }

    /// Approximate heap footprint in bytes (for cache accounting).
    pub fn approx_size(&self) -> usize {
        16 + self.values.iter().map(Value::approx_size).sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

/// Build a tuple from anything convertible to values:
/// `tuple!["ann", 3, true]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_and_concat() {
        let t = tuple!["a", 1, "b"];
        assert_eq!(t.project(&[2, 0]), tuple!["b", "a"]);
        assert_eq!(t.concat(&tuple![9]), tuple!["a", 1, "b", 9]);
    }

    #[test]
    fn key_extracts_values() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.key(&[1]), vec![Value::int(20)]);
    }

    #[test]
    fn clone_is_shallow() {
        let t = tuple!["shared", 1];
        let u = t.clone();
        // Same Arc — pointer equality on the backing slice.
        assert!(std::ptr::eq(t.values().as_ptr(), u.values().as_ptr()));
    }

    #[test]
    fn display_is_parenthesised() {
        assert_eq!(tuple!["x", 2].to_string(), "(x, 2)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }
}
