//! # braid-relational
//!
//! A main-memory relational substrate shared by the two data-holding
//! components of the BrAID reproduction:
//!
//! * the **cache** managed by the Cache Management System (CMS), which the
//!   paper describes as "functionally ... a main memory relational database
//!   management system" (Sheth & O'Hare, ICDE 1991, §3), and
//! * the **simulated remote DBMS** standing in for the paper's INGRES /
//!   Britton-Lee IDM-500 back ends.
//!
//! The crate provides typed [`Value`]s, [`Schema`]s, immutable shared
//! [`Tuple`]s, materialized [`Relation`]s with optional [hash
//! indices](index::HashIndex), and a single physical-plan layer
//! ([`plan`]) executed by a batched pull executor ([`exec`]). The eager
//! relational [operators](ops) and the *lazy* generator API ([`lazy`]) —
//! the paper's **generators** ("a generator ... produces a single tuple
//! on demand", §5.1) — are two thin modes over that one executor.
//! Per-relation [statistics](stats) support cost-based planning.
//!
//! Everything is deliberately free of I/O and external dependencies: the
//! BrAID architecture treats both stores as main-memory systems and models
//! remote access cost separately (see the `braid-remote` crate).

pub mod columnar;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod lazy;
pub mod ops;
pub mod plan;
pub mod relation;
pub mod schema;
pub mod sort;
pub mod stats;
pub mod tuple;
pub mod value;

pub use columnar::{ColVec, ColumnarRelation};
pub use error::{RelationalError, Result};
pub use exec::{ExecConfig, ExecStats, RunningPlan, TupleBatch};
pub use expr::{CmpOp, Expr};
pub use index::HashIndex;
pub use lazy::{Generator, RunningGenerator, TupleStream};
pub use plan::{AggFunc, Aggregate, PhysicalPlan};
pub use relation::Relation;
pub use schema::{Column, Schema};
pub use stats::RelationStats;
pub use tuple::Tuple;
pub use value::{Value, ValueType};
