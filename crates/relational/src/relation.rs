//! Materialized relations: a schema plus a set of tuples.
//!
//! Relations are *set-like*: duplicate insertion is idempotent. This matches
//! the logic-programming view the inference engine takes of extensional
//! data, and makes cache-element semantics (materialized views) crisp.

use crate::error::{RelationalError, Result};
use crate::index::HashIndex;
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt;

/// A materialized relation: schema, tuples and any hash indices built over
/// them. This is the paper's relation *extension* (§5.1).
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
    seen: HashSet<Tuple>,
    indices: HashMap<Vec<usize>, HashIndex>,
    approx_bytes: usize,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
            seen: HashSet::new(),
            indices: HashMap::new(),
            approx_bytes: 0,
        }
    }

    /// Build a relation from tuples, deduplicating.
    ///
    /// # Errors
    /// Returns [`RelationalError::ArityMismatch`] if any tuple's arity
    /// differs from the schema's.
    pub fn from_tuples(schema: Schema, tuples: impl IntoIterator<Item = Tuple>) -> Result<Self> {
        let mut r = Relation::new(schema);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rename the relation (returns a view with shared tuples).
    pub fn renamed(&self, name: &str) -> Relation {
        let mut r = self.clone();
        r.schema = self.schema.renamed(name);
        r
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Approximate heap footprint in bytes, for cache accounting.
    pub fn approx_size(&self) -> usize {
        64 + self.approx_bytes
    }

    /// Insert a tuple. Returns `true` if the tuple was new.
    ///
    /// # Errors
    /// Returns [`RelationalError::ArityMismatch`] on arity mismatch.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.arity() != self.schema.arity() {
            return Err(RelationalError::ArityMismatch {
                expected: self.schema.arity(),
                got: t.arity(),
            });
        }
        if !self.seen.insert(t.clone()) {
            return Ok(false);
        }
        let row = self.tuples.len();
        self.approx_bytes += t.approx_size();
        for (cols, idx) in self.indices.iter_mut() {
            idx.add(&t, cols, row);
        }
        self.tuples.push(t);
        Ok(true)
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.seen.contains(t)
    }

    /// Iterate over tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Tuple at row id `i`.
    pub fn row(&self, i: usize) -> Option<&Tuple> {
        self.tuples.get(i)
    }

    /// Owned snapshot of all tuples (cheap: tuples are `Arc`-backed).
    pub fn to_vec(&self) -> Vec<Tuple> {
        self.tuples.clone()
    }

    /// Build (or rebuild) a hash index on the given columns and return a
    /// reference to it. Index construction is what the CMS does when advice
    /// marks an attribute as a *consumer* ("a prime candidate for
    /// indexing", §4.2.1).
    ///
    /// # Errors
    /// Returns an error if any index column is out of range.
    pub fn build_index(&mut self, cols: &[usize]) -> Result<&HashIndex> {
        for &c in cols {
            if c >= self.schema.arity() {
                return Err(RelationalError::ColumnIndexOutOfRange {
                    index: c,
                    arity: self.schema.arity(),
                });
            }
        }
        let key: Vec<usize> = cols.to_vec();
        if !self.indices.contains_key(&key) {
            let mut idx = HashIndex::new();
            for (row, t) in self.tuples.iter().enumerate() {
                idx.add(t, cols, row);
            }
            self.indices.insert(key.clone(), idx);
        }
        Ok(&self.indices[&key])
    }

    /// Existing index on exactly these columns, if one has been built.
    pub fn index_on(&self, cols: &[usize]) -> Option<&HashIndex> {
        self.indices.get(cols)
    }

    /// Column sets that currently have indices.
    pub fn indexed_column_sets(&self) -> impl Iterator<Item = &[usize]> + '_ {
        self.indices.keys().map(|k| k.as_slice())
    }

    /// Probe an index: row ids of tuples whose `cols` equal `key`.
    /// Falls back to a scan when no index exists.
    pub fn lookup(&self, cols: &[usize], key: &[crate::Value]) -> Vec<usize> {
        if let Some(idx) = self.indices.get(cols) {
            return idx.get(key).to_vec();
        }
        self.tuples
            .iter()
            .enumerate()
            .filter(|(_, t)| cols.iter().zip(key).all(|(&c, v)| t.get(c) == Some(v)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Deterministically sorted copy of the tuples (for tests and display).
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v = self.tuples.clone();
        v.sort();
        v
    }
}

impl PartialEq for Relation {
    /// Set equality of tuples; schemas must have equal arity but names are
    /// ignored (relations are compared by content).
    fn eq(&self, other: &Self) -> bool {
        self.schema.arity() == other.schema.arity() && self.seen == other.seen
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.len())?;
        for t in self.sorted_tuples() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use crate::{tuple, Schema};

    fn rel() -> Relation {
        let mut r = Relation::new(Schema::of_strs("parent", &["p", "c"]));
        r.insert(tuple!["ann", "bob"]).unwrap();
        r.insert(tuple!["bob", "cal"]).unwrap();
        r.insert(tuple!["ann", "dee"]).unwrap();
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = rel();
        assert_eq!(r.len(), 3);
        assert!(!r.insert(tuple!["ann", "bob"]).unwrap());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = rel();
        assert!(matches!(
            r.insert(tuple!["x"]),
            Err(RelationalError::ArityMismatch {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn index_probe_matches_scan() {
        let mut r = rel();
        let scan = r.lookup(&[0], &[Value::str("ann")]);
        r.build_index(&[0]).unwrap();
        let probe = r.lookup(&[0], &[Value::str("ann")]);
        assert_eq!(scan, probe);
        assert_eq!(probe.len(), 2);
    }

    #[test]
    fn index_stays_current_after_insert() {
        let mut r = rel();
        r.build_index(&[0]).unwrap();
        r.insert(tuple!["ann", "eli"]).unwrap();
        assert_eq!(r.lookup(&[0], &[Value::str("ann")]).len(), 3);
    }

    #[test]
    fn index_out_of_range_errors() {
        let mut r = rel();
        assert!(r.build_index(&[7]).is_err());
    }

    #[test]
    fn relation_equality_is_set_equality() {
        let a = rel();
        let mut b = Relation::new(Schema::of_strs("other", &["x", "y"]));
        // Insert in a different order.
        b.insert(tuple!["ann", "dee"]).unwrap();
        b.insert(tuple!["ann", "bob"]).unwrap();
        b.insert(tuple!["bob", "cal"]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn approx_size_grows_with_content() {
        let mut r = Relation::new(Schema::of_strs("r", &["x"]));
        let before = r.approx_size();
        r.insert(tuple!["hello world"]).unwrap();
        assert!(r.approx_size() > before);
    }
}
