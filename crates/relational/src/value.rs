//! Typed scalar values stored in relations.
//!
//! The paper's worked examples are purely symbolic (constants `c1`, `c2`,
//! ...), but CAQL "supports arithmetic operators" (§5), so values carry
//! integers and floats in addition to interned strings. A total order is
//! defined across all values (ordering first by type tag) so that relations
//! can be sorted and deduplicated deterministically.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The dynamic type of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float with a total order (NaN sorts last).
    Float,
    /// Interned UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// The SQL-ish null; equal to itself so relations stay set-like.
    Null,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
            ValueType::Bool => "bool",
            ValueType::Null => "null",
        };
        f.write_str(s)
    }
}

/// A scalar value. Strings are reference counted so that tuples can be
/// cloned cheaply as they move between the remote DBMS, the cache and the
/// inference engine's answer streams.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. Compared with a total order; NaN compares equal to
    /// itself and greater than every other float.
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
    /// Null (absent) value.
    Null,
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for integer values.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// The dynamic type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Bool(_) => ValueType::Bool,
            Value::Null => ValueType::Null,
        }
    }

    /// Integer payload, if this value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String payload, if this value is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload, if this value is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view of the value (ints widen to floats) used by the
    /// arithmetic evaluator.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes, used by the CMS for cache
    /// resource accounting (§5.4: "keeping track of resources consumed by
    /// the cached data").
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Bool(_) | Value::Null => 1,
            Value::Str(s) => 16 + s.len(),
        }
    }

    /// True when both values are numeric and numerically equal, or equal
    /// under the total order otherwise.
    pub fn semantic_eq(&self, other: &Value) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a == b,
            _ => self == other,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn tag(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) => 2,
                Float(_) => 3,
                Str(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => total_f64_cmp(*a, *b),
            // Mixed numerics compare numerically so `1` and `1.0` are the
            // same point in sort order but remain distinct values under the
            // tag tiebreak.
            (Int(a), Float(b)) => total_f64_cmp(*a as f64, *b).then(Ordering::Less),
            (Float(a), Int(b)) => total_f64_cmp(*a, *b as f64).then(Ordering::Greater),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }
}

fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "null"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn display_round_trips_ints_and_strings() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::str("alice").to_string(), "alice");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn total_order_is_by_type_tag_then_payload() {
        let mut vs = vec![
            Value::str("a"),
            Value::int(2),
            Value::Null,
            Value::Bool(true),
            Value::int(1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::int(1),
                Value::int(2),
                Value::str("a"),
            ]
        );
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = Value::str("hello");
        let b = Value::str("hello");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn floats_have_total_order_including_nan() {
        let mut vs = [
            Value::Float(f64::NAN),
            Value::Float(1.0),
            Value::Float(-1.0),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Float(-1.0));
        assert_eq!(vs[1], Value::Float(1.0));
        assert!(matches!(vs[2], Value::Float(f) if f.is_nan()));
        // NaN equals itself under the total order.
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn mixed_numeric_ordering_is_numeric() {
        assert!(Value::int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::int(1));
        // Equal magnitude: Int sorts before Float (deterministic tiebreak),
        // and they are *not* equal values.
        assert!(Value::int(1) < Value::Float(1.0));
        assert_ne!(Value::int(1), Value::Float(1.0));
        // ... but they are semantically (numerically) equal.
        assert!(Value::int(1).semantic_eq(&Value::Float(1.0)));
    }

    #[test]
    fn approx_size_counts_string_payload() {
        assert_eq!(Value::int(7).approx_size(), 8);
        assert_eq!(Value::str("abcd").approx_size(), 20);
    }

    #[test]
    fn as_f64_widens_ints() {
        assert_eq!(Value::int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
    }
}
