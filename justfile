# Common developer entry points. `just ci` is what the repo gates on.

# fmt --check, build, test (incl. executor differential and trace/EXPLAIN
# suites), clippy -D warnings, E11 + E14 smoke runs.
ci:
    ./scripts/ci.sh

fmt:
    cargo fmt --all

fmt-check:
    cargo fmt --all -- --check

build:
    cargo build --release --workspace

test:
    cargo test --workspace -q

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Regenerate every EXPERIMENTS.md table (full sizes, markdown).
report:
    cargo run --release -p braid-bench --bin report -- --markdown

# Fast smoke run of all experiments.
report-quick:
    cargo run -p braid-bench --bin report -- --quick

bench:
    cargo bench --workspace

# The observability invariants (monotone counters, span forests,
# histogram algebra, EXPLAIN stability) plus the tracing-overhead smoke.
trace-check:
    cargo test --test trace_observability -q
    cargo test -p braid-trace -q
    cargo run -p braid-bench --bin report -- --quick --only E14

# Live server dashboard over the wire STATS protocol (DESIGN.md §14).
# `just top` attaches to a running server; `just top-demo` brings its
# own server + traffic; `just top-smoke` is the one-shot CI check.
top addr="127.0.0.1:7878":
    cargo run --release -p braid-load --bin top -- --addr {{addr}}

top-demo:
    cargo run --release -p braid-load --bin top -- --demo --interval-ms 500

top-smoke:
    cargo run --release -p braid-load --bin top -- --demo --once

# The network suites (DESIGN.md §11): frame codec + fault proxy
# (braid-net), TCP server/client-pool/transport (braid-remote), the
# socket chaos suite driving real workloads through the fault proxy,
# and the server-side chaos suite (proxy pointed at BraidServer).
net:
    cargo test -p braid-net -q
    cargo test -p braid-remote -q
    cargo test --release --test net_chaos -q
    cargo test --release --test server_chaos -q

# Deterministic simulation sweep (DESIGN.md §10): seeded scenarios through
# the step scheduler, every answer oracle-checked against the reference
# model; failures are shrunk to a replayable repro. Override the seed
# range with `just sim 500 100` (start, rounds).
sim start="0" rounds="200":
    SIM_SEED_START={{start}} SIM_ROUNDS={{rounds}} \
        cargo run --release -p braid-bench --bin sim

# Soak lane: the same seeds through the deterministic scheduler, a
# columnar-forced rerun digest-compared against the row run, the
# threaded runner (one OS thread per session over the shared cache),
# the socket runner (same sessions over a real TCP listener behind the
# fault proxy), AND the cooperative runner (same sessions as resumable
# state machines on a fixed worker pool — `workers` sets the pool size
# via SIM_WORKERS), in release so threads genuinely interleave. This
# subsumes the old 25-round `stress` loop: loom is not vendorable
# offline (DESIGN.md §7), so schedule coverage comes from seeded
# repetition.
soak start="0" rounds="400" workers="4" procs="0":
    SIM_SEED_START={{start}} SIM_ROUNDS={{rounds}} SIM_WORKERS={{workers}} SIM_PROCS={{procs}} \
        cargo run --release -p braid-bench --bin sim -- --soak
    cargo test --release --test concurrent_sessions -q
    cargo test --release --test cooperative_sessions -q

# Back-compat alias for the old stress entry point.
stress: soak

# The columnar-representation battery (DESIGN.md §15): the differential
# proptest suite (row ≡ columnar across batch sizes, round trips,
# dictionary/NULL edge cases), the sim oracle sweep with columnar
# forced on, and the E20 row-vs-columnar speedup table.
columnar:
    cargo test --test columnar_differential -q
    cargo test --test sim_oracle -q forty_seeded_scenarios_pass_with_columnar_forced_on
    cargo run --release -p braid-bench --bin report -- --quick --only E20

# Multi-process load generator (DESIGN.md §13): fork real client
# processes against a braid server, closed- or open-loop, every digest
# checked against the reference model. `just load 8 4000` runs 8
# processes at 4000 arrivals/s per process; rate 0 is closed loop.
load procs="4" rate="800" queries="200":
    cargo run --release -p braid-load --bin load -- \
        --procs {{procs}} --rate {{rate}} --queries {{queries}}

# Server-side chaos suite: the fault proxy pointed at BraidServer —
# resets, torn frames, outage windows, protocol garbage — asserting
# typed errors and drained gauges after every scenario.
server-chaos:
    cargo test --release --test server_chaos -q

# Narrated braid-server demo: N TCP clients multiplexed as resumable
# session state machines on a fixed worker pool (DESIGN.md §12).
serve:
    cargo run --release --example serve
