# Common developer entry points. `just ci` is what the repo gates on.

# fmt --check, build, test (incl. executor differential and trace/EXPLAIN
# suites), clippy -D warnings, E11 + E14 smoke runs.
ci:
    ./scripts/ci.sh

fmt:
    cargo fmt --all

fmt-check:
    cargo fmt --all -- --check

build:
    cargo build --release --workspace

test:
    cargo test --workspace -q

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

# Regenerate every EXPERIMENTS.md table (full sizes, markdown).
report:
    cargo run --release -p braid-bench --bin report -- --markdown

# Fast smoke run of all experiments.
report-quick:
    cargo run -p braid-bench --bin report -- --quick

bench:
    cargo bench --workspace

# The observability invariants (monotone counters, span forests,
# histogram algebra, EXPLAIN stability) plus the tracing-overhead smoke.
trace-check:
    cargo test --test trace_observability -q
    cargo test -p braid-trace -q
    cargo run -p braid-bench --bin report -- --quick --only E14

# Seeded concurrency stress: loom is not vendorable offline (DESIGN.md §7),
# so schedule coverage comes from repetition — the ignored stress test
# re-runs the concurrent differential harness across many seeds and shard
# counts, in release so threads genuinely interleave.
stress:
    cargo test --release --test concurrent_sessions -q -- --ignored
    cargo test --release --test concurrent_sessions -q
