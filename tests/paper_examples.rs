//! Exact reproduction of every worked example in the paper (DESIGN.md
//! items X1–X6).
//!
//! Sheth & O'Hare give symbolic examples rather than numeric tables; each
//! test here asserts our system produces *precisely* the paper's artifact.

use braid::{KnowledgeBase, Strategy};
use braid_advice::PathTracker;
use braid_caql::{parse_atom, parse_rule};
use braid_ie::graph::ProblemGraph;
use braid_ie::viewspec::{specify, SpecifyOptions};
use braid_subsume::{decompose, subsumes, Component, SubsumptionEngine, ViewDef};

/// Strip the `_N` rename suffixes the extractor adds to rule-local
/// variables, so output can be compared against the paper's notation.
fn normalize(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '_' && chars.peek().map(|d| d.is_ascii_digit()).unwrap_or(false) {
            while chars.peek().map(|d| d.is_ascii_digit()).unwrap_or(false) {
                chars.next();
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn example1_kb() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.declare_base("b1", 2);
    kb.declare_base("b2", 2);
    kb.declare_base("b3", 3);
    kb.add_program(
        "k1(X, Y) :- b1(c1, Y), k2(X, Y).\n\
         k2(X, Y) :- b2(X, Z), b3(Z, c2, Y).\n\
         k2(X, Y) :- b3(X, c3, Z), b1(Z, Y).",
    )
    .unwrap();
    kb
}

/// X1 — §4.2.2 Example 1: view specifications.
#[test]
fn x1_example1_view_specifications() {
    let kb = example1_kb();
    let g = ProblemGraph::extract(&kb, &parse_atom("k1(X, Y)").unwrap()).unwrap();
    let spec = specify(&g, SpecifyOptions::default(), 0);
    let rendered: Vec<String> = spec
        .specs
        .iter()
        .map(|v| normalize(&v.to_string()))
        .collect();
    assert_eq!(
        rendered,
        vec![
            "d1(Y^) =def b1(c1, Y^) (R1)",
            "d2(X^, Y?) =def b2(X^, Z) & b3(Z, c2, Y?) (R2)",
            "d3(X^, Y?) =def b3(X^, c3, Z) & b1(Z, Y?) (R3)",
        ]
    );
}

/// X1 — §4.2.2 Example 1: the path expression.
#[test]
fn x1_example1_path_expression() {
    let kb = example1_kb();
    let g = ProblemGraph::extract(&kb, &parse_atom("k1(X, Y)").unwrap()).unwrap();
    let spec = specify(&g, SpecifyOptions::default(), 0);
    let p = braid_ie::pathexpr::create(&g, &kb, &spec);
    assert_eq!(
        p.to_string(),
        "(d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>"
    );
}

/// X2 — §4.2.2 Example 2: guards turn the sequence into an alternation,
/// and "the view specifications for this example would be identical to
/// those of the previous example".
#[test]
fn x2_example2_alternation() {
    let mut kb = KnowledgeBase::new();
    kb.declare_base("b1", 2);
    kb.declare_base("b2", 2);
    kb.declare_base("b3", 3);
    kb.add_program(
        "k1(X, Y) :- b1(c1, Y), k2(X, Y).\n\
         k2(X, Y) :- k3(X), b2(X, Z), b3(Z, c2, Y).\n\
         k2(X, Y) :- k4(X), b3(X, c3, Z), b1(Z, Y).\n\
         k3(c7).\n\
         k4(c8).",
    )
    .unwrap();
    let g = ProblemGraph::extract(&kb, &parse_atom("k1(X, Y)").unwrap()).unwrap();
    let spec = specify(&g, SpecifyOptions::default(), 0);
    // Identical view definitions (modulo the d-numbering order).
    let rendered: Vec<String> = spec
        .specs
        .iter()
        .map(|v| normalize(&v.to_string()))
        .collect();
    assert!(rendered.contains(&"d1(Y^) =def b1(c1, Y^) (R1)".to_string()));
    assert!(rendered.contains(&"d2(X^, Y?) =def b2(X^, Z) & b3(Z, c2, Y?) (R2)".to_string()));
    assert!(rendered.contains(&"d3(X^, Y?) =def b3(X^, c3, Z) & b1(Z, Y?) (R3)".to_string()));
    let p = braid_ie::pathexpr::create(&g, &kb, &spec);
    assert_eq!(
        p.to_string(),
        "(d1(Y^), ([d2(X^, Y?), d3(X^, Y?)])<0,|Y|>)<1,1>"
    );
}

/// X3 — the §4.2.2 tracking excerpt: valid query sequences and the
/// paper's step-by-step predictions.
#[test]
fn x3_tracking_excerpt_predictions() {
    let src = "(d1(X?, Y^), [(d2(Z^, Y?), d3(Z?))<1,1>, (d4(U^, Y?), d5(U?))<1,1>]^1)<0,|X|>";
    let expr = braid_advice::parse_path_expr(src).unwrap();
    // "the following are some valid sequences of CAQL queries":
    for seq in [
        vec!["d1(c0, Y)", "d2(Z, c9)", "d3(c0)"],
        vec![
            "d1(c0, Y)",
            "d4(U, c9)",
            "d1(c0, Y)",
            "d2(Z, c9)",
            "d3(c0)",
            "d1(c0, Y)",
        ],
        vec![
            "d1(c0, Y)",
            "d2(Z, c9)",
            "d3(c0)",
            "d1(c0, Y)",
            "d4(U, c9)",
            "d5(c0)",
        ],
    ] {
        let mut t = PathTracker::new(&expr);
        for q in &seq {
            assert!(t.advance(&parse_atom(q).unwrap()), "{seq:?} stuck at {q}");
        }
    }
    // "After the CMS receives the CAQL query d1 it can predict that the
    // next query (if any) will involve either d2 or d4."
    let mut t = PathTracker::new(&expr);
    t.advance(&parse_atom("d1(c0, Y)").unwrap());
    let p: Vec<&str> = t.predict_next().into_iter().collect();
    assert_eq!(p, vec!["d2", "d4"]);
    // "Assume that the next query involves d2. Now the CMS can predict
    // that the next query will involve d3 or d1."
    t.advance(&parse_atom("d2(Z, c9)").unwrap());
    let p: Vec<&str> = t.predict_next().into_iter().collect();
    assert_eq!(p, vec!["d1", "d3"]);
    // "Thus, d1 will be required for one of the next two queries. If the
    // CMS needs to replace some cache element it is clear that d1 is not
    // the best candidate."
    assert_eq!(t.distance_to("d1"), Some(1));
    t.advance(&parse_atom("d3(c0)").unwrap());
    let p: Vec<&str> = t.predict_next().into_iter().collect();
    assert_eq!(p, vec!["d1"]);
}

/// X4 — §5.3.2's step-1 subsumption examples over b21.
#[test]
fn x4_step1_single_predicate_subsumption() {
    // Q_c1 = b21(X, 2); E1 = b21(X,Y) & b22(Y,Z); E2 = b21(3,Y);
    // E3 = b21(X,2) & b23(2,Z). "Here E1 and E3 will be considered
    // further" at the single-predicate level; E2 is rejected outright.
    let q = Component::whole(&parse_rule("q(X) :- b21(X, 2).").unwrap());
    let single_atom_of = |src: &str, pick: usize| {
        let r = parse_rule(src).unwrap();
        let atom = r.positive_atoms()[pick].clone();
        ViewDef::over_conjunction("e", vec![braid_caql::Literal::Atom(atom)]).unwrap()
    };
    // E1's b21(X,Y) subsumes with unifier (,Y=2) — the paper's notation.
    let e1_b21 = single_atom_of("e1(X, Y, Z) :- b21(X, Y), b22(Y, Z).", 0);
    let d = subsumes(&e1_b21, &q, &["X"]).unwrap();
    assert_eq!(d.filters.len(), 1, "unifier (,Y=2) becomes one selection");
    // E2 = b21(3, Y): rejected.
    let e2 = single_atom_of("e2(Y) :- b21(3, Y).", 0);
    assert!(subsumes(&e2, &q, &["X"]).is_none());
    // E3's b21(X,2) subsumes with the empty unifier (,).
    let e3_b21 = single_atom_of("e3(X, Z) :- b21(X, 2), b23(2, Z).", 0);
    let d = subsumes(&e3_b21, &q, &["X"]).unwrap();
    assert!(d.is_exact(), "unifier (,) means no residual work");
}

/// X4 — §5.3.2's step-2 neighbour check: "E3 will be considered only for
/// Q1b".
#[test]
fn x4_step2_neighbour_check() {
    let e3 = ViewDef::new(parse_rule("e3(X, Z) :- b21(X, 2), b23(2, Z).").unwrap()).unwrap();
    let q1a = Component::whole(&parse_rule("q(X, Y) :- b21(X, 2), b22(2, Y).").unwrap());
    let q1b = Component::whole(&parse_rule("q(X) :- b23(2, 3), b21(X, 2).").unwrap());
    let q1c = Component::whole(&parse_rule("q(Y, Z) :- b21(2, Y), b23(Y, Z).").unwrap());
    assert!(subsumes(&e3, &q1a, &["X"]).is_none(), "wrong neighbour b22");
    assert!(subsumes(&e3, &q1b, &["X"]).is_some(), "Q1b accepted");
    assert!(
        subsumes(&e3, &q1c, &["Y"]).is_none(),
        "Q1c's b21(2,Y) not covered by b21(X,2)"
    );
}

/// X4 — §5.3.2's running example: E12 and E13 are the relevant elements
/// for the b3 part of d2(X, c6).
#[test]
fn x4_relevant_elements_for_d2() {
    let mut engine = SubsumptionEngine::new();
    engine.insert(
        11,
        ViewDef::new(parse_rule("e11(X, Y) :- b2(X, c1), b3(Y, c2, c6).").unwrap()).unwrap(),
    );
    engine.insert(
        12,
        ViewDef::new(parse_rule("e12(X, Y) :- b3(X, c2, Y).").unwrap()).unwrap(),
    );
    engine.insert(
        13,
        ViewDef::new(parse_rule("e13(X, Y, Z) :- b3(X, Y, Z).").unwrap()).unwrap(),
    );
    let q = parse_rule("d2(X) :- b2(X, Z), b3(Z, c2, c6).").unwrap();
    let uses = engine.find_relevant(&q);
    let b3_part: Vec<u64> = uses
        .iter()
        .filter(|u| u.component.len() == 1 && u.component.start == 1)
        .map(|u| u.element)
        .collect();
    assert!(b3_part.contains(&12) && b3_part.contains(&13));
    assert!(!b3_part.contains(&11));
    // Decomposition count: |Q| = 2 atoms ⇒ 2·3/2 = 3 components.
    assert_eq!(decompose(&q).len(), 3);
}

/// X6 — §4.2.1's minimum argument set: the k9 rule yields d(Z, V).
#[test]
fn x6_minimum_argument_set() {
    let mut kb = KnowledgeBase::new();
    kb.declare_base("b1", 2);
    kb.declare_base("b2", 2);
    kb.declare_base("b3", 2);
    kb.declare_base("bk", 2);
    kb.add_program(
        "k9(X, Y) :- k2(X, Z), b1(Z, W), b2(W, U), b3(U, V), k3(V, Y).\n\
         k2(X, Z) :- bk(X, Z).\n\
         k3(V, Y) :- bk(V, Y).",
    )
    .unwrap();
    let g = ProblemGraph::extract(&kb, &parse_atom("k9(X, Y)").unwrap()).unwrap();
    let spec = specify(&g, SpecifyOptions::default(), 0);
    let d = spec.specs.iter().find(|v| v.body.len() == 3).unwrap();
    let head = normalize(&d.head().to_string());
    assert!(head.ends_with("(Z, V)"), "A = (H∪B)∩D gives (Z, V): {head}");
}

/// F3 — the architecture's top-down query rule: the IE reads the cache
/// model and the remote schema *through* the CMS; and end-to-end solving
/// over the Example 1 knowledge base works against real data.
#[test]
fn f3_end_to_end_example1() {
    use braid::{BraidConfig, BraidSystem};
    use braid_relational::{tuple, Relation, Schema};

    let mut db = braid::Catalog::new();
    db.install(
        Relation::from_tuples(
            Schema::of_strs("b1", &["a", "b"]),
            vec![tuple!["c1", "y1"], tuple!["c1", "y2"], tuple!["z9", "y3"]],
        )
        .unwrap(),
    );
    db.install(
        Relation::from_tuples(
            Schema::of_strs("b2", &["a", "b"]),
            vec![tuple!["x1", "m1"], tuple!["x2", "m2"]],
        )
        .unwrap(),
    );
    db.install(
        Relation::from_tuples(
            Schema::of_strs("b3", &["a", "b", "c"]),
            vec![
                tuple!["m1", "c2", "y1"],
                tuple!["m2", "c2", "y2"],
                tuple!["x7", "c3", "c1"],
            ],
        )
        .unwrap(),
    );
    let mut sys = BraidSystem::new(db, example1_kb(), BraidConfig::default());
    // k1(X, Y): Y from b1(c1, Y) ∈ {y1, y2}; k2 via R2: b2(X,Z) & b3(Z,c2,Y)
    // gives (x1,y1), (x2,y2); via R3: b3(X,c3,Z) & b1(Z,Y) gives
    // (x7, y1), (x7, y2) via Z=c1.
    let sols = sys
        .solve_all("?- k1(X, Y).", Strategy::ConjunctionCompiled)
        .unwrap();
    let rendered: Vec<String> = sols.iter().map(|t| t.to_string()).collect();
    assert_eq!(
        rendered,
        vec!["(x1, y1)", "(x2, y2)", "(x7, y1)", "(x7, y2)"]
    );
    // The IE can read the cache model through the CMS (§3).
    assert!(!sys.cms().cache_model().is_empty());
    // ... and the remote schema through the CMS (§3).
    assert_eq!(sys.cms().remote_schema("b3").unwrap().arity(), 3);
}
