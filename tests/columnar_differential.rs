//! Differential battery for the columnar representation and its
//! vectorized kernels (DESIGN.md §15).
//!
//! Two independent obligations are checked here:
//!
//! 1. **Round trip**: `Relation → ColumnarRelation → Relation` is the
//!    identity — including row order, NULLs (validity masks), and
//!    dictionary edge cases (empty strings, duplicates, more than 255
//!    distinct values).
//! 2. **Execution equivalence**: any plan over a columnar scan produces
//!    results identical to the same plan over the row relation, across
//!    batch sizes 1 / 7 / 256 — whether the plan compiles to the
//!    vectorized bitmap/fused kernels or falls back to row operators.
//!
//! The row executor is itself differentially tested against a naive
//! reference in `executor_differential.rs`, so agreement with it is
//! agreement with the spec.

use braid_relational::{
    tuple, AggFunc, Aggregate, CmpOp, ColumnarRelation, ExecConfig, Expr, PhysicalPlan, Relation,
    Schema, Tuple, Value,
};
use proptest::prelude::*;
use std::sync::Arc;

// ---------- generators ----------

/// Values drawn from a pool small enough that comparisons hit, wide
/// enough to exercise every column representation: typed ints, floats
/// and bools, dictionary strings (empty string included), NULLs, and —
/// via per-row type mixing — the Mixed fallback.
fn any_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0..5i64).prop_map(Value::Int),
        (0..5i64).prop_map(Value::Int),
        (0..4u8).prop_map(|i| if i == 0 {
            Value::str("")
        } else {
            Value::str(format!("c{i}"))
        }),
        prop_oneof![Just(0.5f64), Just(1.5), Just(2.5)].prop_map(Value::Float),
        (0..2u8).prop_map(|b| Value::Bool(b == 1)),
        Just(Value::Null),
    ]
}

/// A relation of up to 24 three-column rows over `any_value()`.
fn rel_3col() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((any_value(), any_value(), any_value()), 0..24).prop_map(|rows| {
        let mut r = Relation::new(Schema::positional("t", 3));
        for (a, b, c) in rows {
            r.insert(Tuple::new(vec![a, b, c])).unwrap();
        }
        r
    })
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// A vectorizable predicate: comparisons of columns against constants
/// (or other columns), combined with And / Or / Not — exactly the
/// subset `exec::vectorizable_pred` admits to the bitmap kernel.
fn pred_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0..3usize, cmp_op(), any_value()).prop_map(|(i, op, v)| Expr::Cmp(
            op,
            Box::new(Expr::Col(i)),
            Box::new(Expr::Const(v))
        )),
        (0..3usize, cmp_op(), 0..3usize).prop_map(|(i, op, j)| Expr::Cmp(
            op,
            Box::new(Expr::Col(i)),
            Box::new(Expr::Col(j))
        )),
    ]
}

fn vec_pred() -> impl Strategy<Value = Expr> {
    prop_oneof![
        pred_leaf(),
        pred_leaf(),
        proptest::collection::vec(pred_leaf(), 1..3).prop_map(Expr::And),
        proptest::collection::vec(pred_leaf(), 1..3).prop_map(Expr::Or),
        pred_leaf().prop_map(|e| Expr::Not(Box::new(e))),
    ]
}

// ---------- plumbing ----------

fn row_plan(rel: &Relation) -> PhysicalPlan {
    PhysicalPlan::scan(Arc::new(rel.clone()))
}

fn col_plan(rel: &Relation) -> PhysicalPlan {
    PhysicalPlan::scan_columnar(Arc::new(ColumnarRelation::from_relation(rel)))
}

/// Materialized rows in produced order (row order is part of the
/// contract for order-preserving plans).
fn rows_of(plan: &PhysicalPlan, batch_size: usize) -> Vec<Tuple> {
    let (rel, _) = plan
        .materialize_with(ExecConfig::with_batch_size(batch_size))
        .unwrap();
    rel.to_vec()
}

/// Materialized rows, sorted — for operators (aggregate, join, dedup)
/// whose output order is not part of the contract.
fn sorted_rows_of(plan: &PhysicalPlan, batch_size: usize) -> Vec<Tuple> {
    let mut v = rows_of(plan, batch_size);
    v.sort();
    v
}

/// Execution outcome with errors kept comparable: fallible plans (e.g.
/// SUM over a string) must fail on both representations with the same
/// *kind* of error. The offending value named in the message is not
/// compared — which row gets blamed first depends on accumulation
/// order, and that is not contractual (the row aggregate's dedup pass
/// visits tuples in hash order).
fn outcome_of(plan: &PhysicalPlan, batch_size: usize) -> Result<Vec<Tuple>, String> {
    plan.materialize_with(ExecConfig::with_batch_size(batch_size))
        .map(|(rel, _)| {
            let mut v = rel.to_vec();
            v.sort();
            v
        })
        .map_err(|e| {
            let msg = e.to_string();
            msg.split_once(" value ")
                .map_or(msg.clone(), |(kind, _)| kind.to_string())
        })
}

const BATCH_SIZES: [usize; 3] = [1, 7, 256];

// ---------- satellite 1: round-trip identity ----------

proptest! {
    #[test]
    fn round_trip_is_the_identity_including_order(rel in rel_3col()) {
        let col = ColumnarRelation::from_relation(&rel);
        prop_assert_eq!(col.len(), rel.len());
        let back = col.to_relation().unwrap();
        prop_assert_eq!(&back, &rel);
        // Not just the same set: the same row order, slot for slot.
        prop_assert_eq!(back.to_vec(), rel.to_vec());
    }

    #[test]
    fn double_conversion_is_stable(rel in rel_3col()) {
        // Columnar → row → columnar → row reaches a fixed point at the
        // first row relation (conversions introduce no drift).
        let once = ColumnarRelation::from_relation(&rel).to_relation().unwrap();
        let twice = ColumnarRelation::from_relation(&once).to_relation().unwrap();
        prop_assert_eq!(once.to_vec(), twice.to_vec());
    }

    // ---------- satellite 2: execution equivalence ----------

    #[test]
    fn vectorized_filter_matches_row_filter(rel in rel_3col(), pred in vec_pred()) {
        let row = row_plan(&rel).filter(pred.clone());
        let col = col_plan(&rel).filter(pred);
        for bs in BATCH_SIZES {
            // Filters preserve scan order on both paths, so the rows
            // must agree in order, not merely as sets.
            prop_assert_eq!(rows_of(&col, bs), rows_of(&row, bs), "batch size {}", bs);
        }
    }

    #[test]
    fn strict_filter_agrees_with_row_strict_filter(rel in rel_3col(), pred in vec_pred()) {
        // Vectorizable predicates cannot error, so strict and
        // errors-as-unknown coincide — on both representations.
        let row = row_plan(&rel).filter_strict(pred.clone());
        let col = col_plan(&rel).filter_strict(pred);
        for bs in BATCH_SIZES {
            prop_assert_eq!(rows_of(&col, bs), rows_of(&row, bs), "batch size {}", bs);
        }
    }

    #[test]
    fn filter_chain_and_projection_match(rel in rel_3col(), p1 in vec_pred(), p2 in vec_pred()) {
        let cols = [2usize, 0];
        let row = row_plan(&rel).filter(p1.clone()).filter(p2.clone()).project(&cols).unwrap();
        let col = col_plan(&rel).filter(p1).filter(p2).project(&cols).unwrap();
        for bs in BATCH_SIZES {
            prop_assert_eq!(rows_of(&col, bs), rows_of(&row, bs), "batch size {}", bs);
        }
    }

    #[test]
    fn fused_filter_aggregate_matches_row_aggregate(
        rel in rel_3col(),
        pred in vec_pred(),
        func in prop_oneof![
            Just(AggFunc::Count),
            Just(AggFunc::Sum),
            Just(AggFunc::Min),
            Just(AggFunc::Max),
        ],
    ) {
        // Aggregate output order is not contractual (compare sorted),
        // and SUM over a non-numeric value errors — in which case both
        // representations must fail with the identical error.
        let aggs = [Aggregate { func, col: 1 }];
        let row = row_plan(&rel).filter(pred.clone()).aggregate(&[0], &aggs).unwrap();
        let col = col_plan(&rel).filter(pred).aggregate(&[0], &aggs).unwrap();
        for bs in BATCH_SIZES {
            prop_assert_eq!(outcome_of(&col, bs), outcome_of(&row, bs), "batch size {}", bs);
        }
    }

    #[test]
    fn non_vectorizable_filter_falls_back_and_agrees(rel in rel_3col(), k in 0..5i64) {
        // Arithmetic in the predicate: the chain is not vectorizable, so
        // the columnar plan runs ColScanOp + the row filter operator —
        // and must still agree with the all-row plan.
        let pred = Expr::Cmp(
            CmpOp::Ge,
            Box::new(Expr::Add(Box::new(Expr::Col(0)), Box::new(Expr::Const(Value::Int(0))))),
            Box::new(Expr::Const(Value::Int(k))),
        );
        let row = row_plan(&rel).filter(pred.clone());
        let col = col_plan(&rel).filter(pred);
        for bs in BATCH_SIZES {
            prop_assert_eq!(rows_of(&col, bs), rows_of(&row, bs), "batch size {}", bs);
        }
    }

    #[test]
    fn columnar_scan_feeds_row_join_and_dedup(l in rel_3col(), r in rel_3col()) {
        // Joins have no vectorized kernel: the columnar side must stream
        // row batches into the ordinary hash join unchanged.
        let on = [(1usize, 0usize)];
        let row = row_plan(&l).hash_join(row_plan(&r), &on).project(&[0, 4]).unwrap().dedup();
        let col = col_plan(&l).hash_join(col_plan(&r), &on).project(&[0, 4]).unwrap().dedup();
        for bs in BATCH_SIZES {
            prop_assert_eq!(sorted_rows_of(&col, bs), sorted_rows_of(&row, bs), "batch size {}", bs);
        }
    }

    #[test]
    fn composed_columnar_plan_ignores_batch_size(rel in rel_3col(), pred in vec_pred()) {
        let plan = col_plan(&rel)
            .filter(pred)
            .project(&[1, 2])
            .unwrap()
            .dedup();
        let reference = rows_of(&plan, 256);
        for bs in [1, 2, 3, 7] {
            prop_assert_eq!(&rows_of(&plan, bs), &reference, "batch size {}", bs);
        }
    }
}

// ---------- fixed dictionary / NULL edge cases, through real plans ----------

#[test]
fn dictionary_with_duplicates_and_empty_strings_filters_identically() {
    let mut rel = Relation::new(Schema::positional("s", 2));
    rel.insert(tuple!["", 0]).unwrap();
    rel.insert(tuple!["", 1]).unwrap();
    for i in 0..60i64 {
        rel.insert(tuple![format!("k{}", i % 4), i]).unwrap();
    }
    for pred in [
        Expr::col_cmp(0, CmpOp::Eq, Value::str("")),
        Expr::col_cmp(0, CmpOp::Ne, Value::str("k2")),
        Expr::col_cmp(0, CmpOp::Gt, Value::str("k1")),
    ] {
        let row = row_plan(&rel).filter(pred.clone());
        let col = col_plan(&rel).filter(pred);
        for bs in BATCH_SIZES {
            assert_eq!(rows_of(&col, bs), rows_of(&row, bs));
        }
    }
}

#[test]
fn dictionary_beyond_255_distinct_values_filters_identically() {
    // Forces > u8::MAX codes: the per-dictionary-entry comparison table
    // must hold and index correctly past 255.
    let mut rel = Relation::new(Schema::positional("s", 2));
    for i in 0..300i64 {
        rel.insert(tuple![format!("v{i:03}"), i]).unwrap();
    }
    let colrel = ColumnarRelation::from_relation(&rel);
    assert_eq!(colrel.col(0).dict_len(), Some(300));
    let pred = Expr::col_cmp(0, CmpOp::Ge, Value::str("v280"));
    let row = row_plan(&rel).filter(pred.clone());
    let col = PhysicalPlan::scan_columnar(Arc::new(colrel)).filter(pred);
    for bs in BATCH_SIZES {
        let got = rows_of(&col, bs);
        assert_eq!(got, rows_of(&row, bs));
        assert_eq!(got.len(), 20);
    }
}

#[test]
fn null_rows_survive_filters_and_aggregates_identically() {
    let rel = Relation::from_tuples(
        Schema::positional("n", 3),
        vec![
            tuple![1, 10, "a"],
            Tuple::new(vec![Value::Null, Value::Int(20), Value::str("b")]),
            Tuple::new(vec![Value::Int(1), Value::Null, Value::Null]),
            Tuple::new(vec![Value::Null, Value::Null, Value::Null]),
            tuple![2, 30, "a"],
        ],
    )
    .unwrap();
    let pred = Expr::col_cmp(0, CmpOp::Le, 1);
    let aggs = [Aggregate {
        func: AggFunc::Count,
        col: 1,
    }];
    let row = row_plan(&rel)
        .filter(pred.clone())
        .aggregate(&[2], &aggs)
        .unwrap();
    let col = col_plan(&rel).filter(pred).aggregate(&[2], &aggs).unwrap();
    for bs in BATCH_SIZES {
        assert_eq!(sorted_rows_of(&col, bs), sorted_rows_of(&row, bs));
    }
}

#[test]
fn fused_kernel_actually_engages_on_vectorizable_chains() {
    // Not just equal answers: the fused σ→γ plan must do measurably less
    // operator work than the row pipeline (it emits only its own output
    // batches), proving the vectorized path is the one executing.
    let mut rel = Relation::new(Schema::positional("w", 2));
    for i in 0..2000i64 {
        rel.insert(tuple![i % 10, i]).unwrap();
    }
    let pred = Expr::col_cmp(1, CmpOp::Ge, 1000);
    let aggs = [Aggregate {
        func: AggFunc::Sum,
        col: 1,
    }];
    let row = row_plan(&rel)
        .filter(pred.clone())
        .aggregate(&[0], &aggs)
        .unwrap();
    let col = col_plan(&rel).filter(pred).aggregate(&[0], &aggs).unwrap();
    let (row_rel, row_stats) = row
        .materialize_with(ExecConfig::with_batch_size(64))
        .unwrap();
    let (col_rel, col_stats) = col
        .materialize_with(ExecConfig::with_batch_size(64))
        .unwrap();
    assert_eq!(row_rel, col_rel);
    assert!(
        col_stats.batches < row_stats.batches,
        "fused kernel must produce fewer operator batches ({} vs {})",
        col_stats.batches,
        row_stats.batches
    );
}
