//! Wire-level observability: cross-process EXPLAIN, the live
//! STATS/ADMIN protocol, and the flight recorder, exercised over real
//! TCP against [`BraidServer`].
//!
//! The contract under test is the tentpole of the wire-observability
//! PR: `BraidClient::solve_explained` yields ONE span forest — client
//! spans and grafted server spans (`origin=server`) on one normalized
//! timeline — that passes `verify_span_forest`, with every server span
//! nested inside the client's request span; and the timing-free
//! `ExplainSummary` is identical whether the query ran in-process or
//! across the wire.

use braid::{
    BraidClient, BraidConfig, BraidServer, BraidServerConfig, BraidSystem, Strategy, TraceKind,
};
use braid_ie::KnowledgeBase;
use braid_relational::{tuple, Relation, Schema};
use braid_remote::Catalog;
use braid_trace::{verify_span_forest, TraceEvent};
use std::time::Duration;

fn system() -> BraidSystem {
    let mut db = Catalog::new();
    db.install(
        Relation::from_tuples(
            Schema::of_strs("parent", &["p", "c"]),
            vec![
                tuple!["ann", "bob"],
                tuple!["bob", "cal"],
                tuple!["cal", "dee"],
                tuple!["dee", "eli"],
            ],
        )
        .unwrap(),
    );
    let mut kb = KnowledgeBase::new();
    kb.declare_base("parent", 2);
    kb.add_program(
        "gp(X, Y) :- parent(X, Z), parent(Z, Y).\n\
         anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).",
    )
    .unwrap();
    BraidSystem::new(db, kb, BraidConfig::default())
}

fn server() -> BraidServer {
    BraidServer::start(
        system(),
        BraidServerConfig {
            workers: 2,
            ..BraidServerConfig::default()
        },
    )
    .unwrap()
}

/// The client's request span: the one Query-kind span the client tracer
/// records around the whole wire round trip.
fn request_span(events: &[TraceEvent]) -> &TraceEvent {
    events
        .iter()
        .filter(|e| e.kind == TraceKind::Query && e.field("origin").is_none() && e.dur_us > 0)
        .max_by_key(|e| e.dur_us)
        .expect("client request span present")
}

#[test]
fn remote_explain_summary_matches_in_process() {
    let in_process = {
        let mut local = system();
        local
            .solve_explained("?- anc(ann, Y).", Strategy::ConjunctionCompiled)
            .unwrap()
    };
    let server = server();
    let mut client = BraidClient::connect(server.local_addr()).unwrap();
    let remote = client
        .solve_explained("?- anc(ann, Y).", Strategy::ConjunctionCompiled)
        .unwrap();
    assert_eq!(remote.solutions, in_process.solutions);
    assert_eq!(remote.completeness, in_process.completeness);
    // The timing-free projection is transport-agnostic: plans, matched
    // views, generalizations and verdicts all survive the wire intact.
    assert_eq!(remote.report.summary(), in_process.report.summary());
    client.goodbye();
    server.shutdown();
}

#[test]
fn grafted_forest_verifies_and_nests_under_the_request_span() {
    let server = server();
    let mut client = BraidClient::connect(server.local_addr()).unwrap();
    let explained = client
        .solve_explained("?- anc(ann, Y).", Strategy::ConjunctionCompiled)
        .unwrap();
    let events = &explained.report.events;
    let spans = verify_span_forest(events).expect("grafted forest is well-formed");
    assert!(spans >= 2, "client request span plus server spans: {spans}");
    let server_events: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.field("origin") == Some("server"))
        .collect();
    assert!(!server_events.is_empty(), "server spans were shipped");
    assert!(
        server_events.iter().any(|e| e.kind == TraceKind::IeSolve),
        "the server-side solve span came across"
    );
    let req = request_span(events);
    let (rs, re) = (req.start_us, req.start_us + req.dur_us);
    for e in &server_events {
        assert!(
            e.start_us >= rs && e.start_us + e.dur_us <= re,
            "server span {:?} [{}, {}] escapes request span [{rs}, {re}]",
            e.label,
            e.start_us,
            e.start_us + e.dur_us,
        );
    }
    // Server roots hang off the request span, so the graft is one tree,
    // not two forests side by side.
    assert!(
        server_events.iter().any(|e| e.parent == Some(req.id)),
        "at least one server root re-parented under the request span"
    );
    // The process boundary stays visible when rendered.
    let rendered = explained.report.render_trace();
    assert!(rendered.contains("server: "), "{rendered}");
    assert!(rendered.contains("remote ?- anc(ann, Y)."), "{rendered}");
    client.goodbye();
    server.shutdown();
}

#[test]
fn solve_explained_interleaves_with_plain_queries() {
    let server = server();
    let mut client = BraidClient::connect(server.local_addr()).unwrap();
    let plain = client
        .solve_checked("?- gp(ann, Y).", Strategy::FullyCompiled)
        .unwrap();
    assert_eq!(plain.solutions.len(), 1);
    let explained = client
        .solve_explained("?- gp(ann, Y).", Strategy::FullyCompiled)
        .unwrap();
    assert_eq!(explained.solutions, plain.solutions);
    verify_span_forest(&explained.report.events).unwrap();
    // Tracing is strictly per-query: the following plain query must not
    // receive a stray TRACE frame (read_answer would reject it).
    let plain = client
        .solve_checked("?- gp(ann, Y).", Strategy::FullyCompiled)
        .unwrap();
    assert_eq!(plain.solutions.len(), 1);
    client.goodbye();
    server.shutdown();
}

#[test]
fn four_concurrent_clients_each_get_their_own_forest() {
    let server = server();
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = BraidClient::connect(addr).unwrap();
                    let explained = client
                        .solve_explained("?- anc(ann, Y).", Strategy::ConjunctionCompiled)
                        .unwrap();
                    assert_eq!(explained.solutions.len(), 4);
                    let events = &explained.report.events;
                    verify_span_forest(events).expect("per-client forest is well-formed");
                    let req = request_span(events);
                    let (rs, re) = (req.start_us, req.start_us + req.dur_us);
                    for e in events
                        .iter()
                        .filter(|e| e.field("origin") == Some("server"))
                    {
                        assert!(
                            e.start_us >= rs && e.start_us + e.dur_us <= re,
                            "span {:?} escapes its request window",
                            e.label
                        );
                    }
                    client.goodbye();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    server.shutdown();
}

#[test]
fn stats_report_ships_counters_rates_and_histograms() {
    let server = server();
    let mut client = BraidClient::connect(server.local_addr()).unwrap();
    for _ in 0..3 {
        client
            .solve_checked("?- anc(ann, Y).", Strategy::ConjunctionCompiled)
            .unwrap();
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.queries, 3);
    assert_eq!(stats.connections_accepted, 1);
    assert_eq!(stats.active_connections, 1);
    assert!(stats.uptime_us > 0);
    assert!(stats.pool_spawned >= 1);
    // The rate window is anchored at the server-start sample (queries =
    // 0), so three answered queries make qps strictly positive.
    assert!(stats.qps_milli > 0, "{stats:?}");
    let counter = |name: &str| {
        stats
            .counters
            .iter()
            .find(|(k, _)| k == name)
            .unwrap_or_else(|| panic!("flattened counter {name} present"))
            .1
    };
    // `cms.queries` counts the CMS's internal query stream (subqueries
    // included), so it dominates the three wire-level queries — and the
    // hit rate is quoted against it.
    assert!(counter("cms.queries") >= 3);
    assert_eq!(
        stats.hit_rate_milli,
        counter("cms.full_cache_answers") * 1000 / counter("cms.queries").max(1)
    );
    assert!(stats.counters.iter().any(|(k, _)| k == "remote.requests"));
    let (_, latency) = stats
        .hists
        .iter()
        .find(|(k, _)| k == "cms.query_latency_us")
        .expect("latency histogram present");
    assert!(
        latency.iter().sum::<u64>() >= 3,
        "at least one latency sample per wire query"
    );
    // The wire snapshot matches the in-process accessor's layout.
    let local = server.stats_report();
    assert_eq!(local.connections_accepted, 1);
    assert_eq!(local.counters.len(), stats.counters.len());
    assert_eq!(local.hists.len(), stats.hists.len());
    client.goodbye();
    server.shutdown();
}

#[test]
fn uptime_and_connections_accepted_are_monotone() {
    let server = server();
    let first = server.stats();
    let c1 = BraidClient::connect(server.local_addr()).unwrap();
    let c2 = BraidClient::connect(server.local_addr()).unwrap();
    c1.goodbye();
    c2.goodbye();
    // Closing connections drains `active` but never rolls back the
    // lifetime accept counter.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().active != 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let last = server.stats();
    assert_eq!(last.connections_accepted, 2);
    assert_eq!(last.active, 0);
    assert!(last.uptime >= first.uptime);
    assert!(last.uptime > Duration::ZERO);
    server.shutdown();
}

#[test]
fn flight_recorder_drains_over_admin() {
    let server = server();
    let mut client = BraidClient::connect(server.local_addr()).unwrap();
    let log = client.flight_recorder().unwrap();
    assert!(log.contains("\"event\":\"server.start\""), "{log}");
    assert!(log.contains("\"event\":\"conn.accept\""), "{log}");
    for line in log.lines() {
        assert!(
            line.starts_with("{\"t_us\":") && line.ends_with('}'),
            "not a JSON line: {line}"
        );
    }
    // Draining consumes: a failed query is the only new event afterwards.
    let err = client
        .solve_checked("?- anc(ann", Strategy::Interpreted)
        .unwrap_err();
    assert!(err.to_string().contains("parse") || !err.to_string().is_empty());
    let log = client.flight_recorder().unwrap();
    assert!(!log.contains("server.start"), "recorder was not drained");
    assert!(log.contains("\"event\":\"query.error\""), "{log}");
    client.goodbye();
    server.shutdown();
}
