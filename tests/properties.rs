//! Property-based tests over the core invariants.
//!
//! The central soundness property of semantic caching: *no configuration
//! of the CMS may change query answers* — caching, subsumption,
//! generalization, prefetching and lazy evaluation are pure
//! optimizations. Plus algebraic invariants of the substrate.

use braid::{BraidConfig, BraidSystem, CmsConfig, KnowledgeBase, Strategy as BraidStrategy};
use braid_caql::parse_rule;
use braid_relational::{ops, tuple, Expr, Generator, Relation, Schema, Tuple, Value};
use braid_subsume::{subsumes, Component, ViewDef};
use proptest::prelude::*;
use std::sync::Arc;

// ---------- generators ----------

fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0..6i64).prop_map(Value::Int),
        (0..4u8).prop_map(|i| Value::str(format!("c{i}"))),
    ]
}

fn relation_2col(name: &'static str) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((small_value(), small_value()), 0..12).prop_map(move |rows| {
        let mut r = Relation::new(Schema::of_strs(name, &["x", "y"]));
        for (a, b) in rows {
            r.insert(Tuple::new(vec![a, b])).unwrap();
        }
        r
    })
}

// ---------- relational algebra invariants ----------

proptest! {
    #[test]
    fn lazy_equals_eager_select_project(rel in relation_2col("b")) {
        let pred = Expr::col_cmp(0, braid_relational::CmpOp::Ge, 2);
        let eager = ops::project(&ops::select(&rel, &pred).unwrap(), &[1]).unwrap();
        let lazy = Generator::scan(Arc::new(rel))
            .filter(pred)
            .project(&[1])
            .unwrap()
            .materialize()
            .unwrap();
        prop_assert_eq!(eager, lazy);
    }

    #[test]
    fn lazy_equals_eager_join(l in relation_2col("l"), r in relation_2col("r")) {
        let eager = ops::equijoin(&l, &r, &[(1, 0)]).unwrap();
        let lazy = Generator::scan(Arc::new(l))
            .hash_join(Generator::scan(Arc::new(r)), &[(1, 0)])
            .materialize()
            .unwrap();
        prop_assert_eq!(eager, lazy);
    }

    #[test]
    fn union_is_commutative_and_idempotent(
        a in relation_2col("a"),
        b in relation_2col("b"),
    ) {
        let ab = ops::union(&a, &b).unwrap();
        let ba = ops::union(&b, &a).unwrap();
        prop_assert_eq!(&ab, &ba);
        let aa = ops::union(&a, &a).unwrap();
        prop_assert_eq!(&aa, &a);
    }

    #[test]
    fn difference_and_intersection_partition(
        a in relation_2col("a"),
        b in relation_2col("b"),
    ) {
        let diff = ops::difference(&a, &b).unwrap();
        let inter = ops::intersect(&a, &b).unwrap();
        prop_assert_eq!(diff.len() + inter.len(), a.len());
    }

    #[test]
    fn index_probe_equals_scan(rel in relation_2col("b"), key in small_value()) {
        let scan: Vec<usize> = rel.lookup(&[0], std::slice::from_ref(&key));
        let mut indexed = rel.clone();
        indexed.build_index(&[0]).unwrap();
        let probe = indexed.lookup(&[0], std::slice::from_ref(&key));
        prop_assert_eq!(scan, probe);
    }
}

// ---------- subsumption soundness ----------

proptest! {
    /// Whenever `subsumes` claims a derivation, evaluating the derivation
    /// against the element's extension equals evaluating the query
    /// directly against the base data.
    #[test]
    fn subsumption_derivations_are_sound(
        base in relation_2col("b"),
        c1 in small_value(),
    ) {
        // Element: e(X, Y) :- b(X, Y)  (materialized = base itself).
        let e = ViewDef::new(parse_rule("e(X, Y) :- b(X, Y).").unwrap()).unwrap();
        // Query: q(X) :- b(X, c1).
        let q = parse_rule(&format!(
            "q(X) :- b(X, {}).",
            render_const(&c1)
        )).unwrap();
        let comp = Component::whole(&q);
        let d = subsumes(&e, &comp, &["X"]).expect("general element subsumes instance");
        // Derivation evaluation: filter + project over the extension.
        let derived = ops::project(
            &ops::select(&base, &d.filter_expr()).unwrap(),
            &d.projection(&["X"]).unwrap(),
        ).unwrap();
        // Direct evaluation.
        let direct = ops::project(
            &ops::select(&base, &Expr::col_cmp(1, braid_relational::CmpOp::Eq, c1)).unwrap(),
            &[0],
        ).unwrap();
        prop_assert_eq!(derived, direct);
    }
}

fn render_const(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        other => other.to_string(),
    }
}

// ---------- end-to-end: configurations never change answers ----------

fn tiny_system(parent_rows: &[(u8, u8)], cms: CmsConfig) -> BraidSystem {
    let mut db = braid::Catalog::new();
    let mut rel = Relation::new(Schema::of_strs("parent", &["p", "c"]));
    for (a, b) in parent_rows {
        rel.insert(tuple![format!("p{a}"), format!("p{b}")])
            .unwrap();
    }
    db.install(rel);
    let mut kb = KnowledgeBase::new();
    kb.declare_base("parent", 2);
    kb.add_program(
        "gp(X, Y) :- parent(X, Z), parent(Z, Y).\n\
         sib(X, Y) :- parent(P, X), parent(P, Y), X != Y.\n\
         vip(p1).\n\
         vip(p3).\n\
         vipkid(X, Y) :- vip(X), parent(X, Y).",
    )
    .unwrap();
    BraidSystem::new(db, kb, BraidConfig::with_cms(cms))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn cms_configuration_never_changes_answers(
        rows in proptest::collection::vec((0..8u8, 0..8u8), 1..14),
        queries in proptest::collection::vec((0..3u8, 0..8u8), 1..6),
    ) {
        let mut reference: Option<Vec<Vec<Tuple>>> = None;
        for cms in [
            CmsConfig::loose_coupling(),
            CmsConfig::exact_match(),
            CmsConfig::single_relation(),
            CmsConfig::braid(),
        ] {
            let mut sys = tiny_system(&rows, cms);
            let mut answers = Vec::new();
            for (view, c) in &queries {
                let v = match *view % 3 {
                    0 => "gp",
                    1 => "sib",
                    _ => "vipkid",
                };
                let q = format!("?- {v}(p{c}, Y).");
                answers.push(sys.solve_all(&q, BraidStrategy::ConjunctionCompiled).unwrap());
            }
            match &reference {
                None => reference = Some(answers),
                Some(r) => prop_assert_eq!(r, &answers),
            }
        }
    }

    #[test]
    fn strategies_agree_on_answers(
        rows in proptest::collection::vec((0..8u8, 0..8u8), 1..12),
        c in 0..8u8,
    ) {
        let query = format!("?- gp(p{c}, Y).");
        let mut reference: Option<Vec<Tuple>> = None;
        for strat in [
            BraidStrategy::Interpreted,
            BraidStrategy::ConjunctionCompiled,
            BraidStrategy::FullyCompiled,
        ] {
            let mut sys = tiny_system(&rows, CmsConfig::braid());
            let answers = sys.solve_all(&query, strat).unwrap();
            match &reference {
                None => reference = Some(answers),
                Some(r) => prop_assert_eq!(r, &answers),
            }
        }
    }
}

// ---------- parser round-trips ----------

proptest! {
    #[test]
    fn rule_display_parses_back(
        arity in 1..3usize,
        n_atoms in 1..4usize,
        seed in 0..1000u32,
    ) {
        // Construct a simple random rule deterministically from the seed.
        let mut body = Vec::new();
        for i in 0..n_atoms {
            let mut args = Vec::new();
            for j in 0..arity {
                if (seed as usize + i * 3 + j).is_multiple_of(3) {
                    args.push(format!("c{}", (seed as usize + j) % 5));
                } else {
                    args.push(format!("V{}", (i + j) % 4));
                }
            }
            body.push(format!("b{i}({})", args.join(", ")));
        }
        // Ensure safety: head vars drawn from body.
        let src = format!("h(V0) :- {}, V0 = V0.", body.join(", "));
        if let Ok(rule) = parse_rule(&src) {
            let reparsed = parse_rule(&format!("{rule}.")).unwrap();
            prop_assert_eq!(rule, reparsed);
        }
    }
}
