//! Concurrent multi-session tests: N inference sessions over ONE shared
//! CMS cache (the paper's "set of sessions", §3).
//!
//! Invariants:
//!
//! 1. Differential: every session of a concurrent run gets answers
//!    byte-identical to a serial single-session run of the same queries —
//!    whatever the interleaving, whatever another session did to the
//!    cache.
//! 2. Single-flight: sessions missing on the same subquery at the same
//!    instant share one remote fetch (`dedup_hits > 0`).
//! 3. Pinning: an open lazy stream keeps its cache element resident
//!    through a concurrent eviction storm, and releases the pin on drop.
//! 4. Structural: shared-cache accounting survives concurrent hammering
//!    (exact byte accounting, globally unique ids, pinned never evicted).

use std::sync::{Arc, Barrier};

use braid::{BraidConfig, BraidSystem, CmsConfig, Strategy, Tuple};
use braid_caql::parse_rule;
use braid_cms::cache::ElementBuilder;
use braid_cms::{Cms, CmsMetrics, SharedCache};
use braid_relational::{tuple, Relation, Schema};
use braid_remote::{Catalog, LatencyModel, RemoteDbms};
use braid_subsume::ViewDef;
use braid_workload::{genealogy, suppliers, Scenario};
use proptest::prelude::*;

const STRATEGY: Strategy = Strategy::ConjunctionCompiled;

fn shared_config(shards: usize) -> BraidConfig {
    BraidConfig::with_cms(CmsConfig::braid().with_shards(shards))
}

/// Serial ground truth: a fresh single-session system answers the
/// workload alone.
fn serial_answers(sc: &Scenario, config: &BraidConfig) -> Vec<Vec<Tuple>> {
    let mut sys = sc.system(config.clone());
    sc.queries
        .iter()
        .map(|q| sys.solve_all(q, STRATEGY).expect("serial run solves"))
        .collect()
}

/// Invariant 1 on a scenario: `sessions` concurrent sessions, each
/// issuing the whole workload starting at a different offset (so the
/// cache is warmed in a different order from each session's point of
/// view), all match the serial run query-for-query.
fn assert_concurrent_matches_serial(sc: &Scenario, sessions: usize, shards: usize) {
    let config = shared_config(shards);
    let truth = serial_answers(sc, &config);
    let system = sc.system(config);
    let n_queries = sc.queries.len();

    let per_session: Vec<Vec<Vec<Tuple>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..sessions)
            .map(|si| {
                let mut sess = system.session();
                let queries = &sc.queries;
                s.spawn(move || {
                    // Rotated issue order; answers are indexed back to
                    // the canonical query positions for comparison.
                    let mut got = vec![Vec::new(); n_queries];
                    for off in 0..n_queries {
                        let qi = (si + off) % n_queries;
                        got[qi] = sess
                            .solve_all(&queries[qi], STRATEGY)
                            .expect("concurrent session solves");
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (si, got) in per_session.iter().enumerate() {
        for (qi, answers) in got.iter().enumerate() {
            assert_eq!(
                answers, &truth[qi],
                "session {si}, query `{}` diverged from the serial run",
                sc.queries[qi]
            );
        }
    }
}

#[test]
fn genealogy_concurrent_sessions_match_serial() {
    let sc = genealogy::scenario(3, 2, 42, 10);
    assert_concurrent_matches_serial(&sc, 4, 4);
}

#[test]
fn suppliers_concurrent_sessions_match_serial() {
    let sc = suppliers::scenario(24, 8, 7, 10);
    assert_concurrent_matches_serial(&sc, 3, 2);
}

#[test]
fn one_shard_concurrent_sessions_match_serial() {
    // shards = 1 is the default configuration: every session contends on
    // one lock, the differential guarantee must hold regardless.
    let sc = genealogy::scenario(3, 2, 9, 8);
    assert_concurrent_matches_serial(&sc, 4, 1);
}

// Schedule-diversity stress now lives in the simulation harness: `just
// soak` drives seeded scenarios (SIM_SEED_START/SIM_ROUNDS env vars)
// through both the deterministic step scheduler and the threaded runner
// of braid-sim, oracle-checking every answer against the reference
// model — strictly stronger than the fixed 25-round loop that used to
// sit here behind #[ignore]. A cheap fixed-seed smoke stays in
// scripts/ci.sh.

// ---------------------------------------------------------------------
// Invariant 2: single-flight deduplication across sessions.
// ---------------------------------------------------------------------

fn lookup_catalog(rows: usize, keys: usize) -> Catalog {
    let mut r = Relation::new(Schema::of_strs("fam", &["k", "v"]));
    for i in 0..rows {
        r.insert(tuple![format!("k{}", i % keys), format!("v{i}")])
            .unwrap();
    }
    let mut c = Catalog::new();
    c.install(r);
    c
}

#[test]
fn simultaneous_equivalent_misses_share_one_fetch() {
    // Overlap is timing-dependent: a barrier releases all sessions into
    // the same cold miss and a real (sleeping) latency model keeps the
    // leader's fetch in flight long enough for the others to join it.
    // One overlapping round suffices, so a few attempts make the test
    // robust without making it slow.
    const SESSIONS: usize = 4;
    const ATTEMPTS: usize = 10;
    for attempt in 0..ATTEMPTS {
        let mut kb = braid::KnowledgeBase::new();
        kb.declare_base("fam", 2);
        kb.add_program("look(K, V) :- fam(K, V).").unwrap();
        let mut config = BraidConfig::with_cms(
            CmsConfig::braid()
                .with_prefetching(false)
                .with_shards(SESSIONS),
        );
        config.latency = LatencyModel::Real { unit_micros: 10 };
        let system = BraidSystem::new(lookup_catalog(400, 8), kb, config);

        let barrier = Arc::new(Barrier::new(SESSIONS));
        std::thread::scope(|s| {
            for _ in 0..SESSIONS {
                let mut sess = system.session();
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    let answers = sess
                        .solve_all("?- look(k3, V).", STRATEGY)
                        .expect("healthy link");
                    assert_eq!(answers.len(), 400 / 8);
                });
            }
        });

        let m = system.metrics();
        if m.cms.dedup_hits > 0 {
            assert!(m.cms.flight_fetches >= 1, "a dedup hit implies a led fetch");
            // The whole point: fewer remote fetches than sessions.
            assert!(
                m.remote.requests < SESSIONS as u64,
                "dedup should save remote requests, got {}",
                m.remote.requests
            );
            return;
        }
        eprintln!("attempt {attempt}: no overlap this round, retrying");
    }
    panic!("no single-flight dedup in {ATTEMPTS} barrier-synchronized attempts");
}

// ---------------------------------------------------------------------
// Invariant 3: session pins vs concurrent eviction pressure.
// ---------------------------------------------------------------------

#[test]
fn open_lazy_stream_survives_concurrent_eviction_storm() {
    // A cache barely big enough for the warmed element plus one more:
    // every storm insert forces an eviction decision.
    let remote = RemoteDbms::with_defaults(lookup_catalog(64, 8));
    let config = CmsConfig::braid()
        .with_prefetching(false)
        .with_lazy(true)
        .with_capacity(16 * 1024)
        .with_shards(1);
    let mut cms = Cms::new(remote, config);

    // Warm the whole relation, then reopen it lazily: a single all-cache
    // part with an all-variable head takes the generator path and holds a
    // session pin on the element.
    cms.query(parse_rule("w(K, V) :- fam(K, V).").unwrap())
        .expect("warm run")
        .drain();
    let stream = cms
        .query(parse_rule("l(K, V) :- fam(K, V).").unwrap())
        .expect("lazy reopen");

    let cache = Arc::clone(cms.shared_cache());
    let pinned: Vec<_> = cache.ids_matching(|e| e.pin_count > 0);
    assert_eq!(pinned.len(), 1, "the open stream holds exactly one pin");
    let pinned_id = pinned[0];

    // Storm: concurrent sessions hammer the cache with distinct
    // selections, each insert competing for the tiny capacity.
    std::thread::scope(|s| {
        for t in 0..4 {
            let mut sess = cms.fork_session();
            s.spawn(move || {
                for i in 0..8 {
                    let rule = format!("s{t}_{i}(V) :- fam(k{}, V).", (t * 8 + i) % 8);
                    sess.query(parse_rule(&rule).unwrap())
                        .expect("storm query")
                        .drain();
                }
            });
        }
    });

    assert!(
        cache.with_element(pinned_id, |_| ()).is_some(),
        "pinned element evicted while its stream was open"
    );

    // The stream still delivers the full, correct extension.
    let got = stream.drain();
    assert_eq!(got.len(), 64, "lazy stream complete after the storm");

    // Draining consumed the stream; its pin guard is gone.
    assert_eq!(
        cache.with_element(pinned_id, |e| e.pin_count),
        Some(0),
        "pin released once the stream is dropped"
    );
}

// ---------------------------------------------------------------------
// Invariant 4: shared-cache structural invariants under concurrency.
// ---------------------------------------------------------------------

fn view(def_src: &str) -> ViewDef {
    ViewDef::new(parse_rule(def_src).unwrap()).unwrap()
}

fn payload(rows: usize) -> Relation {
    let mut r = Relation::new(Schema::of_strs("p", &["x", "y"]));
    for i in 0..rows {
        r.insert(tuple![format!("x{i}"), format!("y{i}")]).unwrap();
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn shared_cache_invariants_hold_under_concurrent_hammering(
        threads in 1usize..5,
        shards in 1usize..5,
        seed in 0u64..1000,
        capacity_kb in 4usize..64,
    ) {
        let cache = Arc::new(SharedCache::new(
            capacity_kb * 1024,
            shards,
            Arc::new(CmsMetrics::new()),
        ));

        std::thread::scope(|s| {
            for t in 0..threads {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..24 {
                        // Deterministic per-thread op mix, decorrelated
                        // across proptest cases by the seed.
                        let x = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add((t * 100 + i) as u64);
                        let rel = format!("b{}", x % 7);
                        let d = view(&format!("v{t}_{i}(X, Y) :- {rel}(X, Y)."));
                        let rows = 1 + (x % 13) as usize;
                        let (id, _) = cache.insert_with_aliases(
                            d,
                            ElementBuilder::Materialized(payload(rows)),
                            &[],
                        );
                        let Some(id) = id else { continue };
                        match x % 3 {
                            0 => cache.touch(id),
                            1 => {
                                // Pin, apply pressure, verify survival.
                                if let Some(guard) = cache.try_pin(id) {
                                    let d2 = view(&format!(
                                        "pp{t}_{i}(X, Y) :- {rel}(X, Y)."
                                    ));
                                    cache.insert_with_aliases(
                                        d2,
                                        ElementBuilder::Materialized(payload(16)),
                                        &[],
                                    );
                                    assert!(
                                        cache.with_element(guard.id(), |_| ()).is_some(),
                                        "pinned element evicted"
                                    );
                                }
                            }
                            _ => {}
                        }
                    }
                });
            }
        });

        // Ids are globally unique across shards.
        let rows = cache.model();
        let mut ids: Vec<_> = rows.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        let before_dedup = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before_dedup, "duplicate element ids");

        // Byte accounting is exact: a full reconciliation changes
        // nothing and evicts nothing.
        let used = cache.used_bytes();
        prop_assert_eq!(cache.reconcile_all(), 0, "reconcile evicted elements");
        prop_assert_eq!(cache.used_bytes(), used, "byte accounting drifted");

        // No session pins are left behind.
        prop_assert!(
            cache.leaked_session_pins().is_empty(),
            "leaked session pins"
        );
    }
}
