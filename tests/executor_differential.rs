//! Differential tests for the batched physical-plan executor.
//!
//! Every operator is checked against a *naive* reference evaluator
//! written here in plain set-at-a-time Rust (nested loops over
//! `BTreeSet<Tuple>`), deliberately sharing no code with the executor —
//! the eager `ops` functions are thin wrappers over the same executor
//! now, so comparing against them would prove nothing. Random relations
//! and randomly composed plans must produce identical result *sets*
//! regardless of batch size.

use braid_relational::{
    tuple, AggFunc, Aggregate, CmpOp, ExecConfig, Expr, PhysicalPlan, Relation, Schema, Tuple,
    Value,
};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

// ---------- generators ----------

fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0..5i64).prop_map(Value::Int),
        (0..3u8).prop_map(|i| Value::str(format!("c{i}"))),
    ]
}

fn rel_2col(name: &'static str) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((small_value(), small_value()), 0..12).prop_map(move |rows| {
        let mut r = Relation::new(Schema::positional(name, 2));
        for (a, b) in rows {
            r.insert(Tuple::new(vec![a, b])).unwrap();
        }
        r
    })
}

fn plan_of(r: &Relation) -> PhysicalPlan {
    PhysicalPlan::rows(r.schema().clone(), r.to_vec())
}

fn result_set(plan: &PhysicalPlan, batch_size: usize) -> BTreeSet<Tuple> {
    let (rel, _) = plan
        .materialize_with(ExecConfig::with_batch_size(batch_size))
        .unwrap();
    rel.to_vec().into_iter().collect()
}

fn rel_set(r: &Relation) -> BTreeSet<Tuple> {
    r.to_vec().into_iter().collect()
}

// ---------- naive reference operators ----------

fn naive_filter(input: &BTreeSet<Tuple>, pred: &Expr) -> BTreeSet<Tuple> {
    input
        .iter()
        .filter(|t| pred.eval_bool(t).unwrap_or(false))
        .cloned()
        .collect()
}

fn naive_project(input: &BTreeSet<Tuple>, cols: &[usize]) -> BTreeSet<Tuple> {
    input.iter().map(|t| t.project(cols)).collect()
}

fn naive_join(l: &BTreeSet<Tuple>, r: &BTreeSet<Tuple>, on: &[(usize, usize)]) -> BTreeSet<Tuple> {
    let mut out = BTreeSet::new();
    for a in l {
        for b in r {
            if on.iter().all(|&(i, j)| a.values()[i] == b.values()[j]) {
                out.insert(a.concat(b));
            }
        }
    }
    out
}

fn naive_semi(
    l: &BTreeSet<Tuple>,
    r: &BTreeSet<Tuple>,
    on: &[(usize, usize)],
    anti: bool,
) -> BTreeSet<Tuple> {
    l.iter()
        .filter(|a| {
            let hit = r
                .iter()
                .any(|b| on.iter().all(|&(i, j)| a.values()[i] == b.values()[j]));
            hit != anti
        })
        .cloned()
        .collect()
}

fn naive_union(parts: &[BTreeSet<Tuple>]) -> BTreeSet<Tuple> {
    parts.iter().flatten().cloned().collect()
}

fn naive_aggregate(
    input: &BTreeSet<Tuple>,
    group_by: &[usize],
    func: AggFunc,
    col: usize,
) -> BTreeSet<Tuple> {
    let mut groups: BTreeMap<Vec<Value>, Vec<Value>> = BTreeMap::new();
    for t in input {
        groups
            .entry(group_by.iter().map(|&i| t.values()[i].clone()).collect())
            .or_default()
            .push(t.values()[col].clone());
    }
    let mut out = BTreeSet::new();
    for (key, members) in groups {
        let agg = match func {
            AggFunc::Count => Value::Int(members.len() as i64),
            AggFunc::Min => members.iter().min().unwrap().clone(),
            AggFunc::Max => members.iter().max().unwrap().clone(),
            AggFunc::Sum | AggFunc::Avg => {
                let sum: i64 = members
                    .iter()
                    .map(|v| match v {
                        Value::Int(i) => *i,
                        _ => 0,
                    })
                    .sum();
                if func == AggFunc::Sum {
                    Value::Int(sum)
                } else {
                    Value::Float(sum as f64 / members.len() as f64)
                }
            }
        };
        let mut row = key;
        row.push(agg);
        out.insert(Tuple::new(row));
    }
    out
}

// ---------- per-operator differential properties ----------

proptest! {
    #[test]
    fn filter_matches_reference(rel in rel_2col("b"), k in 0..5i64) {
        let pred = Expr::col_cmp(0, CmpOp::Ge, k);
        let plan = plan_of(&rel).filter(pred.clone());
        let expect = naive_filter(&rel_set(&rel), &pred);
        prop_assert_eq!(&result_set(&plan, 1), &expect);
        prop_assert_eq!(&result_set(&plan, 256), &expect);
    }

    #[test]
    fn strict_filter_matches_reference_on_total_predicates(
        rel in rel_2col("b"),
        k in 0..5i64,
    ) {
        // On predicates that never error, strict ≡ errors-as-unknown.
        let pred = Expr::col_cmp(1, CmpOp::Lt, k);
        let plan = plan_of(&rel).filter_strict(pred.clone());
        prop_assert_eq!(result_set(&plan, 3), naive_filter(&rel_set(&rel), &pred));
    }

    #[test]
    fn fused_filter_project_matches_reference(rel in rel_2col("b"), k in 0..5i64) {
        let pred = Expr::col_cmp(0, CmpOp::Ne, k);
        let plan = plan_of(&rel).filter(pred.clone()).project(&[1]).unwrap();
        let expect = naive_project(&naive_filter(&rel_set(&rel), &pred), &[1]);
        prop_assert_eq!(&result_set(&plan, 1), &expect);
        prop_assert_eq!(&result_set(&plan, 256), &expect);
    }

    #[test]
    fn project_matches_reference(rel in rel_2col("b")) {
        let plan = plan_of(&rel).project(&[1, 0, 1]).unwrap();
        prop_assert_eq!(
            result_set(&plan, 4),
            naive_project(&rel_set(&rel), &[1, 0, 1])
        );
    }

    #[test]
    fn hash_join_matches_reference_both_build_sides(
        l in rel_2col("l"),
        r in rel_2col("r"),
    ) {
        let on = [(1usize, 0usize)];
        let expect = naive_join(&rel_set(&l), &rel_set(&r), &on);
        // Build left (probe streams right)...
        let build_l = plan_of(&l).hash_join(plan_of(&r), &on);
        // ... and build right (probe streams left); output order must be
        // l-then-r either way.
        let build_r = plan_of(&l).hash_join_build_right(plan_of(&r), &on);
        prop_assert_eq!(&result_set(&build_l, 1), &expect);
        prop_assert_eq!(&result_set(&build_l, 256), &expect);
        prop_assert_eq!(&result_set(&build_r, 1), &expect);
        prop_assert_eq!(&result_set(&build_r, 256), &expect);
    }

    #[test]
    fn cross_product_matches_reference(l in rel_2col("l"), r in rel_2col("r")) {
        let plan = plan_of(&l).hash_join(plan_of(&r), &[]);
        prop_assert_eq!(
            result_set(&plan, 5),
            naive_join(&rel_set(&l), &rel_set(&r), &[])
        );
    }

    #[test]
    fn semijoin_and_antijoin_match_reference(l in rel_2col("l"), r in rel_2col("r")) {
        let on = [(0usize, 1usize)];
        let semi = plan_of(&l).semijoin(plan_of(&r), &on);
        let anti = plan_of(&l).antijoin(plan_of(&r), &on);
        let lset = rel_set(&l);
        let rset = rel_set(&r);
        prop_assert_eq!(&result_set(&semi, 2), &naive_semi(&lset, &rset, &on, false));
        prop_assert_eq!(&result_set(&anti, 2), &naive_semi(&lset, &rset, &on, true));
        // Semi and anti partition the left side.
        prop_assert_eq!(
            result_set(&semi, 2).len() + result_set(&anti, 2).len(),
            lset.len()
        );
    }

    #[test]
    fn nary_union_matches_reference(
        a in rel_2col("a"),
        b in rel_2col("b"),
        c in rel_2col("c"),
    ) {
        let plan =
            PhysicalPlan::union(vec![plan_of(&a), plan_of(&b), plan_of(&c)]).unwrap();
        let expect = naive_union(&[rel_set(&a), rel_set(&b), rel_set(&c)]);
        prop_assert_eq!(&result_set(&plan, 1), &expect);
        prop_assert_eq!(&result_set(&plan, 256), &expect);
    }

    #[test]
    fn dedup_mid_plan_matches_reference(rel in rel_2col("b"), k in 0..5i64) {
        // π then explicit dedup then σ: the dedup must not change the set.
        let pred = Expr::col_cmp(0, CmpOp::Le, k);
        let plan = plan_of(&rel).project(&[0]).unwrap().dedup().filter(pred.clone());
        let expect = naive_filter(&naive_project(&rel_set(&rel), &[0]), &pred);
        prop_assert_eq!(result_set(&plan, 3), expect);
    }

    #[test]
    fn aggregate_matches_reference(
        rel in rel_2col("b"),
        func in prop_oneof![
            Just(AggFunc::Count),
            Just(AggFunc::Min),
            Just(AggFunc::Max),
        ],
    ) {
        let mut rel = rel;
        if rel.is_empty() {
            // min/max are undefined over empty groups; keep the input non-empty.
            rel.insert(tuple![0, 0]).unwrap();
        }
        let plan = plan_of(&rel)
            .aggregate(&[0], &[Aggregate { func, col: 1 }])
            .unwrap();
        prop_assert_eq!(
            result_set(&plan, 2),
            naive_aggregate(&rel_set(&rel), &[0], func, 1)
        );
    }

    #[test]
    fn sum_aggregate_matches_reference_on_ints(
        rows in proptest::collection::vec((0..4i64, 0..6i64), 1..10),
    ) {
        let mut rel = Relation::new(Schema::positional("n", 2));
        for (a, b) in rows {
            rel.insert(tuple![a, b]).unwrap();
        }
        let plan = plan_of(&rel)
            .aggregate(&[0], &[Aggregate { func: AggFunc::Sum, col: 1 }])
            .unwrap();
        prop_assert_eq!(
            result_set(&plan, 3),
            naive_aggregate(&rel_set(&rel), &[0], AggFunc::Sum, 1)
        );
    }

    #[test]
    fn limit_truncates_the_set(rel in rel_2col("b"), n in 0..15usize) {
        let plan = plan_of(&rel).limit(n);
        let got = result_set(&plan, 2);
        prop_assert_eq!(got.len(), n.min(rel.len()));
        prop_assert!(got.is_subset(&rel_set(&rel)));
    }

    // ---------- composed plans: batch size must never matter ----------

    #[test]
    fn composed_plan_ignores_batch_size(
        l in rel_2col("l"),
        r in rel_2col("r"),
        k in 0..5i64,
    ) {
        let plan = plan_of(&l)
            .filter(Expr::col_cmp(0, CmpOp::Ge, k))
            .hash_join_build_right(plan_of(&r), &[(1, 0)])
            .project(&[0, 3])
            .unwrap()
            .dedup();
        let reference = result_set(&plan, 256);
        for bs in [1, 2, 3, 7] {
            prop_assert_eq!(&result_set(&plan, bs), &reference);
        }
    }
}

// ---------- fixed regression: batch size 1 ≡ 256 ----------

#[test]
fn fixed_plan_batch_size_one_equals_256() {
    let mut l = Relation::new(Schema::positional("l", 2));
    let mut r = Relation::new(Schema::positional("r", 2));
    for i in 0..40i64 {
        l.insert(tuple![i % 7, i]).unwrap();
        r.insert(tuple![i, i % 5]).unwrap();
    }
    let plan = plan_of(&l)
        .hash_join(plan_of(&r), &[(1, 0)])
        .project(&[0, 3])
        .unwrap()
        .filter(Expr::col_cmp(1, CmpOp::Ge, 1))
        .dedup();
    let (one, stats_one) = plan
        .materialize_with(ExecConfig::with_batch_size(1))
        .unwrap();
    let (big, stats_big) = plan
        .materialize_with(ExecConfig::with_batch_size(256))
        .unwrap();
    assert_eq!(one, big, "results must be identical across batch sizes");
    assert!(
        stats_one.batches > stats_big.batches,
        "batch size 1 must produce more batches ({} vs {})",
        stats_one.batches,
        stats_big.batches
    );
}
