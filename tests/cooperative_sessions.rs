//! Cooperative multi-session tests: N resumable [`SessionTask`] state
//! machines multiplexed onto a fixed [`WorkerPool`], sharing ONE CMS
//! cache — the pool-backed sibling of `concurrent_sessions.rs`.
//!
//! Invariants:
//!
//! 1. Differential: every session of a pool run gets answers
//!    byte-identical to a serial single-session run of the same queries,
//!    whatever the worker count, step budget, or park/resume schedule.
//! 2. Liveness: no session starves — even a ONE-worker pool with a
//!    step budget of 1 finishes every session of every workload (the
//!    FIFO ready queue guarantees each parked-then-woken session gets
//!    its turn).
//! 3. Conservation: at quiescence every coop park was matched by exactly
//!    one wake (no leaked wakers) and no single-flight entry stays open.

use std::sync::{Arc, Mutex};

use braid::{BraidConfig, CmsConfig, PoolConfig, SessionTask, Strategy, Tuple, WorkerPool};
use braid_workload::{genealogy, suppliers, Scenario};
use proptest::prelude::*;

const STRATEGY: Strategy = Strategy::ConjunctionCompiled;

fn shared_config(shards: usize) -> BraidConfig {
    BraidConfig::with_cms(CmsConfig::braid().with_shards(shards))
}

/// Serial ground truth: a fresh single-session system answers the
/// workload alone.
fn serial_answers(sc: &Scenario, config: &BraidConfig) -> Vec<Vec<Tuple>> {
    let mut sys = sc.system(config.clone());
    sc.queries
        .iter()
        .map(|q| sys.solve_all(q, STRATEGY).expect("serial run solves"))
        .collect()
}

/// Drive `sessions` [`SessionTask`]s over one shared cache, each issuing
/// the whole workload from a rotated offset. Returns per-session answers
/// indexed back to canonical query positions, after asserting the
/// scheduler's conservation invariants.
fn run_coop(
    sc: &Scenario,
    config: BraidConfig,
    sessions: usize,
    workers: usize,
    step_budget: usize,
) -> Vec<Vec<Vec<Tuple>>> {
    let system = sc.system(config);
    let n = sc.queries.len();
    let pool = WorkerPool::with_metrics(
        PoolConfig {
            workers,
            step_budget,
        },
        system.cms().metrics_handle(),
    );

    // One slot per (session, canonical query); `None` = never answered,
    // so a starved or dropped query is distinguishable from an empty
    // answer set.
    type SessionLog = Arc<Mutex<Vec<Option<Vec<Tuple>>>>>;
    let logs: Vec<SessionLog> = (0..sessions)
        .map(|_| Arc::new(Mutex::new(vec![None; n])))
        .collect();

    for (si, slot) in logs.iter().enumerate() {
        let list: Vec<String> = (0..n)
            .map(|off| sc.queries[(si + off) % n].clone())
            .collect();
        let log = Arc::clone(slot);
        pool.spawn(Box::new(SessionTask::new(
            system.session_owned(),
            list,
            STRATEGY,
            move |off, result| {
                let qi = (si + off) % n;
                let a = result.expect("coop session solves");
                log.lock().unwrap()[qi] = Some(a.solutions);
            },
        )));
    }

    pool.join();
    let snap = pool.snapshot();
    pool.shutdown();
    assert_eq!(snap.panicked, 0, "a session task panicked");
    assert_eq!(system.cms().open_flights(), 0, "leaked single-flight entry");
    let m = system.metrics().cms;
    assert_eq!(m.wakes, m.sessions_parked, "leaked or duplicated wakers");

    logs.into_iter()
        .map(|l| {
            let got = Arc::try_unwrap(l)
                .expect("finished task still holds its log")
                .into_inner()
                .unwrap();
            got.into_iter()
                .enumerate()
                .map(|(qi, a)| a.unwrap_or_else(|| panic!("query {qi} never answered")))
                .collect()
        })
        .collect()
}

fn assert_coop_matches_serial(
    sc: &Scenario,
    sessions: usize,
    workers: usize,
    step_budget: usize,
    shards: usize,
) {
    let config = shared_config(shards);
    let truth = serial_answers(sc, &config);
    let per_session = run_coop(sc, config, sessions, workers, step_budget);
    for (si, got) in per_session.iter().enumerate() {
        for (qi, answers) in got.iter().enumerate() {
            assert_eq!(
                answers, &truth[qi],
                "session {si}, query `{}` diverged from the serial run",
                sc.queries[qi]
            );
        }
    }
}

#[test]
fn genealogy_coop_sessions_match_serial() {
    let sc = genealogy::scenario(3, 2, 42, 10);
    assert_coop_matches_serial(&sc, 8, 3, 4, 4);
}

#[test]
fn suppliers_coop_sessions_match_serial() {
    let sc = suppliers::scenario(24, 8, 7, 10);
    assert_coop_matches_serial(&sc, 6, 2, 8, 2);
}

#[test]
fn more_sessions_than_workers_match_serial() {
    // 16 sessions on a single worker: pure cooperative interleaving,
    // every park must round-trip through the ready queue.
    let sc = genealogy::scenario(3, 2, 9, 8);
    assert_coop_matches_serial(&sc, 16, 1, 2, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// Invariant 2: a one-worker pool with the smallest legal step budget
    /// still finishes every session (run_coop panics on any unanswered
    /// query) and still matches the serial run byte-for-byte.
    #[test]
    fn no_session_starves_on_a_one_worker_pool(
        seed in 0u64..200,
        sessions in 2usize..7,
        queries in 3usize..8,
    ) {
        let sc = genealogy::scenario(2, 2, seed, queries);
        assert_coop_matches_serial(&sc, sessions, 1, 1, 2);
    }
}
