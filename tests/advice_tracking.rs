//! Cross-component invariant: the inference engine's *actual* CAQL query
//! sequence must be accepted by the path expression it itself generated.
//!
//! "The closer that abstraction is to the actual output of the IE, the
//! better the CMS will be able to plan query executions and manage the
//! cache" (§4.2.2). For non-recursive problems, the abstraction here is
//! exact: tracking must survive the whole session. Recursive problems
//! dynamically extend the query vocabulary (the static graph holds one
//! instance per recursive occurrence), so tracking may be lost — but
//! answers must stay correct.

use braid::{BraidConfig, BraidSystem, Catalog, KnowledgeBase, Strategy};
use braid_relational::{tuple, Relation, Schema};

fn system(program: &str) -> BraidSystem {
    let mut db = Catalog::new();
    db.install(
        Relation::from_tuples(
            Schema::of_strs("parent", &["p", "c"]),
            vec![
                tuple!["ann", "bob"],
                tuple!["ann", "cal"],
                tuple!["bob", "dee"],
                tuple!["cal", "eli"],
                tuple!["dee", "fay"],
            ],
        )
        .unwrap(),
    );
    db.install(
        Relation::from_tuples(
            Schema::of_strs("male", &["x"]),
            vec![tuple!["bob"], tuple!["dee"]],
        )
        .unwrap(),
    );
    let mut kb = KnowledgeBase::new();
    kb.declare_base("parent", 2);
    kb.declare_base("male", 1);
    kb.add_program(program).unwrap();
    BraidSystem::new(db, kb, BraidConfig::default())
}

#[test]
fn tracker_survives_single_rule_sessions() {
    let mut sys = system("gp(X, Y) :- parent(X, Z), parent(Z, Y).");
    for (q, strat) in [
        ("?- gp(ann, Y).", Strategy::ConjunctionCompiled),
        ("?- gp(X, Y).", Strategy::ConjunctionCompiled),
        ("?- gp(ann, Y).", Strategy::Interpreted),
    ] {
        sys.solve_all(q, strat).unwrap();
        assert!(
            sys.cms().advice_tracking(),
            "tracking lost on {q} under {strat:?}"
        );
    }
}

#[test]
fn tracker_survives_multi_rule_backtracking() {
    // Two alternatives for the same goal: chronological backtracking emits
    // both runs, in rule order — the sequence shape of Example 1.
    let mut sys = system(
        "kin(X, Y) :- parent(X, Y).\n\
         kin(X, Y) :- parent(Y, X).",
    );
    sys.solve_all("?- kin(bob, Y).", Strategy::ConjunctionCompiled)
        .unwrap();
    assert!(sys.cms().advice_tracking());
}

#[test]
fn tracker_survives_guarded_alternatives() {
    // Example 2's shape: IE-internal guards before the base runs.
    let mut sys = system(
        "k3(ann).\n\
         k4(bob).\n\
         pick(X, Y) :- k3(X), parent(X, Y).\n\
         pick(X, Y) :- k4(X), parent(X, Y).",
    );
    let sols = sys
        .solve_all("?- pick(X, Y).", Strategy::ConjunctionCompiled)
        .unwrap();
    assert_eq!(sols.len(), 3); // ann's two children + bob's one
    assert!(sys.cms().advice_tracking());
}

#[test]
fn recursion_loses_tracking_but_stays_correct() {
    let mut sys = system(
        "anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).",
    );
    let sols = sys
        .solve_all("?- anc(ann, Y).", Strategy::ConjunctionCompiled)
        .unwrap();
    assert_eq!(sols.len(), 5);
    // Dynamic recursive expansion mints fresh d-names the static path
    // expression cannot know: tracking is (legitimately) lost...
    assert!(!sys.cms().advice_tracking());
    // ...and the very next session restores it.
    sys.solve_all("?- anc(ann, bob).", Strategy::ConjunctionCompiled)
        .unwrap();
    let mut fresh = system("gp(X, Y) :- parent(X, Z), parent(Z, Y).");
    fresh
        .solve_all("?- gp(ann, Y).", Strategy::Interpreted)
        .unwrap();
    assert!(fresh.cms().advice_tracking());
}

#[test]
fn prefetch_requires_live_tracking() {
    // With the tracker in sync, the multi-rule session prefetches the
    // predicted second alternative; correctness is identical either way.
    let mut with = system(
        "kin(X, Y) :- parent(X, Y).\n\
         kin(X, Y) :- parent(Y, X).",
    );
    let a = with
        .solve_all("?- kin(bob, Y).", Strategy::ConjunctionCompiled)
        .unwrap();
    let mut without = system(
        "kin(X, Y) :- parent(X, Y).\n\
         kin(X, Y) :- parent(Y, X).",
    );
    without.cms_mut().begin_session(braid::Advice::none()); // drop advice: no tracking
    let b = without
        .solve_all("?- kin(bob, Y).", Strategy::ConjunctionCompiled)
        .unwrap();
    assert_eq!(a, b);
}
