//! Chaos suite for the braid server: the PR-6 fault proxy pointed at
//! [`BraidServer`] itself.
//!
//! Every scenario injects a network-level fault between client and
//! server — connection resets, torn frames mid-answer, an outage
//! window, raw protocol garbage, a client vanishing mid-conversation —
//! and asserts the same contract each time: the client gets a *typed*
//! [`BraidError::Server`] (never a panic, never a hang), the server
//! keeps serving well-formed clients, and every connection/pool gauge
//! drains back to zero afterwards.

use braid::{
    BraidClient, BraidConfig, BraidError, BraidServer, BraidServerConfig, BraidSystem, Strategy,
};
use braid_ie::KnowledgeBase;
use braid_net::{write_frame, FaultProxy, ProxyFault, ProxyPlan};
use braid_relational::{tuple, Relation, Schema};
use braid_remote::clientproto::{self, kind, ClientQuery};
use braid_remote::Catalog;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn system() -> BraidSystem {
    let mut db = Catalog::new();
    db.install(
        Relation::from_tuples(
            Schema::of_strs("parent", &["p", "c"]),
            vec![
                tuple!["ann", "bob"],
                tuple!["bob", "cal"],
                tuple!["cal", "dee"],
                tuple!["dee", "eli"],
            ],
        )
        .unwrap(),
    );
    let mut kb = KnowledgeBase::new();
    kb.declare_base("parent", 2);
    kb.add_program(
        "gp(X, Y) :- parent(X, Z), parent(Z, Y).\n\
         anc(X, Y) :- parent(X, Y).\n\
         anc(X, Y) :- parent(X, Z), anc(Z, Y).",
    )
    .unwrap();
    BraidSystem::new(db, kb, BraidConfig::default())
}

fn server() -> BraidServer {
    BraidServer::start(
        system(),
        BraidServerConfig {
            workers: 2,
            ..BraidServerConfig::default()
        },
    )
    .unwrap()
}

/// Poll until every connection task has drained, then assert all
/// server-side gauges are at zero. Called at the end of every scenario:
/// whatever the fault did, the server must come back to quiescence.
fn assert_drained(server: &BraidServer) {
    let start = Instant::now();
    while server.stats().active != 0 && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(2));
    }
    let stats = server.stats();
    assert_eq!(stats.active, 0, "connection tasks stranded: {stats:?}");
    let start = Instant::now();
    loop {
        let snap = server.pool_snapshot();
        if snap.spawned == snap.finished && snap.parked == 0 {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "pool never drained: {snap:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn is_typed_server_error(err: &BraidError) -> bool {
    matches!(err, BraidError::Server(_))
}

#[test]
fn resets_surface_as_typed_errors_and_drain() {
    let server = server();
    // Connections 0 and 2 are reset before any downstream byte; 1 and
    // 3+ pass through untouched.
    let mut proxy = FaultProxy::start(
        server.local_addr(),
        ProxyPlan::seeded(1)
            .with_scheduled(0, ProxyFault::Reset)
            .with_scheduled(2, ProxyFault::Reset),
    )
    .unwrap();

    for conn in 0..4u64 {
        // `connect` performs the clock exchange, so a reset before any
        // downstream byte surfaces right there as an `io::Error`.
        match BraidClient::connect(proxy.addr()) {
            Ok(mut client) => {
                match client.solve_checked("?- anc(ann, Y).", Strategy::ConjunctionCompiled) {
                    Ok(checked) => {
                        assert!(conn == 1 || conn >= 3, "conn {conn} should have been reset");
                        assert_eq!(checked.solutions.len(), 4);
                        client.goodbye();
                    }
                    Err(e) => {
                        assert!(
                            conn == 0 || conn == 2,
                            "conn {conn} failed unexpectedly: {e}"
                        );
                        assert!(is_typed_server_error(&e), "untyped error: {e:?}");
                    }
                }
            }
            Err(e) => {
                assert!(conn == 0 || conn == 2, "conn {conn} refused connect: {e}");
            }
        }
    }
    assert!(proxy.stats().resets >= 2);
    assert_drained(&server);
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn torn_frames_mid_batch_surface_as_typed_errors() {
    let server = server();
    // Truncation budgets that land inside the clock exchange (the
    // CLOCK_INFO reply is 5 header + 16 payload bytes, so 2 and 9 tear
    // `connect` itself) or inside the first BATCH frame of the answer
    // stream (40).
    for after_bytes in [2u64, 9, 40] {
        let mut proxy = FaultProxy::start(
            server.local_addr(),
            ProxyPlan::seeded(7).with_scheduled(0, ProxyFault::Truncate { after_bytes }),
        )
        .unwrap();
        match BraidClient::connect(proxy.addr()) {
            Ok(mut client) => {
                let err = client
                    .solve_checked("?- anc(ann, Y).", Strategy::ConjunctionCompiled)
                    .expect_err("torn answer stream must error");
                assert!(is_typed_server_error(&err), "untyped error: {err:?}");
            }
            // The tear landed inside the clock exchange — still a typed
            // error, just at connect time.
            Err(_) => assert!(after_bytes < 21, "late tear broke connect"),
        }
        // The next connection through the same proxy is healthy: the
        // tear hurt one conversation, not the server.
        let mut client = BraidClient::connect(proxy.addr()).unwrap();
        let ok = client
            .solve_checked("?- gp(ann, Y).", Strategy::ConjunctionCompiled)
            .expect("server still serves after a torn frame");
        assert_eq!(ok.solutions.len(), 1);
        client.goodbye();
        proxy.shutdown();
    }
    assert_drained(&server);
    server.shutdown();
}

#[test]
fn outage_window_refuses_then_recovers() {
    let server = server();
    // Connections 0..3 land in a hard outage window (accepted then
    // closed, as a dead upstream looks from outside); 3+ get through.
    let mut proxy =
        FaultProxy::start(server.local_addr(), ProxyPlan::seeded(3).with_outage(0, 3)).unwrap();

    for _ in 0..3 {
        // A connection inside the window is accepted then closed, which
        // the clock exchange at connect time turns into an `io::Error`.
        BraidClient::connect(proxy.addr())
            .expect_err("connection inside the outage window must fail");
    }
    let mut client = BraidClient::connect(proxy.addr()).unwrap();
    let ok = client
        .solve_checked("?- anc(ann, Y).", Strategy::Interpreted)
        .expect("first connection after the window succeeds");
    assert_eq!(ok.solutions.len(), 4);
    client.goodbye();

    assert_eq!(proxy.stats().refused, 3);
    assert_drained(&server);
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn protocol_garbage_never_wedges_the_server() {
    let server = server();

    // Raw junk bytes: not even a frame header.
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    drop(s);

    // A syntactically valid header whose length exceeds the frame cap —
    // the reader must reject it without allocating or hanging.
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    s.write_all(&[0xFF, 0xFF, 0xFF, 0xFF, kind::QUERY]).unwrap();
    drop(s);

    // A well-formed frame of an unknown kind.
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut s, 0x7F, b"mystery").unwrap();
    drop(s);

    // A QUERY frame whose payload is not a valid query encoding.
    let mut s = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut s, kind::QUERY, &[0x01, 0x02, 0x03]).unwrap();
    drop(s);

    // After all that abuse, a well-formed client still gets answers.
    let mut client = BraidClient::connect(server.local_addr()).unwrap();
    let ok = client
        .solve_checked("?- gp(ann, Y).", Strategy::FullyCompiled)
        .expect("server survives protocol garbage");
    assert_eq!(ok.solutions.len(), 1);
    client.goodbye();

    assert_drained(&server);
    server.shutdown();
}

#[test]
fn client_abandoning_mid_answer_drains() {
    let server = server();
    // Fire a query and vanish without reading the answer: the server's
    // write hits a dead socket and the connection task must finish.
    for _ in 0..4 {
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        let q = ClientQuery::plain(clientproto::strategy::CONJUNCTION_COMPILED, "?- anc(X, Y).");
        write_frame(&mut s, kind::QUERY, &clientproto::encode_query(&q)).unwrap();
        drop(s);
    }
    // The server still serves a patient client afterwards.
    let mut client = BraidClient::connect(server.local_addr()).unwrap();
    let ok = client
        .solve_checked("?- anc(ann, Y).", Strategy::ConjunctionCompiled)
        .expect("server survives abandoned conversations");
    assert_eq!(ok.solutions.len(), 4);
    client.goodbye();

    assert_drained(&server);
    server.shutdown();
}

#[test]
fn randomized_fault_mix_never_hangs_or_panics() {
    let server = server();
    let mut proxy = FaultProxy::start(
        server.local_addr(),
        ProxyPlan::seeded(0xC4A05)
            .with_resets(0.2)
            .with_truncation(0.2, 12),
    )
    .unwrap();
    let addr = proxy.addr();
    std::thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                for i in 0..6 {
                    let Ok(mut client) = BraidClient::connect(addr) else {
                        continue;
                    };
                    match client.solve_checked("?- anc(ann, Y).", Strategy::Interpreted) {
                        Ok(checked) => assert_eq!(checked.solutions.len(), 4, "t{t} i{i}"),
                        Err(e) => assert!(is_typed_server_error(&e), "untyped: {e:?}"),
                    }
                }
            });
        }
    });
    assert_drained(&server);
    proxy.shutdown();
    server.shutdown();
}
