//! Property tests pinning the two directions of the subsumption engine:
//!
//! * **Completeness on constructed instances** — any query built by
//!   *instantiating* a cached view's body (constants for variables,
//!   variable merges) must be recognized as subsumed: the paper's whole
//!   reuse story rests on instance queries hitting general cached views
//!   (§5.3.1's `d1/d2/d3` are exactly such instances).
//! * **Round-trips of the advice notation** — display∘parse is the
//!   identity on the path-expression language (the IE and CMS exchange
//!   this text, §3).

use braid_advice::{parse_path_expr, PathExpr, PatternArg, QueryPattern, RepBound, Repetition};
use braid_caql::{parse_rule, Atom, ConjunctiveQuery, Literal, Subst, Term};
use braid_subsume::{subsumes, Component, ViewDef};
use proptest::prelude::*;

// ---------- subsumption completeness ----------

/// A random conjunctive body over predicates p0..p2 with variables V0..V3.
fn body_strategy() -> impl Strategy<Value = Vec<Atom>> {
    proptest::collection::vec((0..3u8, proptest::collection::vec(0..4u8, 1..3)), 1..4).prop_map(
        |atoms| {
            atoms
                .into_iter()
                .map(|(p, args)| {
                    Atom::new(
                        format!("p{p}"),
                        args.into_iter()
                            .map(|v| Term::var(format!("V{v}")))
                            .collect(),
                    )
                })
                .collect()
        },
    )
}

/// A random instantiation: each variable independently stays itself, maps
/// to another variable (a merge), or becomes a constant.
fn subst_strategy() -> impl Strategy<Value = Subst> {
    proptest::collection::vec(0..9u8, 4).prop_map(|choices| {
        let mut s = Subst::new();
        for (i, c) in choices.into_iter().enumerate() {
            let v = format!("V{i}");
            match c {
                0..=2 => {} // keep the variable
                3..=5 => s.insert(v, Term::var(format!("W{}", c - 3))),
                _ => s.insert(v, Term::val(format!("c{}", c - 6))),
            }
        }
        s
    })
}

proptest! {
    #[test]
    fn constructed_instances_are_always_subsumed(
        body in body_strategy(),
        inst in subst_strategy(),
    ) {
        // Element: stores every variable (maximal-reuse form the CMS uses
        // when caching results).
        let element = ViewDef::over_conjunction(
            "e",
            body.iter().cloned().map(Literal::Atom).collect(),
        )
        .expect("generated bodies have at least one atom");

        // Query: the same body instantiated.
        let q_body: Vec<Literal> = body
            .iter()
            .map(|a| Literal::Atom(inst.apply_atom(a)))
            .collect();
        let mut head_vars: Vec<Term> = Vec::new();
        for l in &q_body {
            if let Literal::Atom(a) = l {
                for v in a.vars() {
                    if !head_vars.iter().any(|t| t.as_var() == Some(v)) {
                        head_vars.push(Term::var(v));
                    }
                }
            }
        }
        let q = ConjunctiveQuery::new(Atom::new("q", head_vars.clone()), q_body);
        let needed: Vec<&str> = head_vars.iter().filter_map(|t| t.as_var()).collect();

        let d = subsumes(&element, &Component::whole(&q), &needed);
        prop_assert!(
            d.is_some(),
            "instance {q} must be derivable from element {element}"
        );
        // Every needed variable is exposed.
        let d = d.expect("checked above");
        for v in needed {
            prop_assert!(d.var_cols.contains_key(v), "missing {v}");
        }
    }

    /// The reverse direction must *fail* when the element is strictly more
    /// restricted than the query (constants in the element where the query
    /// has variables).
    #[test]
    fn restricted_elements_never_subsume_general_queries(
        pred in 0..3u8,
        pos in 0..2usize,
    ) {
        let e = ViewDef::new(
            parse_rule(&format!(
                "e(X) :- p{pred}({}).",
                if pos == 0 { "c9, X" } else { "X, c9" }
            ))
            .unwrap(),
        )
        .unwrap();
        let q = parse_rule(&format!("q(A, B) :- p{pred}(A, B).")).unwrap();
        prop_assert!(subsumes(&e, &Component::whole(&q), &["A", "B"]).is_none());
    }
}

// ---------- advice notation round-trips ----------

fn pattern_strategy() -> impl Strategy<Value = QueryPattern> {
    (0..6u8, proptest::collection::vec((0..3u8, 0..4u8), 0..3)).prop_map(|(d, args)| {
        QueryPattern::new(
            format!("d{d}"),
            args.into_iter()
                .map(|(kind, v)| match kind {
                    0 => PatternArg::Free(format!("V{v}")),
                    1 => PatternArg::Bound(format!("V{v}")),
                    _ => PatternArg::Const(braid_caql::Value::str(format!("c{v}"))),
                })
                .collect(),
        )
    })
}

fn path_expr_strategy() -> impl Strategy<Value = PathExpr> {
    let leaf = pattern_strategy().prop_map(PathExpr::Pattern);
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (
                proptest::collection::vec(inner.clone(), 1..3),
                0..2u64,
                prop_oneof![
                    (1..4u64).prop_map(RepBound::Count),
                    (0..3u8).prop_map(|v| RepBound::Card(format!("V{v}"))),
                    Just(RepBound::Unbounded),
                ],
            )
                .prop_map(|(items, lo, hi)| PathExpr::Seq {
                    items,
                    rep: Repetition {
                        lo: RepBound::Count(lo),
                        hi,
                    },
                }),
            (
                proptest::collection::vec(inner, 1..3),
                proptest::option::of(1..3usize),
            )
                .prop_map(|(items, select)| PathExpr::Alt { items, select }),
        ]
    })
}

proptest! {
    #[test]
    fn path_expression_display_parse_round_trip(e in path_expr_strategy()) {
        let printed = e.to_string();
        let reparsed = parse_path_expr(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to reparse: {err}"));
        prop_assert_eq!(
            reparsed.to_string(),
            printed,
            "display∘parse must be the identity"
        );
    }

    #[test]
    fn rule_display_parse_round_trip(body in body_strategy()) {
        let vd = ViewDef::over_conjunction(
            "e",
            body.into_iter().map(Literal::Atom).collect(),
        )
        .unwrap();
        let printed = format!("{}.", vd.query());
        let reparsed = parse_rule(&printed).unwrap();
        prop_assert_eq!(reparsed, vd.query().clone());
    }
}
