//! Property tests pinning the two directions of the subsumption engine:
//!
//! * **Completeness on constructed instances** — any query built by
//!   *instantiating* a cached view's body (constants for variables,
//!   variable merges) must be recognized as subsumed: the paper's whole
//!   reuse story rests on instance queries hitting general cached views
//!   (§5.3.1's `d1/d2/d3` are exactly such instances).
//! * **Round-trips of the advice notation** — display∘parse is the
//!   identity on the path-expression language (the IE and CMS exchange
//!   this text, §3).

use braid_advice::{parse_path_expr, PathExpr, PatternArg, QueryPattern, RepBound, Repetition};
use braid_caql::{parse_rule, Atom, ConjunctiveQuery, Literal, Subst, Term};
use braid_subsume::{subsumes, Component, ViewDef};
use proptest::prelude::*;

// ---------- subsumption completeness ----------

/// A random conjunctive body over predicates p0..p2 with variables V0..V3.
fn body_strategy() -> impl Strategy<Value = Vec<Atom>> {
    proptest::collection::vec((0..3u8, proptest::collection::vec(0..4u8, 1..3)), 1..4).prop_map(
        |atoms| {
            atoms
                .into_iter()
                .map(|(p, args)| {
                    Atom::new(
                        format!("p{p}"),
                        args.into_iter()
                            .map(|v| Term::var(format!("V{v}")))
                            .collect(),
                    )
                })
                .collect()
        },
    )
}

/// A random instantiation: each variable independently stays itself, maps
/// to another variable (a merge), or becomes a constant.
fn subst_strategy() -> impl Strategy<Value = Subst> {
    proptest::collection::vec(0..9u8, 4).prop_map(|choices| {
        let mut s = Subst::new();
        for (i, c) in choices.into_iter().enumerate() {
            let v = format!("V{i}");
            match c {
                0..=2 => {} // keep the variable
                3..=5 => s.insert(v, Term::var(format!("W{}", c - 3))),
                _ => s.insert(v, Term::val(format!("c{}", c - 6))),
            }
        }
        s
    })
}

proptest! {
    #[test]
    fn constructed_instances_are_always_subsumed(
        body in body_strategy(),
        inst in subst_strategy(),
    ) {
        // Element: stores every variable (maximal-reuse form the CMS uses
        // when caching results).
        let element = ViewDef::over_conjunction(
            "e",
            body.iter().cloned().map(Literal::Atom).collect(),
        )
        .expect("generated bodies have at least one atom");

        // Query: the same body instantiated.
        let q_body: Vec<Literal> = body
            .iter()
            .map(|a| Literal::Atom(inst.apply_atom(a)))
            .collect();
        let mut head_vars: Vec<Term> = Vec::new();
        for l in &q_body {
            if let Literal::Atom(a) = l {
                for v in a.vars() {
                    if !head_vars.iter().any(|t| t.as_var() == Some(v)) {
                        head_vars.push(Term::var(v));
                    }
                }
            }
        }
        let q = ConjunctiveQuery::new(Atom::new("q", head_vars.clone()), q_body);
        let needed: Vec<&str> = head_vars.iter().filter_map(|t| t.as_var()).collect();

        let d = subsumes(&element, &Component::whole(&q), &needed);
        prop_assert!(
            d.is_some(),
            "instance {q} must be derivable from element {element}"
        );
        // Every needed variable is exposed.
        let d = d.expect("checked above");
        for v in needed {
            prop_assert!(d.var_cols.contains_key(v), "missing {v}");
        }
    }

    /// The reverse direction must *fail* when the element is strictly more
    /// restricted than the query (constants in the element where the query
    /// has variables).
    #[test]
    fn restricted_elements_never_subsume_general_queries(
        pred in 0..3u8,
        pos in 0..2usize,
    ) {
        let e = ViewDef::new(
            parse_rule(&format!(
                "e(X) :- p{pred}({}).",
                if pos == 0 { "c9, X" } else { "X, c9" }
            ))
            .unwrap(),
        )
        .unwrap();
        let q = parse_rule(&format!("q(A, B) :- p{pred}(A, B).")).unwrap();
        prop_assert!(subsumes(&e, &Component::whole(&q), &["A", "B"]).is_none());
    }
}

// ---------- advice notation round-trips ----------

fn pattern_strategy() -> impl Strategy<Value = QueryPattern> {
    (0..6u8, proptest::collection::vec((0..3u8, 0..4u8), 0..3)).prop_map(|(d, args)| {
        QueryPattern::new(
            format!("d{d}"),
            args.into_iter()
                .map(|(kind, v)| match kind {
                    0 => PatternArg::Free(format!("V{v}")),
                    1 => PatternArg::Bound(format!("V{v}")),
                    _ => PatternArg::Const(braid_caql::Value::str(format!("c{v}"))),
                })
                .collect(),
        )
    })
}

fn path_expr_strategy() -> impl Strategy<Value = PathExpr> {
    let leaf = pattern_strategy().prop_map(PathExpr::Pattern);
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (
                proptest::collection::vec(inner.clone(), 1..3),
                0..2u64,
                prop_oneof![
                    (1..4u64).prop_map(RepBound::Count),
                    (0..3u8).prop_map(|v| RepBound::Card(format!("V{v}"))),
                    Just(RepBound::Unbounded),
                ],
            )
                .prop_map(|(items, lo, hi)| PathExpr::Seq {
                    items,
                    rep: Repetition {
                        lo: RepBound::Count(lo),
                        hi,
                    },
                }),
            (
                proptest::collection::vec(inner, 1..3),
                proptest::option::of(1..3usize),
            )
                .prop_map(|(items, select)| PathExpr::Alt { items, select }),
        ]
    })
}

// ---------- edge cases, checked against the braid-sim reference model ----------
//
// Three corners the instance-subsumption properties above cannot reach:
// views with negated literals (outside the PSJ fragment — they must
// bypass reuse, not corrupt it), comparison ranges that abut without
// overlapping (`Y < s` next to `Y >= s` shares no tuple, so reuse would
// be wrong), and disjunctive remainders (a cached mid-range splits the
// uncovered part of a wider query into two intervals). Each is driven
// through the full system and compared against the naive reference
// evaluator from braid-sim.

use braid::{BraidConfig, BraidSystem, CmsConfig, KnowledgeBase, Strategy as SolveStrategy};
use braid_relational::{Relation, Schema, Tuple, Value};
use braid_remote::Catalog;
use braid_sim::RefModel;

/// `num(x<i>, i)` for i in 0..n — a numeric column for range views.
fn num_catalog(n: i64) -> Catalog {
    let mut r = Relation::new(Schema::of_strs("num", &["x", "y"]));
    for i in 0..n {
        r.insert(Tuple::new(vec![Value::str(format!("x{i}")), Value::int(i)]))
            .expect("arity 2");
    }
    let mut c = Catalog::new();
    c.install(r);
    c
}

fn num_kb(rules: &[String]) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.declare_base("num", 2);
    for r in rules {
        kb.add_program(r).expect("rule parses");
    }
    kb
}

/// A system (subsumption on, the speculative techniques off so metric
/// deltas attribute cleanly) plus the reference model over the same data.
fn system_and_model(n: i64, rules: &[String]) -> (BraidSystem, RefModel) {
    let model = RefModel::new(&num_catalog(n), &num_kb(rules)).expect("model builds");
    let config = BraidConfig::with_cms(
        CmsConfig::braid()
            .with_prefetching(false)
            .with_generalization(false),
    );
    (
        BraidSystem::new(num_catalog(n), num_kb(rules), config),
        model,
    )
}

fn assert_matches_model(sys: &mut BraidSystem, model: &RefModel, query: &str) {
    let got = sys
        .solve_all(query, SolveStrategy::ConjunctionCompiled)
        .expect("system solves");
    let want = model.solve_text(query).expect("model solves");
    assert_eq!(got, want, "`{query}` diverged from the reference model");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Engine level: an element holding `y < split` answers any narrower
    /// upper range, and never the abutting complement `y >= split` —
    /// adjacent intervals share no tuple, so "close" must not count.
    #[test]
    fn abutting_ranges_never_subsume_narrower_ones_always_do(
        split in 1i64..8,
        narrow in 1i64..8,
    ) {
        let element = ViewDef::new(
            parse_rule(&format!("e(X, Y) :- num(X, Y), Y < {split}.")).unwrap(),
        )
        .unwrap();

        let abut = parse_rule(&format!("q(X, Y) :- num(X, Y), Y >= {split}.")).unwrap();
        prop_assert!(
            subsumes(&element, &Component::whole(&abut), &["X", "Y"]).is_none(),
            "abutting range y >= {split} reused an element holding y < {split}"
        );

        let narrower = parse_rule(&format!("q(X, Y) :- num(X, Y), Y < {narrow}.")).unwrap();
        let d = subsumes(&element, &Component::whole(&narrower), &["X", "Y"]);
        if narrow <= split {
            prop_assert!(d.is_some(), "y < {narrow} fits inside y < {split}");
        } else {
            prop_assert!(d.is_none(), "y < {narrow} exceeds the cached y < {split}");
        }
    }

    /// System level: warm `y < split`, then ask the abutting complement
    /// and a contained range. The contained query must be answered from
    /// the cache (no new remote requests); the abutting one must go back
    /// to the remote; and both answers must match the reference model.
    #[test]
    fn abutting_ranges_refetch_and_contained_ranges_reuse(
        split in 2i64..7,
        n in 8i64..14,
    ) {
        let rules = vec![
            format!("lo(X, Y) :- num(X, Y), Y < {split}."),
            format!("sub(X, Y) :- num(X, Y), Y < {}.", split - 1),
            format!("hi(X, Y) :- num(X, Y), Y >= {split}."),
        ];
        let (mut sys, model) = system_and_model(n, &rules);

        assert_matches_model(&mut sys, &model, "?- lo(X, Y).");
        let warmed = sys.metrics().remote.requests;

        assert_matches_model(&mut sys, &model, "?- sub(X, Y).");
        let after_sub = sys.metrics().remote.requests;
        prop_assert_eq!(
            after_sub, warmed,
            "contained range should be a pure cache answer"
        );

        assert_matches_model(&mut sys, &model, "?- hi(X, Y).");
        prop_assert!(
            sys.metrics().remote.requests > after_sub,
            "abutting range cannot be served from the cached interval"
        );
    }

    /// Disjunctive remainder: with a mid-range `lo <= y < hi` cached, a
    /// full scan's uncovered part is `y < lo OR y >= hi` — two disjoint
    /// intervals. Whatever plan the CMS picks (compensate + refetch or
    /// full refetch), the answer must equal the model's.
    #[test]
    fn disjunctive_remainders_stay_correct(
        lo in 1i64..4,
        width in 1i64..4,
        n in 8i64..14,
    ) {
        let hi = lo + width;
        let rules = vec![
            format!("mid(X, Y) :- num(X, Y), Y >= {lo}, Y < {hi}."),
            "all(X, Y) :- num(X, Y).".to_string(),
            format!("rim(X, Y) :- num(X, Y), Y < {lo}."),
        ];
        let (mut sys, model) = system_and_model(n, &rules);

        assert_matches_model(&mut sys, &model, "?- mid(X, Y).");
        // The full scan's remainder around the cached mid-range is
        // disjunctive; then the left rim alone must also stay exact.
        assert_matches_model(&mut sys, &model, "?- all(X, Y).");
        assert_matches_model(&mut sys, &model, "?- rim(X, Y).");
        // And a second pass over everything, now fully warm.
        assert_matches_model(&mut sys, &model, "?- all(X, Y).");
        assert_matches_model(&mut sys, &model, "?- mid(X, Y).");
    }
}

#[test]
fn negated_literal_views_are_rejected_from_reuse_but_answer_correctly() {
    // A body with negation is outside the PSJ fragment: it must never
    // become a reusable view definition ...
    let neg_rule = parse_rule("v(X) :- num(X, Y), not even(Y).").unwrap();
    assert!(
        ViewDef::new(neg_rule).is_err(),
        "negated-literal bodies must not enter the subsumption engine"
    );

    // ... and at system level the negated parts are planned separately
    // (anti-join compensation), so answers must still match the model —
    // cold, warm, and for a subsequent query that could only be answered
    // by (wrongly) reusing the negation-bearing result.
    let mut kb = KnowledgeBase::new();
    kb.declare_base("num", 2);
    kb.declare_base("flag", 1);
    kb.add_program("odd_only(X, Y) :- num(X, Y), not flag(Y).")
        .unwrap();
    kb.add_program("narrow(X, Y) :- num(X, Y), not flag(Y), Y < 4.")
        .unwrap();
    kb.add_program("plain(X, Y) :- num(X, Y), Y < 4.").unwrap();

    let build_catalog = || {
        let mut c = num_catalog(10);
        let mut f = Relation::new(Schema::of_strs("flag", &["y"]));
        for i in (0..10i64).step_by(2) {
            f.insert(Tuple::new(vec![Value::int(i)])).expect("arity 1");
        }
        c.install(f);
        c
    };
    let model = RefModel::new(&build_catalog(), &kb).expect("model builds");
    let config = BraidConfig::with_cms(
        CmsConfig::braid()
            .with_prefetching(false)
            .with_generalization(false),
    );
    let mut sys = BraidSystem::new(build_catalog(), kb, config);

    assert_matches_model(&mut sys, &model, "?- odd_only(X, Y).");
    assert_matches_model(&mut sys, &model, "?- odd_only(X, Y)."); // warm
    assert_matches_model(&mut sys, &model, "?- narrow(X, Y).");
    // `plain` keeps the flagged tuples the negated views filtered out: if
    // either negated result were wrongly reused, these would be missing.
    assert_matches_model(&mut sys, &model, "?- plain(X, Y).");
}

proptest! {
    #[test]
    fn path_expression_display_parse_round_trip(e in path_expr_strategy()) {
        let printed = e.to_string();
        let reparsed = parse_path_expr(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to reparse: {err}"));
        prop_assert_eq!(
            reparsed.to_string(),
            printed,
            "display∘parse must be the identity"
        );
    }

    #[test]
    fn rule_display_parse_round_trip(body in body_strategy()) {
        let vd = ViewDef::over_conjunction(
            "e",
            body.into_iter().map(Literal::Atom).collect(),
        )
        .unwrap();
        let printed = format!("{}.", vd.query());
        let reparsed = parse_rule(&printed).unwrap();
        prop_assert_eq!(reparsed, vd.query().clone());
    }
}
