//! Integration suite for the deterministic simulation harness (DESIGN.md
//! §10): a seeded smoke sweep, the seed-stability guard pinning the
//! generator's output, the bug-injection meta-test proving the oracle +
//! shrinker actually work, and the EXPLAIN differential (answers through
//! `solve_explained` must be byte-identical to `solve_checked`, faults
//! included) with a golden `ExplainSummary` for a degraded-mode solve.

use braid::Strategy;
use braid_sim::{
    build_system, regression_test, run_scenario, shrink, Dataset, FaultSpec, SimBug, SimOptions,
    SimReport, SimScenario, ViolationKind,
};

// ---------------------------------------------------------------------
// Seeded smoke sweep (a disjoint seed range from the ci.sh sweep).
// ---------------------------------------------------------------------

#[test]
fn forty_seeded_scenarios_pass_every_oracle() {
    let opts = SimOptions::default();
    for seed in 1000..1040u64 {
        let sc = SimScenario::generate(seed);
        let report = run_scenario(&sc, &opts).expect("harness runs");
        assert!(
            report.passed(),
            "seed {seed} failed:\n{:#?}\nscenario: {}",
            report.violations,
            sc.to_json()
        );
    }
}

// Representation invariance at sweep scale: the same forty seeds, with
// the columnar representation forced on, must pass the identical
// reference-model oracle — answers may never depend on how the cache
// stores an extension.
#[test]
fn forty_seeded_scenarios_pass_with_columnar_forced_on() {
    let opts = SimOptions::default();
    for seed in 1000..1040u64 {
        let mut sc = SimScenario::generate(seed);
        sc.columnar = true;
        let report = run_scenario(&sc, &opts).expect("harness runs");
        assert!(
            report.passed(),
            "seed {seed} (columnar forced) failed:\n{:#?}\nscenario: {}",
            report.violations,
            sc.to_json()
        );
    }
}

// ---------------------------------------------------------------------
// Seed stability: the scenario generated for a fixed seed is pinned, so
// any change to the generator (new knobs, reordered draws) is a visible,
// deliberate diff — otherwise every "replayable" seed silently changes
// meaning.
// ---------------------------------------------------------------------

#[test]
fn generated_scenario_for_seed_42_is_pinned() {
    let golden = r#"{"seed":42,"dataset":{"kind":"genealogy","generations":3,"branching":2,"seed":3858},"strategy":"interpreted","sessions":[["?- ancestor(X, p14).","?- elder_parent(p10, Y).","?- grandparent(p6, Y).","?- uncle(p1, Y)."],["?- uncle(X, Y).","?- sibling(X, Y)."],["?- grandparent(p13, p10).","?- grandparent(p4, Y).","?- uncle(X, Y)."]],"schedule":[1,1,2,0,0,2,0,2,0],"capacity_bytes":null,"shards":4,"batch_size":7,"lazy":true,"prefetch":true,"generalization":false,"subsumption":false,"columnar":true,"faults":null}"#;
    let sc = SimScenario::generate(42);
    assert_eq!(
        sc.to_json(),
        golden,
        "the scenario for seed 42 changed — if the generator change is \
         deliberate, update this golden and note it in CHANGES.md"
    );
    // And the pinned text replays into the identical scenario.
    assert_eq!(SimScenario::from_json(golden).expect("golden parses"), sc);
}

// ---------------------------------------------------------------------
// Meta-test: a known bug (drop one tuple from every non-empty answer, the
// signature of a skipped remainder subquery) must be *caught* by the
// oracle and *shrunk* to a tiny repro — deterministically.
// ---------------------------------------------------------------------

/// First generated fault-free scenario with enough queries and data-bearing
/// answers to make shrinking meaningful.
fn meaty_quiet_scenario() -> SimScenario {
    let opts = SimOptions::default();
    (0..200u64)
        .map(SimScenario::generate)
        .find(|sc| {
            !sc.faults_active()
                && sc.query_count() >= 6
                && run_scenario(sc, &opts).is_ok_and(|r| r.passed() && r.nonempty_answers > 1)
        })
        .expect("seeds 0..200 contain a meaty fault-free scenario")
}

#[test]
fn injected_bug_is_caught_and_shrunk_to_a_tiny_repro() {
    let sc = meaty_quiet_scenario();
    let opts = SimOptions {
        bug: SimBug::DropLastTuple { every: 1 },
        ..SimOptions::default()
    };

    let buggy: SimReport = run_scenario(&sc, &opts).expect("harness runs");
    assert!(
        buggy
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::AnswerMismatch),
        "oracle must flag the dropped tuple, got {:#?}",
        buggy.violations
    );

    let shrunk = shrink(&sc, &opts);
    assert!(
        shrunk.scenario.query_count() <= 3,
        "shrinker must reduce the repro to <=3 queries, got {} ({})",
        shrunk.scenario.query_count(),
        shrunk.scenario.to_json()
    );
    let final_report = shrunk.report.as_ref().expect("shrunk scenario re-ran");
    assert!(!final_report.passed(), "shrunk scenario must still fail");

    // Fully deterministic: catching and shrinking again is identical.
    let buggy2 = run_scenario(&sc, &opts).expect("harness runs");
    assert_eq!(buggy, buggy2, "bug detection must replay bit-for-bit");
    let shrunk2 = shrink(&sc, &opts);
    assert_eq!(shrunk2.scenario, shrunk.scenario);
    assert_eq!(shrunk2.runs, shrunk.runs);

    // The emitted regression test embeds the shrunk scenario verbatim.
    let src = regression_test("repro_meta", &shrunk.scenario);
    let start = src.find("r##\"").expect("raw string open") + 4;
    let end = src.find("\"##").expect("raw string close");
    assert_eq!(
        SimScenario::from_json(&src[start..end]).expect("embedded JSON parses"),
        shrunk.scenario
    );
}

// ---------------------------------------------------------------------
// EXPLAIN differential: `solve_explained` must return byte-identical
// answers (solutions AND completeness) to `solve_checked` when driving
// two identically-configured systems through the same faulted schedule —
// attaching the explain ring must never change what is answered.
// ---------------------------------------------------------------------

#[test]
fn solve_explained_matches_solve_checked_under_faults() {
    let sc = (0..200u64)
        .map(SimScenario::generate)
        .find(|s| s.faults_active() && s.query_count() >= 4)
        .expect("generator produces faulted scenarios");

    let checked_sys = build_system(&sc);
    let explained_sys = build_system(&sc);
    let mut checked_sessions: Vec<_> = sc.sessions.iter().map(|_| checked_sys.session()).collect();
    let mut explained_sessions: Vec<_> = sc
        .sessions
        .iter()
        .map(|_| explained_sys.session())
        .collect();

    let mut cursors = vec![0usize; sc.sessions.len()];
    for &s in &sc.schedule {
        let query = &sc.sessions[s][cursors[s]];
        cursors[s] += 1;
        let a = checked_sessions[s].solve_checked(query, sc.strategy);
        let b = explained_sessions[s].solve_explained(query, sc.strategy);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.solutions, b.solutions, "`{query}` answers diverged");
                assert_eq!(
                    a.completeness, b.completeness,
                    "`{query}` completeness diverged"
                );
                assert_eq!(a.solutions.len(), b.report.solutions);
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "`{query}` errors diverged");
            }
            (a, b) => panic!(
                "`{query}`: solve_checked -> {:?}, solve_explained -> {:?}",
                a.map(|x| x.completeness),
                b.map(|x| x.completeness)
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Golden EXPLAIN summary for a faulted, degraded-mode scenario: a total
// outage from the first remote request forces the cache-only path, and
// the summary (timing-free by construction) must be pinned exactly.
// ---------------------------------------------------------------------

#[test]
fn golden_explain_summary_for_a_degraded_solve() {
    let sc = SimScenario {
        seed: 7,
        dataset: Dataset::Genealogy {
            generations: 3,
            branching: 2,
            seed: 7,
        },
        strategy: Strategy::ConjunctionCompiled,
        sessions: vec![vec!["?- grandparent(p0, Y).".into()]],
        schedule: vec![0],
        capacity_bytes: None,
        shards: 1,
        batch_size: 32,
        lazy: false,
        prefetch: false,
        generalization: false,
        subsumption: true,
        columnar: false,
        faults: Some(FaultSpec {
            seed: 7,
            transient_permille: 0,
            timeout_permille: 0,
            latency_spike_permille: 0,
            latency_spike_units: 0,
            disconnect_permille: 0,
            disconnect_after_tuples: 0,
            outages: vec![(0, u64::MAX)],
        }),
    };
    let system = build_system(&sc);
    let mut session = system.session();
    let got = session
        .solve_explained("?- grandparent(p0, Y).", sc.strategy)
        .expect("degraded mode answers instead of erroring")
        .report
        .summary();

    // Degraded mode: no remote, empty cache => zero solutions, Partial.
    assert_eq!(got.goal, "?- grandparent(p0, Y).");
    assert_eq!(got.solutions, 0);
    assert!(!got.exact, "an outage from request 0 cannot be Exact");
    assert!(
        !got.degraded.is_empty(),
        "the degraded path must be visible in EXPLAIN, got {got:#?}"
    );
    for plan in &got.plans {
        assert!(
            plan.matched_views.is_empty(),
            "nothing can be matched in a cold cache, got {got:#?}"
        );
    }

    // The run is deterministic, so the whole summary golden-compares.
    let replay_system = build_system(&sc);
    let again = replay_system
        .session()
        .solve_explained("?- grandparent(p0, Y).", sc.strategy)
        .expect("replay answers")
        .report
        .summary();
    assert_eq!(got, again, "ExplainSummary must be stable across replays");
}
