//! Cross-crate integration tests: the full bridge on the three workload
//! scenarios, the advice-driven techniques observable end to end, and the
//! session protocol.

use braid::{BraidConfig, CmsConfig, Strategy};
use braid_workload::baseline::{run_all, CouplingMode};
use braid_workload::{genealogy, suppliers, transit};

#[test]
fn genealogy_all_strategies_agree() {
    let s = genealogy::scenario(4, 2, 99, 0);
    for q in [
        "?- grandparent(p0, Y).",
        "?- sibling(p3, Y).",
        "?- ancestor(p1, Y).",
        "?- cousin(p7, Y).",
    ] {
        let mut answers = Vec::new();
        for strat in [
            Strategy::Interpreted,
            Strategy::ConjunctionCompiled,
            Strategy::FullyCompiled,
        ] {
            let mut sys = s.system(BraidConfig::default());
            answers.push(sys.solve_all(q, strat).unwrap());
        }
        assert_eq!(answers[0], answers[1], "{q}");
        assert_eq!(answers[1], answers[2], "{q}");
    }
}

#[test]
fn ancestor_counts_match_tree_shape() {
    // In a complete binary tree of g generations, the root's descendants
    // are everyone else.
    let s = genealogy::scenario(4, 2, 5, 0);
    let total = genealogy::person_count(4, 2);
    let mut sys = s.system(BraidConfig::default());
    let sols = sys
        .solve_all("?- ancestor(p0, Y).", Strategy::FullyCompiled)
        .unwrap();
    assert_eq!(sols.len(), total - 1);
}

#[test]
fn coupling_modes_ranked_by_remote_requests() {
    let s = genealogy::scenario(4, 2, 7, 24);
    let results = run_all(&s, Strategy::ConjunctionCompiled);
    let req = |m: CouplingMode| {
        results
            .iter()
            .find(|r| r.mode == m)
            .unwrap()
            .metrics
            .remote
            .requests
    };
    // The paper's Figure 1 ordering claim, measurably: richer bridges use
    // the remote DBMS less.
    assert!(req(CouplingMode::Braid) < req(CouplingMode::LooseCoupling));
    assert!(req(CouplingMode::ExactMatch) <= req(CouplingMode::LooseCoupling));
    // Everyone computes the same answers.
    let sols: Vec<usize> = results.iter().map(|r| r.solutions).collect();
    assert!(sols.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn suppliers_closure_and_joins() {
    let s = suppliers::scenario(30, 8, 5, 0);
    let mut sys = s.system(BraidConfig::default());
    let all = sys
        .solve_all("?- component(part0, Y).", Strategy::FullyCompiled)
        .unwrap();
    assert_eq!(all.len(), 29);
    // Mixed rule: join of base + recursive view.
    let sc = sys
        .solve_all("?- supplies_component(sup0, W).", Strategy::FullyCompiled)
        .unwrap();
    // Every answer's W is an ancestor part of something sup0 supplies.
    assert!(sc.iter().all(|t| t.values()[0].to_string() == "sup0"));
}

#[test]
fn transit_reachability_over_cycles() {
    let s = transit::scenario(3, 5, 2, 0);
    let mut sys = s.system(BraidConfig::default());
    let sols = sys
        .solve_all("?- reachable(st_0_0, Y).", Strategy::FullyCompiled)
        .unwrap();
    // All 15 stations reachable (interchanges connect the lines; cycles
    // must not diverge).
    assert_eq!(sols.len(), 15);
}

#[test]
fn advice_techniques_fire_on_genealogy() {
    let s = genealogy::scenario(4, 2, 13, 20);
    let mut sys = s.system(BraidConfig::default());
    for q in &s.queries {
        sys.solve_all(q, Strategy::ConjunctionCompiled).unwrap();
    }
    let m = sys.metrics();
    assert!(m.cms.queries > 0);
    assert!(
        m.cms.full_cache_answers > 0,
        "locality must produce cache hits: {m}"
    );
    assert!(m.remote.requests > 0);
}

#[test]
fn cache_capacity_pressure_evicts_but_stays_correct() {
    let s = genealogy::scenario(4, 2, 31, 30);
    let small = BraidConfig::with_cms(CmsConfig::braid().with_capacity(8 * 1024));
    let mut constrained = s.system(small);
    let mut unconstrained = s.system(BraidConfig::default());
    for q in &s.queries {
        let a = constrained
            .solve_all(q, Strategy::ConjunctionCompiled)
            .unwrap();
        let b = unconstrained
            .solve_all(q, Strategy::ConjunctionCompiled)
            .unwrap();
        assert_eq!(a, b, "{q}");
    }
    assert!(
        constrained.metrics().cms.queries > 0
            && constrained.cms().cache_len() <= unconstrained.cms().cache_len()
    );
}

#[test]
fn lazy_streams_stop_early() {
    let s = genealogy::scenario(5, 2, 3, 0);
    let mut sys = s.system(BraidConfig::default());
    // Prime the cache with the general ancestor extension.
    sys.solve_all("?- grandparent(p0, Y).", Strategy::ConjunctionCompiled)
        .unwrap();
    // Now ask again and take only the first answer: demand-driven.
    let mut stream = sys
        .solve("?- grandparent(p0, Y).", Strategy::ConjunctionCompiled)
        .unwrap();
    let first = stream.next();
    assert!(first.is_some());
    drop(stream);
}

#[test]
fn session_protocol_advice_then_queries() {
    use braid_advice::Advice;
    let s = genealogy::scenario(3, 2, 1, 0);
    let mut sys = s.system(BraidConfig::default());
    // Hand-written session: advice first, then CAQL queries (§3).
    let mut advice = Advice::none();
    advice
        .view_specs
        .push(braid_advice::parse_view_spec("d1(X^, Y^) =def parent(X^, Y^)").unwrap());
    advice.path = Some(braid_advice::parse_path_expr("(d1(X^, Y^))<1,1>").unwrap());
    sys.cms_mut().begin_session(advice);
    let stream = sys
        .cms_mut()
        .query_head(&braid_caql::parse_atom("d1(X, Y)").unwrap())
        .unwrap();
    let rows = stream.drain();
    assert_eq!(rows.len(), s.catalog.relation("parent").unwrap().len());
}
