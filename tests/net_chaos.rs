//! Chaos over real sockets: the genealogy workload driven through a
//! `RemoteTcpServer` behind a fault-injecting network proxy.
//!
//! This is the socket-level twin of `fault_tolerance.rs`: where that
//! suite injects faults inside the simulated engine (`FaultPlan`), this
//! one injects them *on the wire* — connection refusals, resets, torn
//! frames, outage windows — and checks the same invariants:
//!
//! 1. Every query terminates — answer or typed error, never a hang or
//!    a panic.
//! 2. Every `Completeness::Exact` answer is byte-identical to the
//!    fault-free (in-process) run.
//! 3. Degraded answers are honest: `Partial` names its missing
//!    subqueries.
//! 4. Same proxy seed, same workload → same per-query outcomes.
//! 5. Nothing leaks: the client pool's `in_use` gauge and the server's
//!    `active` gauge drain to zero.

use braid::{
    BraidConfig, CheckedSolutions, CmsConfig, Completeness, RemoteDbms, RemoteTcpServer,
    ResilienceConfig, Strategy, TcpClientConfig, TcpServerConfig, TransportConfig, Tuple,
};
use braid_net::{FaultProxy, ProxyPlan};
use braid_workload::genealogy;

const STRATEGY: Strategy = Strategy::ConjunctionCompiled;

fn scenario() -> braid_workload::Scenario {
    genealogy::scenario(3, 2, 42, 12)
}

/// The ground truth: the workload answered entirely in-process.
fn fault_free_answers(sc: &braid_workload::Scenario) -> Vec<Vec<Tuple>> {
    let mut sys = sc.system(BraidConfig::with_cms(
        CmsConfig::braid().with_resilience(ResilienceConfig::none()),
    ));
    sc.queries
        .iter()
        .map(|q| sys.solve_all(q, STRATEGY).expect("fault-free run solves"))
        .collect()
}

/// Spin up the remote engine behind a TCP listener over the scenario's
/// own catalog (same seed ⇒ same data as the local system's handle).
fn serve(sc: &braid_workload::Scenario) -> RemoteTcpServer {
    RemoteTcpServer::serve(
        RemoteDbms::with_defaults(sc.catalog.clone()),
        TcpServerConfig::default(),
    )
    .expect("bind loopback listener")
}

/// Client-pool config tuned for test speed: fast connect verdicts and
/// short backoffs, but an unhurried read deadline (loopback is quick;
/// the deadline only matters for black-hole stalls).
fn client_cfg(addr: &str) -> TcpClientConfig {
    let mut c = TcpClientConfig::to(addr);
    c.connect_timeout_ms = 500;
    c.backoff_base_ms = 5;
    c.backoff_cap_ms = 40;
    c
}

fn tcp_config(addr: &str, resilience: ResilienceConfig) -> BraidConfig {
    BraidConfig::with_cms(
        CmsConfig::braid()
            .with_resilience(resilience)
            .with_transport(TransportConfig::Tcp(client_cfg(addr))),
    )
}

#[test]
fn tcp_transport_matches_in_process_exactly() {
    let sc = scenario();
    let truth = fault_free_answers(&sc);
    let mut server = serve(&sc);

    let mut sys = sc.system(tcp_config(
        &server.addr().to_string(),
        ResilienceConfig::none(),
    ));
    for (q, expected) in sc.queries.iter().zip(&truth) {
        let got = sys
            .solve_checked(q, STRATEGY)
            .unwrap_or_else(|e| panic!("query `{q}` failed over TCP: {e}"));
        assert!(got.is_exact(), "healthy link answers Exact for `{q}`");
        assert_eq!(&got.solutions, expected, "TCP answer for `{q}` diverged");
    }

    let pool = sys.cms().transport_pool_stats().expect("TCP pool present");
    assert_eq!(pool.in_use, 0, "every connection returned to the pool");
    assert!(pool.connects >= 1, "the workload actually used the wire");
    assert_eq!(pool.resumes, 0, "healthy link needs no resumes");

    drop(sys);
    server.shutdown();
    let s = server.stats();
    assert_eq!(s.active, 0, "no connection leaked on the server");
    assert!(s.requests > 0, "the server actually served the workload");
}

#[test]
fn resets_torn_frames_and_an_outage_still_answer_honestly() {
    let sc = scenario();
    let truth = fault_free_answers(&sc);
    let mut server = serve(&sc);

    // The acceptance chaos mix: connection resets, torn frames (truncate
    // replies a few hundred bytes in), and an outage window during which
    // the proxy drops every new connection.
    let plan = ProxyPlan::seeded(7)
        .with_resets(0.15)
        .with_truncation(0.15, 300)
        .with_outage(6, 10);
    let mut proxy = FaultProxy::start(server.addr(), plan).expect("start proxy");

    let resilience = ResilienceConfig::none()
        .with_retries(5)
        .with_backoff(4, 32)
        .with_degraded_mode(true);
    let mut cfg = tcp_config(&proxy.addr().to_string(), resilience);
    // No idle pooling: every request dials a fresh connection, so the
    // proxy's per-connection fault clock advances with the workload and
    // the probabilistic faults actually fire.
    if let TransportConfig::Tcp(ref mut c) = cfg.cms.transport {
        c.pool_size = 0;
    }
    let mut sys = sc.system(cfg);

    let mut exact = 0usize;
    for (qi, q) in sc.queries.iter().enumerate() {
        // Invariant 1: terminates with an answer (degraded mode absorbs
        // transport faults the retries cannot clear).
        let got = sys
            .solve_checked(q, STRATEGY)
            .unwrap_or_else(|e| panic!("query `{q}` failed under chaos: {e}"));
        match got.completeness {
            Completeness::Exact => {
                exact += 1;
                assert_eq!(
                    &got.solutions, &truth[qi],
                    "Exact answer for `{q}` diverged"
                );
            }
            Completeness::Partial {
                ref missing_subqueries,
            } => {
                assert!(
                    !missing_subqueries.is_empty(),
                    "Partial answer for `{q}` names nothing"
                );
            }
        }
    }
    assert!(
        exact > 0,
        "retries and resumes recover some answers to Exact"
    );

    let stats = proxy.stats();
    assert!(
        stats.resets + stats.truncated + stats.refused > 0,
        "chaos actually fired: {stats:?}"
    );

    // Invariant 5: nothing leaks.
    let pool = sys.cms().transport_pool_stats().expect("TCP pool present");
    assert_eq!(pool.in_use, 0, "pool gauge drained to zero");
    drop(sys);
    proxy.shutdown();
    server.shutdown();
    assert_eq!(server.stats().active, 0, "server gauge drained to zero");
}

#[test]
fn socket_chaos_outcomes_are_deterministic() {
    let sc = scenario();
    let run = || -> Vec<CheckedSolutions> {
        let mut server = serve(&sc);
        let plan = ProxyPlan::seeded(23)
            .with_resets(0.20)
            .with_truncation(0.15, 250)
            .with_outage(4, 7);
        let mut proxy = FaultProxy::start(server.addr(), plan).expect("start proxy");
        let resilience = ResilienceConfig::none()
            .with_retries(6)
            .with_backoff(4, 32)
            .with_degraded_mode(true);
        let mut cfg = tcp_config(&proxy.addr().to_string(), resilience);
        // Serial remote parts + a fresh connection per request: the
        // proxy's connection clock — and with it every fault decision —
        // becomes a pure function of query order.
        cfg.cms = cfg.cms.deterministic();
        if let TransportConfig::Tcp(ref mut c) = cfg.cms.transport {
            c.pool_size = 0;
        }
        let mut sys = sc.system(cfg);
        let out = sc
            .queries
            .iter()
            .map(|q| {
                sys.solve_checked(q, STRATEGY)
                    .expect("degraded mode never errors")
            })
            .collect();
        drop(sys);
        proxy.shutdown();
        server.shutdown();
        out
    };
    assert_eq!(
        run(),
        run(),
        "same proxy seed, same workload, same outcomes"
    );
}

#[test]
fn outage_window_degrades_cold_cache_then_recovers() {
    let sc = scenario();
    let truth = fault_free_answers(&sc);
    let mut server = serve(&sc);

    // The first 12 upstream connections are refused; everything after
    // succeeds. Retries burn through the window deterministically.
    let plan = ProxyPlan::seeded(1).with_outage(0, 12);
    let mut proxy = FaultProxy::start(server.addr(), plan).expect("start proxy");

    let resilience = ResilienceConfig::none()
        .with_retries(6)
        .with_backoff(4, 32)
        .with_degraded_mode(true);
    let mut sys = sc.system(tcp_config(&proxy.addr().to_string(), resilience));

    // Cold cache + dead window: the first answers may be Partial, but
    // each one must say so; once the window passes, answers are Exact
    // and byte-identical.
    let mut saw_exact_after_recovery = false;
    for (qi, q) in sc.queries.iter().enumerate() {
        let got = sys
            .solve_checked(q, STRATEGY)
            .unwrap_or_else(|e| panic!("query `{q}` failed during outage: {e}"));
        match got.completeness {
            Completeness::Exact => {
                assert_eq!(
                    &got.solutions, &truth[qi],
                    "Exact answer for `{q}` diverged"
                );
                saw_exact_after_recovery = true;
            }
            Completeness::Partial {
                ref missing_subqueries,
            } => assert!(!missing_subqueries.is_empty()),
        }
    }
    assert!(
        saw_exact_after_recovery,
        "the outage window ends and service recovers"
    );
    assert!(proxy.stats().refused > 0, "the outage actually refused");

    let pool = sys.cms().transport_pool_stats().expect("TCP pool present");
    assert_eq!(pool.in_use, 0);
    // A refused upstream shows up as a dead connection on first use
    // (the handshake itself succeeds against the proxy's listener).
    assert!(pool.discards > 0, "refused connections were discarded");
    drop(sys);
    proxy.shutdown();
    server.shutdown();
    assert_eq!(server.stats().active, 0);
}
