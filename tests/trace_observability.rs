//! Observability invariants across the IE→CMS→remote pipeline.
//!
//! 1. Monotonicity: metrics counters and histogram counts never move
//!    backwards, no matter how many sessions hammer the shared CMS.
//! 2. Well-formedness: the drained span log forms a forest — ids are
//!    unique, every recorded parent id names a recorded span, and a
//!    child's interval nests inside its parent's.
//! 3. Histogram algebra: snapshot merge is associative and commutative,
//!    and `since` inverts `merge` (proptest).
//! 4. EXPLAIN stability: the timing-free [`ExplainSummary`] of a
//!    deterministic workload is identical across independent runs — the
//!    golden-comparison contract the report is designed for.

use braid::{
    BraidConfig, BraidSystem, Catalog, CmsConfig, Histogram, KnowledgeBase, RingSink, Strategy,
    TraceKind,
};
use braid_relational::{tuple, Relation, Schema};
use braid_workload::genealogy;
use proptest::prelude::*;
use std::sync::Arc;

const STRATEGY: Strategy = Strategy::ConjunctionCompiled;

fn genealogy_system(trace: Option<Arc<RingSink>>) -> (BraidSystem, Vec<String>) {
    let sc = genealogy::scenario(3, 2, 42, 12);
    let mut config = BraidConfig::with_cms(CmsConfig::braid());
    if let Some(ring) = trace {
        config = config.with_trace(ring);
    }
    (sc.system(config), sc.queries.clone())
}

// ---------------------------------------------------------------------
// 1. Counter monotonicity under concurrency
// ---------------------------------------------------------------------

#[test]
fn counters_are_monotone_under_concurrent_sessions() {
    let (system, queries) = genealogy_system(None);
    let system = &system;
    let queries = &queries;

    std::thread::scope(|s| {
        // Four sessions drive the workload repeatedly...
        let workers: Vec<_> = (0..4)
            .map(|si| {
                s.spawn(move || {
                    let mut sess = system.session();
                    for round in 0..3 {
                        for (qi, q) in queries.iter().enumerate() {
                            let _ = (round, si, qi);
                            sess.solve_all(q, STRATEGY).expect("session solves");
                        }
                    }
                })
            })
            .collect();

        // ...while an observer snapshots mid-flight. Every successive
        // snapshot must dominate the previous one field by field.
        let mut prev = system.metrics();
        for _ in 0..50 {
            let now = system.metrics();
            assert!(now.cms.queries >= prev.cms.queries);
            assert!(now.cms.full_cache_answers >= prev.cms.full_cache_answers);
            assert!(now.cms.remote_subqueries >= prev.cms.remote_subqueries);
            assert!(now.cms.tuples_to_ie >= prev.cms.tuples_to_ie);
            assert!(now.cms.query_latency_us.count() >= prev.cms.query_latency_us.count());
            assert!(now.remote.requests >= prev.remote.requests);
            assert!(now.remote.rtt_units.count() >= prev.remote.rtt_units.count());
            // `since` of a later snapshot against an earlier one must
            // never underflow — that is the monotonicity contract.
            let delta = now.since(&prev);
            assert!(delta.cms.queries <= now.cms.queries);
            prev = now;
            std::thread::yield_now();
        }
        for w in workers {
            w.join().unwrap();
        }
    });

    let end = system.metrics();
    // 4 sessions × 3 rounds × |queries| top-level solves, each of which
    // issues at least one CMS query (and records its latency).
    assert!(end.cms.queries >= (4 * 3 * queries.len()) as u64);
    assert_eq!(end.cms.query_latency_us.count(), end.cms.queries);
}

// ---------------------------------------------------------------------
// 2. Span tree well-formedness
// ---------------------------------------------------------------------

#[test]
fn span_log_forms_a_well_nested_forest() {
    let ring = Arc::new(RingSink::new(1 << 16));
    let (mut system, queries) = {
        let (s, q) = genealogy_system(Some(Arc::clone(&ring)));
        (s, q)
    };
    for q in &queries {
        system.solve_all(q, STRATEGY).expect("query solves");
    }
    let events = ring.drain();
    assert_eq!(ring.dropped(), 0, "ring must be large enough for the run");
    assert!(!events.is_empty());

    // Forest well-formedness — unique span ids, every parent recorded,
    // child intervals nested — is the shared `verify_span_forest`
    // checker (braid-trace), which the simulation harness also runs
    // after every scenario.
    let checked = braid_trace::verify_span_forest(&events)
        .unwrap_or_else(|e| panic!("span log is not a well-nested forest: {e}"));
    assert!(checked > 0, "workload must produce nested spans");

    // The pipeline stages all appear.
    for kind in [
        TraceKind::IeSolve,
        TraceKind::Query,
        TraceKind::PlanDecision,
        TraceKind::Execute,
        TraceKind::RemoteFetch,
        TraceKind::CacheInsert,
        TraceKind::RemoteRequest,
    ] {
        assert!(
            events.iter().any(|e| e.kind == kind),
            "expected at least one {} event",
            kind.as_str()
        );
    }
}

// ---------------------------------------------------------------------
// 3. Histogram merge algebra
// ---------------------------------------------------------------------

fn hist_of(values: &[u64]) -> braid::HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..1 << 40, 0..24),
        b in proptest::collection::vec(0u64..1 << 40, 0..24),
        c in proptest::collection::vec(0u64..1 << 40, 0..24),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        prop_assert_eq!(ha.merge(&hb).merge(&hc), ha.merge(&hb.merge(&hc)));
        prop_assert_eq!(ha.merge(&hb), hb.merge(&ha));
        prop_assert_eq!(ha.merge(&hb).count(), ha.count() + hb.count());
        // `since` inverts `merge`: (a ∪ b) − a = b.
        prop_assert_eq!(ha.merge(&hb).since(&ha), hb);
        // Merging matches recording everything into one histogram.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(ha.merge(&hb), hist_of(&all));
    }
}

// ---------------------------------------------------------------------
// 4. EXPLAIN golden stability
// ---------------------------------------------------------------------

#[test]
fn explain_summary_is_stable_across_identical_runs() {
    let run = || {
        let (mut system, queries) = genealogy_system(None);
        queries
            .iter()
            .map(|q| {
                system
                    .solve_explained(q, STRATEGY)
                    .expect("query solves")
                    .report
                    .summary()
            })
            .collect::<Vec<_>>()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "summaries must be timing-free");
    assert!(first.iter().all(|s| s.exact));
}

#[test]
fn explain_names_matched_views_and_remainder() {
    // Hand-built genealogy: cold solve ships the remainder, warm solve
    // names the matched view — the paper's §5.3.2 reuse story, visible
    // per query.
    let mut db = Catalog::new();
    db.install(
        Relation::from_tuples(
            Schema::of_strs("parent", &["p", "c"]),
            vec![
                tuple!["ann", "bob"],
                tuple!["bob", "dee"],
                tuple!["dee", "fay"],
            ],
        )
        .unwrap(),
    );
    let mut kb = KnowledgeBase::new();
    kb.declare_base("parent", 2);
    kb.add_program("grandparent(X, Y) :- parent(X, Z), parent(Z, Y).")
        .unwrap();
    let mut braid = BraidSystem::new(db, kb, BraidConfig::default());

    let cold = braid
        .solve_explained("?- grandparent(ann, Y).", STRATEGY)
        .expect("query solves");
    assert_eq!(cold.solutions.len(), 1);
    assert!(cold.report.summary().exact);
    assert_eq!(cold.report.plans.len(), 1);
    let plan = &cold.report.plans[0];
    assert_eq!(plan.decision, "all_remote");
    assert!(plan.matched_views.is_empty());
    assert!(
        plan.remainder.iter().any(|r| r.contains("parent")),
        "cold remainder must name the shipped subquery, got {:?}",
        plan.remainder
    );
    assert!(cold.report.remote_fetches > 0);
    assert_eq!(cold.report.advice_view_specs, Some(1));

    let warm = braid
        .solve_explained("?- grandparent(ann, Y).", STRATEGY)
        .expect("query solves");
    assert_eq!(warm.solutions, cold.solutions);
    let plan = &warm.report.plans[0];
    assert_eq!(plan.decision, "full_cache");
    assert!(
        !plan.matched_views.is_empty(),
        "warm plan must name the matched cached view"
    );
    assert!(plan.remainder.is_empty());
    assert_eq!(warm.report.remote_fetches, 0);

    // The rendered report carries the same story for humans.
    let text = warm.report.to_string();
    assert!(text.contains("matched views:"));
    assert!(text.contains("completeness: exact"));
}
