//! Chaos tests: the genealogy workload driven over a faulty
//! workstation–server link.
//!
//! Invariants under seeded fault injection:
//!
//! 1. Every query terminates — with an answer or a typed error, never a
//!    panic or a hang.
//! 2. Any answer tagged `Completeness::Exact` is identical to the answer
//!    a fault-free run produces.
//! 3. Under a sustained outage, cache-covered queries still answer Exact
//!    and uncovered queries degrade to explicit Partial answers.
//! 4. Recovery is deterministic: same fault seed, same workload → same
//!    per-query outcomes.

use braid::{
    BraidConfig, BraidError, CheckedSolutions, CmsConfig, Completeness, FaultPlan, IeError,
    ResilienceConfig, Strategy, Tuple,
};
use braid_workload::genealogy;
use proptest::prelude::*;

const STRATEGY: Strategy = Strategy::ConjunctionCompiled;

fn scenario() -> braid_workload::Scenario {
    genealogy::scenario(3, 2, 42, 12)
}

fn config(resilience: ResilienceConfig, faults: Option<FaultPlan>) -> BraidConfig {
    let mut c = BraidConfig::with_cms(CmsConfig::braid().with_resilience(resilience));
    c.faults = faults;
    c
}

/// The ground truth: every query answered over a perfectly healthy link.
fn fault_free_answers(sc: &braid_workload::Scenario) -> Vec<Vec<Tuple>> {
    let mut sys = sc.system(config(ResilienceConfig::none(), None));
    sc.queries
        .iter()
        .map(|q| sys.solve_all(q, STRATEGY).expect("fault-free run solves"))
        .collect()
}

#[test]
fn flaky_link_with_retries_completes_the_whole_workload_exactly() {
    let sc = scenario();
    let truth = fault_free_answers(&sc);

    // 20% transient-fault rate; 5 retries with capped backoff.
    let faults = FaultPlan::seeded(7).with_transient_failures(0.20);
    let resilience = ResilienceConfig::none()
        .with_retries(5)
        .with_backoff(16, 256);
    let mut sys = sc.system(config(resilience, Some(faults)));

    for (q, expected) in sc.queries.iter().zip(&truth) {
        let got = sys
            .solve_checked(q, STRATEGY)
            .unwrap_or_else(|e| panic!("query `{q}` failed under retries: {e}"));
        assert!(got.is_exact(), "query `{q}` should recover to Exact");
        assert_eq!(&got.solutions, expected, "query `{q}` answers diverge");
    }

    let m = sys.metrics();
    assert!(
        m.remote.faults_injected > 0,
        "faults were actually injected"
    );
    assert!(m.cms.retries > 0, "recovery actually retried");
}

#[test]
fn flaky_link_recovery_is_deterministic() {
    let sc = scenario();
    let run = || -> Vec<CheckedSolutions> {
        let faults = FaultPlan::seeded(7)
            .with_transient_failures(0.25)
            .with_disconnects(0.10, 3);
        let resilience = ResilienceConfig::none()
            .with_retries(6)
            .with_backoff(16, 256)
            .with_breaker(5, 2)
            .with_degraded_mode(true);
        let mut sys = sc.system(config(resilience, Some(faults)));
        sc.queries
            .iter()
            .map(|q| {
                sys.solve_checked(q, STRATEGY)
                    .expect("degraded mode never errors")
            })
            .collect()
    };
    assert_eq!(run(), run(), "same seed, same workload, same outcomes");
}

#[test]
fn sustained_outage_splits_covered_exact_from_uncovered_partial() {
    let sc = scenario();
    let truth = fault_free_answers(&sc);
    let resilience = ResilienceConfig::none()
        .with_retries(2)
        .with_backoff(8, 64)
        .with_degraded_mode(true);

    // Warm phase: answer the full workload over a healthy link, then the
    // server goes away for good.
    let mut sys = sc.system(config(resilience.clone(), None));
    for q in &sc.queries {
        sys.solve_all(q, STRATEGY).expect("warm run solves");
    }
    sys.cms()
        .remote()
        .set_fault_plan(Some(FaultPlan::seeded(1).with_outage(0, u64::MAX)));

    // Covered: every repeated query is answerable from the cache alone,
    // and subsumption proves it — still Exact, still byte-identical.
    for (q, expected) in sc.queries.iter().zip(&truth) {
        let got = sys
            .solve_checked(q, STRATEGY)
            .unwrap_or_else(|e| panic!("covered query `{q}` failed during outage: {e}"));
        assert!(
            got.is_exact(),
            "covered query `{q}` should stay Exact during the outage"
        );
        assert_eq!(&got.solutions, expected, "covered query `{q}` diverged");
    }

    // Uncovered: a cold system behind the same dead link can only
    // degrade — explicit Partial answers naming the missing subqueries.
    let mut cold = sc.system(
        config(resilience, None), // install plan after construction
    );
    cold.cms()
        .remote()
        .set_fault_plan(Some(FaultPlan::seeded(1).with_outage(0, u64::MAX)));
    let got = cold
        .solve_checked(&sc.queries[0], STRATEGY)
        .expect("degraded mode answers instead of failing");
    match got.completeness {
        Completeness::Partial {
            ref missing_subqueries,
        } => {
            assert!(
                !missing_subqueries.is_empty(),
                "partial answers name what is missing"
            );
        }
        Completeness::Exact => panic!("cold cache + dead link cannot be Exact"),
    }
}

#[test]
fn outage_without_degraded_mode_surfaces_typed_errors() {
    let sc = scenario();
    let faults = FaultPlan::seeded(1).with_outage(0, u64::MAX);
    let resilience = ResilienceConfig::none().with_retries(1);
    let mut sys = sc.system(config(resilience, Some(faults)));
    let err = sys
        .solve_checked(&sc.queries[0], STRATEGY)
        .expect_err("cold cache + dead link + no degradation must error");
    // The error is structured all the way down: BraidError → IeError →
    // CmsError (transient, Exhausted-wrapping-Unavailable), reachable
    // both by matching and by walking the std `source()` chain.
    match &err {
        BraidError::Cms(e) => assert!(e.is_transient(), "outage error is transient: {e}"),
        BraidError::Ie(IeError::Cms(e)) => {
            assert!(e.is_transient(), "outage error is transient: {e}");
        }
        other => panic!("unexpected error kind: {other}"),
    }
    let mut depth = 0;
    let mut cur: &dyn std::error::Error = &err;
    while let Some(next) = cur.source() {
        cur = next;
        depth += 1;
    }
    assert!(depth >= 2, "source() chain reaches the remote fault");
}

#[test]
fn concurrent_sessions_survive_chaos_with_honest_completeness() {
    // Faults fire while N sessions drive the workload over one shared
    // cache. Invariants, per session: every query terminates (answer or
    // typed error — the scope join itself rules out hangs and panics),
    // every Exact answer is byte-identical to the fault-free run, and
    // every degraded answer is honestly tagged Partial.
    let sc = scenario();
    let truth = fault_free_answers(&sc);
    let faults = FaultPlan::seeded(23)
        .with_transient_failures(0.25)
        .with_disconnects(0.10, 3)
        .with_latency_spikes(0.05, 100);
    let resilience = ResilienceConfig::none()
        .with_retries(4)
        .with_backoff(16, 128)
        .with_breaker(5, 2)
        .with_degraded_mode(true);
    let mut cfg = config(resilience, Some(faults));
    cfg.cms = cfg.cms.with_shards(4);
    let system = sc.system(cfg);

    const SESSIONS: usize = 4;
    let outcomes: Vec<Vec<Result<CheckedSolutions, BraidError>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|_| {
                let mut sess = system.session();
                let queries = &sc.queries;
                s.spawn(move || {
                    queries
                        .iter()
                        .map(|q| sess.solve_checked(q, STRATEGY))
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut exact = 0usize;
    for (si, session) in outcomes.iter().enumerate() {
        for (qi, outcome) in session.iter().enumerate() {
            match outcome {
                Ok(got) => {
                    if got.is_exact() {
                        exact += 1;
                        assert_eq!(
                            &got.solutions, &truth[qi],
                            "session {si}: Exact answer for `{}` diverged",
                            sc.queries[qi]
                        );
                    } else {
                        // Honest degradation: a Partial answer names
                        // what is missing.
                        match &got.completeness {
                            Completeness::Partial { missing_subqueries } => {
                                assert!(
                                    !missing_subqueries.is_empty(),
                                    "session {si}: Partial without missing subqueries"
                                );
                            }
                            Completeness::Exact => unreachable!(),
                        }
                    }
                }
                Err(e) => {
                    // Degraded mode absorbs transient faults; only
                    // typed, non-parse errors may surface.
                    assert!(
                        !matches!(e, BraidError::Parse(_)),
                        "session {si}: workload queries always parse: {e}"
                    );
                }
            }
        }
    }
    assert!(
        exact > 0,
        "with retries and a shared cache, some answers recover to Exact"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn chaos_terminates_and_exact_answers_match_fault_free(
        seed in 0u64..1_000_000,
        fault_prob_pct in 5u64..45,
        disconnect_pct in 0u64..20,
    ) {
        let sc = scenario();
        let truth = fault_free_answers(&sc);
        let faults = FaultPlan::seeded(seed)
            .with_transient_failures(fault_prob_pct as f64 / 100.0)
            .with_disconnects(disconnect_pct as f64 / 100.0, 2)
            .with_latency_spikes(0.05, 100);
        let resilience = ResilienceConfig::none()
            .with_retries(3)
            .with_backoff(16, 128)
            .with_breaker(4, 3)
            .with_degraded_mode(true);
        let mut sys = sc.system(config(resilience, Some(faults)));
        for (q, expected) in sc.queries.iter().zip(&truth) {
            // Invariant 1: terminates with an answer or a typed error.
            match sys.solve_checked(q, STRATEGY) {
                Ok(got) => {
                    // Invariant 2: Exact answers are byte-identical to
                    // the fault-free run.
                    if got.is_exact() {
                        prop_assert_eq!(&got.solutions, expected);
                    }
                }
                Err(e) => {
                    // Degraded mode converts transient failures into
                    // partial answers; only hard errors may surface.
                    prop_assert!(
                        !matches!(e, BraidError::Parse(_)),
                        "workload queries always parse: {}", e
                    );
                }
            }
        }
    }
}
