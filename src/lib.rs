//! Umbrella package for the BrAID reproduction: hosts the cross-crate
//! integration tests (`tests/`) and runnable examples (`examples/`).
//! The library itself only re-exports the facade crate.

pub use braid::*;
