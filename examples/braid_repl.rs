//! An interactive BrAID session: load a scenario, ask AI queries, watch
//! the cache and the advice machinery work.
//!
//! ```sh
//! cargo run --example braid_repl
//! ```
//!
//! Commands:
//! ```text
//! ?- goal(args).        ask an AI query (Prolog syntax)
//! :strategy <name>      interpreted | conjunction | compiled
//! :metrics              cumulative cost counters
//! :cache                the CMS's cache model
//! :advice <goal>        show the advice the IE would generate
//! :rules                the knowledge base
//! :help                 this text
//! :quit                 exit
//! ```

use braid::{BraidConfig, Strategy};
use braid_ie::strategy::Strategy as IeStrategy;
use braid_workload::genealogy;
use std::io::{self, BufRead, Write};

fn main() {
    let scenario = genealogy::scenario(4, 2, 2026, 0);
    let mut system = scenario.system(BraidConfig::default());
    let mut strategy = Strategy::ConjunctionCompiled;

    println!(
        "BrAID interactive session — {} ({} base tuples)",
        scenario.name,
        scenario.database_size()
    );
    println!(
        "base relations: parent/2, male/1, female/1, age/2; derived: \
         grandparent, sibling, uncle, cousin, ancestor, adult, elder_parent"
    );
    println!("try `?- ancestor(p0, Y).` — `:help` for commands\n");

    let stdin = io::stdin();
    loop {
        print!("braid> ");
        let _ = io::stdout().flush();
        let Some(Ok(line)) = stdin.lock().lines().next() else {
            break;
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ":quit" | ":q" | ":exit" => break,
            ":help" | ":h" => help(),
            ":metrics" => println!("{}", system.metrics()),
            ":cache" => {
                for row in system.cms().cache_model() {
                    println!(
                        "  E{}: {} [{} tuples, {} hits, {}{}]",
                        row.id,
                        row.def,
                        row.cardinality.unwrap_or(0),
                        row.hits,
                        row.repr,
                        if row.pinned { ", pinned" } else { "" }
                    );
                }
                if system.cms().cache_model().is_empty() {
                    println!("  (cache empty)");
                }
            }
            ":rules" => {
                for r in system.engine().kb().rules() {
                    println!("  {}: {}.", r.id, r.clause);
                }
            }
            _ if line.starts_with(":strategy") => {
                strategy = match line.split_whitespace().nth(1) {
                    Some("interpreted") => Strategy::Interpreted,
                    Some("conjunction") => Strategy::ConjunctionCompiled,
                    Some("compiled") => Strategy::FullyCompiled,
                    other => {
                        println!("unknown strategy {other:?}; keeping {strategy:?}");
                        strategy
                    }
                };
                println!("strategy = {strategy:?}");
            }
            _ if line.starts_with(":advice") => {
                let goal_src = line.trim_start_matches(":advice").trim();
                match braid::parse_query(&format!("?- {goal_src}")) {
                    Err(e) => println!("{e}"),
                    Ok(goal) => {
                        let stats = system.cms().remote().catalog().stats_snapshot();
                        match system.engine().prepare(
                            &goal,
                            IeStrategy::ConjunctionCompiled,
                            &stats,
                        ) {
                            Err(e) => println!("{e}"),
                            Ok((_, _, advice)) => print!("{advice}"),
                        }
                    }
                }
            }
            _ if line.starts_with("?-") => {
                let before = system.metrics();
                match system.solve_all(line, strategy) {
                    Err(e) => println!("error: {e}"),
                    Ok(solutions) => {
                        for s in &solutions {
                            println!("  {s}");
                        }
                        let d = system.metrics().since(&before);
                        println!(
                            "  -- {} answers; {} remote requests, {} tuples shipped, \
                             {} cache elements",
                            solutions.len(),
                            d.remote.requests,
                            d.remote.tuples_shipped,
                            system.cms().cache_len()
                        );
                    }
                }
            }
            other => println!("unrecognized input `{other}` — `:help` for commands"),
        }
    }
    println!("\nfinal cost:\n{}", system.metrics());
}

fn help() {
    println!(
        "  ?- goal(args).        ask an AI query (e.g. ?- ancestor(p0, Y).)\n\
         \x20 :strategy <name>      interpreted | conjunction | compiled\n\
         \x20 :metrics              cumulative cost counters\n\
         \x20 :cache                the CMS's cache model\n\
         \x20 :advice <goal>        advice the IE generates for a goal\n\
         \x20 :rules                the knowledge base\n\
         \x20 :quit                 exit"
    );
}
