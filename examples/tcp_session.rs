//! A session over real sockets: the remote engine behind a TCP
//! listener, the CMS on a pooled client, and a fault-injecting proxy
//! tearing frames in between — same queries, honest answers throughout.
//!
//! ```sh
//! cargo run --example tcp_session
//! ```

use braid::{
    BraidConfig, CmsConfig, Completeness, RemoteDbms, RemoteTcpServer, ResilienceConfig, Strategy,
    TcpClientConfig, TcpServerConfig, TransportConfig,
};
use braid_net::{FaultProxy, ProxyPlan};
use braid_workload::genealogy;

fn main() {
    let sc = genealogy::scenario(3, 2, 42, 8);

    // The "server machine": a remote engine behind a loopback listener.
    let mut server = RemoteTcpServer::serve(
        RemoteDbms::with_defaults(sc.catalog.clone()),
        TcpServerConfig::default(),
    )
    .expect("bind loopback listener");
    println!("remote engine listening on {}", server.addr());

    // The wire between them: a proxy that resets some connections and
    // truncates some replies mid-frame, deterministically from one seed.
    let plan = ProxyPlan::seeded(7)
        .with_resets(0.20)
        .with_truncation(0.20, 300);
    let mut proxy = FaultProxy::start(server.addr(), plan).expect("start proxy");
    println!("fault proxy relaying via {}\n", proxy.addr());

    // The "workstation": a BrAID system whose CMS fetches over TCP
    // (pool_size = 0 so every request dials through the proxy afresh),
    // retrying transients and degrading honestly when retries run out.
    let mut client = TcpClientConfig::to(proxy.addr().to_string());
    client.pool_size = 0;
    let resilience = ResilienceConfig::none()
        .with_retries(5)
        .with_backoff(4, 32)
        .with_degraded_mode(true);
    let mut sys = sc.system(BraidConfig::with_cms(
        CmsConfig::braid()
            .with_resilience(resilience)
            .with_transport(TransportConfig::Tcp(client)),
    ));

    for q in &sc.queries {
        let got = sys
            .solve_checked(q, Strategy::ConjunctionCompiled)
            .expect("terminates with an answer");
        match got.completeness {
            Completeness::Exact => {
                println!("{q:<40} Exact   ({} tuples)", got.solutions.len());
            }
            Completeness::Partial { missing_subqueries } => {
                println!(
                    "{q:<40} Partial (missing {})",
                    missing_subqueries.join(", ")
                );
            }
        }
    }

    let pool = sys.cms().transport_pool_stats().expect("TCP transport");
    let chaos = proxy.stats();
    println!(
        "\npool: {} dials, {} stream resumes, {} discarded sockets, in_use={}",
        pool.connects, pool.resumes, pool.discards, pool.in_use
    );
    println!(
        "proxy: {} connections, {} reset, {} truncated",
        chaos.connections, chaos.resets, chaos.truncated
    );

    drop(sys);
    proxy.shutdown();
    server.shutdown();
    assert_eq!(server.stats().active, 0, "no connection leaked");
    println!("clean shutdown: all gauges at zero");
}
