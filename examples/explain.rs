//! EXPLAIN: show how one AI query was answered — advice consulted,
//! planner decisions, subsumption matches, remainder subqueries shipped
//! to the DBMS — reconstructed from the solve's span tree.
//!
//! ```sh
//! cargo run --example explain
//! ```

use braid::{BraidConfig, BraidSystem, Catalog, KnowledgeBase, Strategy};
use braid_relational::{tuple, Relation, Schema};

fn main() {
    // The remote DBMS: one base relation of parent facts.
    let mut db = Catalog::new();
    db.install(
        Relation::from_tuples(
            Schema::of_strs("parent", &["parent", "child"]),
            vec![
                tuple!["ann", "bob"],
                tuple!["ann", "cal"],
                tuple!["bob", "dee"],
                tuple!["cal", "eli"],
                tuple!["dee", "fay"],
            ],
        )
        .expect("valid tuples"),
    );

    // The knowledge base: genealogy rules over the base relation.
    let mut kb = KnowledgeBase::new();
    kb.declare_base("parent", 2);
    kb.add_program(
        "grandparent(X, Y) :- parent(X, Z), parent(Z, Y).\n\
         ancestor(X, Y) :- parent(X, Y).\n\
         ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
    )
    .expect("valid program");

    let mut braid = BraidSystem::new(db, kb, BraidConfig::default());

    // First solve: the cache is cold, so the planner ships remainder
    // subqueries to the DBMS. The report shows each decision.
    let cold = braid
        .solve_explained("?- grandparent(ann, Y).", Strategy::ConjunctionCompiled)
        .expect("query solves");
    println!("--- cold cache ---");
    print!("{}", cold.report);

    // Second solve: subsumption matches the cached views and the whole
    // answer is assembled locally — compare the plan lines.
    let warm = braid
        .solve_explained("?- grandparent(ann, Y).", Strategy::ConjunctionCompiled)
        .expect("query solves");
    println!("\n--- warm cache ---");
    print!("{}", warm.report);

    for s in &warm.solutions {
        println!("    {s}");
    }

    // The always-on metrics (histograms included), as an aligned table.
    println!("\n--- cumulative metrics ---");
    print!("{}", braid.metrics().render_table());
}
