//! Quickstart: bridge a rule base to a (simulated) remote DBMS and ask a
//! recursive AI query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use braid::{BraidConfig, BraidSystem, Catalog, KnowledgeBase, Strategy};
use braid_relational::{tuple, Relation, Schema};

fn main() {
    // 1. The remote database — in BrAID this is an unmodified,
    //    independent DBMS; here it is the simulated server.
    let mut db = Catalog::new();
    db.install(
        Relation::from_tuples(
            Schema::of_strs("parent", &["parent", "child"]),
            vec![
                tuple!["ann", "bob"],
                tuple!["ann", "cal"],
                tuple!["bob", "dee"],
                tuple!["cal", "eli"],
                tuple!["dee", "fay"],
            ],
        )
        .expect("valid tuples"),
    );

    // 2. The knowledge base — the inference engine's rules.
    let mut kb = KnowledgeBase::new();
    kb.declare_base("parent", 2);
    kb.add_program(
        "grandparent(X, Y) :- parent(X, Z), parent(Z, Y).\n\
         ancestor(X, Y) :- parent(X, Y).\n\
         ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).",
    )
    .expect("valid program");

    // 3. Assemble the bridge: IE + CMS + remote DBMS (Figure 3).
    let mut braid = BraidSystem::new(db, kb, BraidConfig::default());

    // 4. Ask AI queries. The IE pre-analyzes each query, sends advice to
    //    the CMS, and resolves against cached + remote data.
    for query in ["?- grandparent(ann, Y).", "?- ancestor(ann, Y)."] {
        let solutions = braid
            .solve_all(query, Strategy::ConjunctionCompiled)
            .expect("query solves");
        println!("{query}");
        for s in &solutions {
            println!("    {s}");
        }
    }

    // 5. Re-ask: the semantic cache answers without touching the server.
    let before = braid.metrics();
    braid
        .solve_all("?- ancestor(ann, Y).", Strategy::ConjunctionCompiled)
        .expect("query solves");
    let delta = braid.metrics().since(&before);
    println!(
        "\nre-asking ancestor(ann, Y): {} remote requests (cache hit rate {:.0}%)",
        delta.remote.requests,
        100.0 * braid.metrics().cms.hit_rate()
    );
    println!("\ncumulative cost:\n{}", braid.metrics());
}
