//! A braid server: N clients over TCP, their sessions multiplexed as
//! resumable state machines onto a fixed worker pool — the paper's "set
//! of sessions" (§3) as a network front-end instead of in-process
//! threads. Clients speak AI queries (CAQL) to the *braid* system; the
//! unmodified DBMS stays hidden behind the CMS, exactly as Figure 3
//! draws it.
//!
//! ```sh
//! cargo run --example serve
//! ```

use braid::{BraidClient, BraidConfig, BraidServer, BraidServerConfig, Completeness, Strategy};
use braid_workload::genealogy;

fn main() {
    let sc = genealogy::scenario(3, 2, 42, 8);

    // The server owns the whole stack — IE, shared CMS cache, remote —
    // and maps every accepted connection onto 2 pool workers.
    let server = BraidServer::start(
        sc.system(BraidConfig::default()),
        BraidServerConfig {
            workers: 2,
            ..BraidServerConfig::default()
        },
    )
    .expect("bind loopback listener");
    let addr = server.local_addr();
    println!("braid server listening on {addr} (2 workers)\n");

    // Six clients, each a real TCP connection issuing the whole workload
    // from a rotated offset — more connections than workers, so sessions
    // interleave cooperatively on the pool.
    let n = sc.queries.len();
    std::thread::scope(|s| {
        for ci in 0..6 {
            let queries = &sc.queries;
            s.spawn(move || {
                let mut client = BraidClient::connect(addr).expect("connect");
                for off in 0..n {
                    let q = &queries[(ci + off) % n];
                    let got = client
                        .solve_checked(q, Strategy::ConjunctionCompiled)
                        .expect("server answers");
                    if ci == 0 {
                        match got.completeness {
                            Completeness::Exact => {
                                println!("{q:<44} Exact ({} tuples)", got.solutions.len());
                            }
                            Completeness::Partial { missing_subqueries } => {
                                println!(
                                    "{q:<44} Partial (missing {})",
                                    missing_subqueries.join(", ")
                                );
                            }
                        }
                    }
                }
                client.goodbye();
            });
        }
    });

    // Goodbyes are processed asynchronously by the pool; give the last
    // connection tasks a moment to retire before reading the gauges.
    for _ in 0..200 {
        if server.stats().active == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let stats = server.stats();
    let pool = server.pool_snapshot();
    println!(
        "\nserver: {} connections accepted, {} queries answered, {} still active",
        stats.connections_accepted, stats.queries, stats.active
    );
    println!(
        "pool: {} tasks spawned, {} finished, {} panicked",
        pool.spawned, pool.finished, pool.panicked
    );

    server.shutdown();
    println!("clean shutdown");
}
