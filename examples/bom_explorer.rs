//! Bill-of-materials exploration over the parts/suppliers scenario: the
//! compiled strategy's fixed-point operator (Closure SOA), mixed
//! join/recursion rules, and the I-C range compared on one workload.
//!
//! ```sh
//! cargo run --release --example bom_explorer
//! ```

use braid::{BraidConfig, Strategy};
use braid_workload::suppliers;

fn main() {
    let scenario = suppliers::scenario(40, 12, 7, 0);
    println!(
        "scenario: {} — {} base tuples",
        scenario.name,
        scenario.database_size()
    );

    // Where is part17 used? (transitive closure, upward)
    let mut sys = scenario.system(BraidConfig::default());
    let wholes = sys
        .solve_all("?- component(W, part17).", Strategy::FullyCompiled)
        .expect("closure query");
    println!("\npart17 is a component of {} assemblies:", wholes.len());
    for t in wholes.iter().take(8) {
        println!("    {}", t.values()[0]);
    }

    // Who supplies anything inside assembly part1? (join + closure)
    let sup = sys
        .solve_all("?- supplies_component(S, part1).", Strategy::FullyCompiled)
        .expect("mixed query");
    println!("\nsuppliers contributing to assembly part1: {}", sup.len());

    // Bulk suppliers (comparison built-in).
    let bulk = sys
        .solve_all("?- bulk_supplier(S, P).", Strategy::ConjunctionCompiled)
        .expect("comparison query");
    println!("bulk supply contracts (qty >= 250): {}", bulk.len());

    // Same ground probe across the whole I-C range: identical answers,
    // different DBMS interaction profiles (§2's central claim).
    println!("\n=== the interpreted-compiled range on `component(part0, Y)` ===");
    println!(
        "{:<22} {:>9} {:>10} {:>11} {:>8}",
        "strategy", "requests", "tuples", "server-ops", "answers"
    );
    for strat in [
        Strategy::Interpreted,
        Strategy::ConjunctionCompiled,
        Strategy::FullyCompiled,
    ] {
        let mut fresh = scenario.system(BraidConfig::default());
        let sols = fresh
            .solve_all("?- component(part0, Y).", strat)
            .expect("query solves");
        let m = fresh.metrics();
        println!(
            "{:<22} {:>9} {:>10} {:>11} {:>8}",
            format!("{strat:?}"),
            m.remote.requests,
            m.remote.tuples_shipped,
            m.remote.server_tuple_ops,
            sols.len()
        );
    }
}
