//! The Figure 1 taxonomy, measured: run the same genealogy workload under
//! all four coupling modes and print the cost table.
//!
//! ```sh
//! cargo run --release --example coupling_shootout
//! ```

use braid::Strategy;
use braid_workload::baseline::{run_all, CouplingMode};
use braid_workload::genealogy;

fn main() {
    let scenario = genealogy::scenario(6, 2, 42, 60);
    println!(
        "workload: {} — {} base tuples, {} queries (locality 0.5)\n",
        scenario.name,
        scenario.database_size(),
        scenario.queries.len()
    );

    println!(
        "{:<16} {:>9} {:>10} {:>11} {:>11} {:>10} {:>9}",
        "mode", "requests", "tuples", "bytes", "server-ops", "local-ops", "answers"
    );
    let results = run_all(&scenario, Strategy::ConjunctionCompiled);
    for r in &results {
        println!(
            "{:<16} {:>9} {:>10} {:>11} {:>11} {:>10} {:>9}",
            r.mode.label(),
            r.metrics.remote.requests,
            r.metrics.remote.tuples_shipped,
            r.metrics.remote.bytes_shipped,
            r.metrics.remote.server_tuple_ops,
            r.metrics.cms.local_tuple_ops,
            r.solutions,
        );
    }

    let loose = results
        .iter()
        .find(|r| r.mode == CouplingMode::LooseCoupling)
        .expect("loose run present");
    let braid = results
        .iter()
        .find(|r| r.mode == CouplingMode::Braid)
        .expect("braid run present");
    println!(
        "\nBrAID issues {:.1}x fewer remote requests than loose coupling \
         ({} vs {}), with identical answers.",
        loose.metrics.remote.requests as f64 / braid.metrics.remote.requests.max(1) as f64,
        braid.metrics.remote.requests,
        loose.metrics.remote.requests,
    );
}
