//! A look inside the IE → CMS interface: the paper's Example 1 advice
//! (view specifications + path expression) generated from the rules, the
//! session protocol, and the effect of prefetching.
//!
//! ```sh
//! cargo run --example advice_session
//! ```

use braid::{BraidConfig, BraidSystem, Catalog, KnowledgeBase, Strategy};
use braid_ie::strategy::Strategy as IeStrategy;
use braid_relational::{tuple, Relation, Schema};

fn main() {
    // The paper's Example 1 knowledge base (§4.2.2).
    let mut kb = KnowledgeBase::new();
    kb.declare_base("b1", 2);
    kb.declare_base("b2", 2);
    kb.declare_base("b3", 3);
    kb.add_program(
        "k1(X, Y) :- b1(c1, Y), k2(X, Y).\n\
         k2(X, Y) :- b2(X, Z), b3(Z, c2, Y).\n\
         k2(X, Y) :- b3(X, c3, Z), b1(Z, Y).",
    )
    .expect("valid program");

    // Data for the three base relations.
    let mut db = Catalog::new();
    db.install(
        Relation::from_tuples(
            Schema::of_strs("b1", &["a", "b"]),
            vec![tuple!["c1", "y1"], tuple!["c1", "y2"], tuple!["m9", "y7"]],
        )
        .expect("valid"),
    );
    db.install(
        Relation::from_tuples(
            Schema::of_strs("b2", &["a", "b"]),
            vec![tuple!["x1", "z1"], tuple!["x2", "z2"]],
        )
        .expect("valid"),
    );
    db.install(
        Relation::from_tuples(
            Schema::of_strs("b3", &["a", "b", "c"]),
            vec![
                tuple!["z1", "c2", "y1"],
                tuple!["z2", "c2", "y2"],
                tuple!["x5", "c3", "c1"],
            ],
        )
        .expect("valid"),
    );

    let mut braid = BraidSystem::new(db, kb, BraidConfig::default());

    // Show what the IE derives before any data flows: the paper's advice.
    let goal = braid::parse_query("?- k1(X, Y).").expect("parses");
    let stats = braid.cms().remote().catalog().stats_snapshot();
    let (graph, _, advice) = braid
        .engine()
        .prepare(&goal, IeStrategy::ConjunctionCompiled, &stats)
        .expect("advice pipeline");

    println!("=== problem graph (Figure 4: extractor output) ===");
    println!("{graph}");
    println!("=== advice (§4.2): view specifications ===");
    for v in &advice.view_specs {
        println!("    {v}");
    }
    println!("=== advice (§4.2.2): path expression ===");
    println!("    {}", advice.path.as_ref().expect("path generated"));

    // Now actually solve. The CMS receives this advice at session start,
    // tracks the query sequence against the path expression, prefetches
    // d3 instances, and generalizes where profitable.
    let sols = braid
        .solve_all("?- k1(X, Y).", Strategy::ConjunctionCompiled)
        .expect("solves");
    println!("\n=== solutions ===");
    for s in &sols {
        println!("    k1{s}");
    }

    let m = braid.metrics();
    println!("\n=== what the advice bought (§5.3 techniques) ===");
    println!("    generalized queries : {}", m.cms.generalized_queries);
    println!("    prefetched queries  : {}", m.cms.prefetched_queries);
    println!("    full cache answers  : {}", m.cms.full_cache_answers);
    println!("    remote requests     : {}", m.remote.requests);

    println!("\n=== cache model (the CMS's meta-relation, §5.3.2) ===");
    for row in braid.cms().cache_model() {
        println!(
            "    E{}: {} [{} tuples, {} hits, {}]",
            row.id,
            row.def,
            row.cardinality.unwrap_or(0),
            row.hits,
            row.repr
        );
    }
}
