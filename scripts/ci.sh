#!/usr/bin/env bash
# The repo's CI gate: formatting, build, full test suite, the executor
# differential suite, the trace/EXPLAIN suite, the network suite (frame
# codec, fault proxy, socket chaos round), lint-as-error, and quick
# smoke runs of the fault-tolerance (E11) and tracing-overhead (E14)
# experiments. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> executor differential suite"
cargo test --test executor_differential -q

echo "==> columnar differential suite (row ≡ columnar, round trips)"
cargo test --test columnar_differential -q

echo "==> concurrent sessions suite (parallel harness)"
cargo test --test concurrent_sessions -q

echo "==> concurrent sessions suite (serialized harness)"
RUST_TEST_THREADS=1 cargo test --test concurrent_sessions -q -- --test-threads=1

echo "==> cooperative sessions suite (fixed worker pool)"
cargo test --test cooperative_sessions -q

echo "==> trace/EXPLAIN observability suite"
cargo test --test trace_observability -q
cargo test -p braid-trace -q

echo "==> simulation oracle suite (differential + golden EXPLAIN)"
cargo test --test sim_oracle -q
cargo test -p braid-sim -q

echo "==> simulation smoke (fixed seed set, 50 scenarios)"
SIM_SEED_START=0 SIM_ROUNDS=50 cargo run --release -p braid-bench --bin sim

echo "==> cooperative soak smoke (10 seeds, all four lanes + procs lane)"
SIM_SEED_START=0 SIM_ROUNDS=10 SIM_PROCS=2 cargo run --release -p braid-bench --bin sim -- --soak

echo "==> network suite (codec, proxy, pool) + one proxy chaos round"
cargo test -p braid-net -q
cargo test --release --test net_chaos -q
cargo run --release --example tcp_session > /dev/null

echo "==> server chaos suite (fault proxy pointed at BraidServer)"
cargo test --release --test server_chaos -q

echo "==> multi-process load smoke (2 forked clients, oracle-checked)"
cargo run --release -p braid-load --bin load -- --procs 2 --conns 1 --queries 40 --rate 0 > /dev/null
cargo run --release -p braid-load --bin load -- --procs 2 --conns 1 --queries 40 --rate 2000 > /dev/null

echo "==> wire observability suite (trace propagation, STATS, flight recorder)"
cargo test --release --test wire_observability -q

echo "==> top dashboard smoke (demo server, one STATS snapshot)"
cargo run --release -p braid-load --bin top -- --demo --once | grep -q "braid top"

echo "==> traced load smoke (wire tracing + 10 Hz STATS poller)"
cargo run --release -p braid-load --bin load -- --procs 2 --conns 1 --queries 40 --rate 0 --trace --stats-poll-hz 10 > /dev/null

echo "==> braid server round trip (serve example)"
cargo run --release --example serve > /dev/null

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> E11 smoke report"
cargo run -p braid-bench --bin report -- --quick --only E11

echo "==> E14 tracing-overhead smoke report"
cargo run -p braid-bench --bin report -- --quick --only E14

echo "==> E17 session-scheduling smoke report"
cargo run -p braid-bench --bin report -- --quick --only E17

echo "==> E18 multi-process load smoke report"
cargo run -p braid-bench --bin report -- --quick --only E18

echo "==> E19 observability-overhead smoke report"
cargo run -p braid-bench --bin report -- --quick --only E19

echo "==> E20 columnar-kernels smoke report"
cargo run --release -p braid-bench --bin report -- --quick --only E20

echo "==> ci OK"
