#!/usr/bin/env bash
# The repo's CI gate: formatting, build, full test suite, the executor
# differential suite, lint-as-error, and a quick smoke run of the
# fault-tolerance experiment (E11). Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> executor differential suite"
cargo test --test executor_differential -q

echo "==> concurrent sessions suite (parallel harness)"
cargo test --test concurrent_sessions -q

echo "==> concurrent sessions suite (serialized harness)"
RUST_TEST_THREADS=1 cargo test --test concurrent_sessions -q -- --test-threads=1

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> E11 smoke report"
cargo run -p braid-bench --bin report -- --quick --only E11

echo "==> ci OK"
